//! Integration test: all algorithms agree with the brute-force oracle on
//! randomized databases — the workspace's strongest correctness guarantee,
//! mirroring the paper's "uniform baseline implementations" requirement
//! (inconsistent results between implementations were its core complaint).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_fim::miners::Algorithm;
use uncertain_fim::prelude::*;

/// A random small database: up to `n_items` items, `n_trans` transactions,
/// item inclusion probability `density`, unit probabilities uniform (0,1].
fn random_db(seed: u64, n_trans: usize, n_items: u32, density: f64) -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let transactions: Vec<Transaction> = (0..n_trans)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..n_items)
                .filter_map(|i| {
                    if rng.gen_bool(density) {
                        Some((i, (rng.gen_range(0.0f64..1.0) + 1e-3).min(1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    UncertainDatabase::with_num_items(transactions, n_items)
}

#[test]
fn expected_support_miners_match_oracle_on_many_random_dbs() {
    for seed in 0..12u64 {
        let db = random_db(seed, 40, 7, 0.45);
        for &min_esup in &[0.05, 0.15, 0.3, 0.6] {
            let oracle = BruteForce::new()
                .mine_expected_ratio(&db, min_esup)
                .unwrap();
            for algo in Algorithm::EXPECTED_SUPPORT {
                let r = algo
                    .expected_support_miner()
                    .unwrap()
                    .mine_expected_ratio(&db, min_esup)
                    .unwrap();
                assert_eq!(
                    r.sorted_itemsets(),
                    oracle.sorted_itemsets(),
                    "{} diverged at seed={seed}, min_esup={min_esup}",
                    algo.name()
                );
                // Per-itemset expected supports must match the definition.
                for fi in &r.itemsets {
                    let want = db.expected_support(fi.itemset.items());
                    assert!(
                        (fi.expected_support - want).abs() < 1e-9,
                        "{} wrong esup for {} at seed={seed}",
                        algo.name(),
                        fi.itemset
                    );
                }
            }
        }
    }
}

#[test]
fn exact_probabilistic_miners_match_oracle_on_many_random_dbs() {
    for seed in 0..8u64 {
        let db = random_db(100 + seed, 30, 6, 0.5);
        for &(min_sup, pft) in &[(0.1, 0.9), (0.25, 0.5), (0.5, 0.7), (0.7, 0.2)] {
            let oracle = BruteForce::new()
                .mine_probabilistic_raw(&db, min_sup, pft)
                .unwrap();
            for algo in Algorithm::EXACT_PROBABILISTIC {
                let r = algo
                    .probabilistic_miner()
                    .unwrap()
                    .mine_probabilistic_raw(&db, min_sup, pft)
                    .unwrap();
                assert_eq!(
                    r.sorted_itemsets(),
                    oracle.sorted_itemsets(),
                    "{} diverged at seed={seed}, min_sup={min_sup}, pft={pft}",
                    algo.name()
                );
                for fi in &r.itemsets {
                    let want = oracle.get(&fi.itemset).unwrap().frequent_prob.unwrap();
                    assert!(
                        (fi.frequent_prob.unwrap() - want).abs() < 1e-9,
                        "{} wrong Pr for {} at seed={seed}",
                        algo.name(),
                        fi.itemset
                    );
                }
            }
        }
    }
}

#[test]
fn downward_closure_holds_in_every_result() {
    // Both frequency measures are anti-monotone, so every result set must be
    // subset-closed — for each reported itemset, all its subsets appear too.
    let db = random_db(77, 50, 6, 0.5);
    let mut results: Vec<(String, MiningResult)> = Vec::new();
    for algo in Algorithm::EXPECTED_SUPPORT {
        let r = algo
            .expected_support_miner()
            .unwrap()
            .mine_expected_ratio(&db, 0.15)
            .unwrap();
        results.push((algo.name().to_string(), r));
    }
    for algo in Algorithm::EXACT_PROBABILISTIC.into_iter().chain([
        Algorithm::NDUApriori,
        Algorithm::NDUHMine,
        Algorithm::PDUApriori,
    ]) {
        let r = algo
            .probabilistic_miner()
            .unwrap()
            .mine_probabilistic_raw(&db, 0.15, 0.6)
            .unwrap();
        results.push((algo.name().to_string(), r));
    }
    for (name, r) in &results {
        let have: std::collections::BTreeSet<Itemset> = r.sorted_itemsets().into_iter().collect();
        for fi in &r.itemsets {
            for sub in fi.itemset.subsets_dropping_one() {
                if sub.is_empty() {
                    continue;
                }
                assert!(
                    have.contains(&sub),
                    "{name}: {} frequent but subset {} missing",
                    fi.itemset,
                    sub
                );
            }
        }
    }
}

#[test]
fn approximate_miners_converge_to_exact_at_scale() {
    // 1200 transactions: CLT territory. Both Normal-based miners must agree
    // with the exact result except on pft-boundary itemsets; membership
    // mismatches are only tolerated where the exact probability is within
    // ±0.05 of pft.
    let db = random_db(2025, 1200, 6, 0.5);
    let (min_sup, pft) = (0.2, 0.9);
    let exact = BruteForce::new()
        .mine_probabilistic_raw(&db, min_sup, pft)
        .unwrap();
    let exact_probs = |itemset: &Itemset| -> f64 {
        let q = db.itemset_prob_vector(itemset.items());
        uncertain_fim::stats::pb::survival_dp(&q, (min_sup * 1200f64).ceil() as usize)
    };
    for algo in [Algorithm::NDUApriori, Algorithm::NDUHMine] {
        let approx = algo
            .probabilistic_miner()
            .unwrap()
            .mine_probabilistic_raw(&db, min_sup, pft)
            .unwrap();
        // False positives must be boundary cases.
        for itemset in approx.sorted_itemsets() {
            if exact.get(&itemset).is_none() {
                let p = exact_probs(&itemset);
                assert!(
                    (p - pft).abs() < 0.05,
                    "{}: false positive {} with exact Pr {p}",
                    algo.name(),
                    itemset
                );
            }
        }
        // False negatives must be boundary cases.
        for itemset in exact.sorted_itemsets() {
            if approx.get(&itemset).is_none() {
                let p = exact_probs(&itemset);
                assert!(
                    (p - pft).abs() < 0.05,
                    "{}: false negative {} with exact Pr {p}",
                    algo.name(),
                    itemset
                );
            }
        }
    }
}

#[test]
fn chernoff_variants_never_change_answers() {
    for seed in 0..6u64 {
        let db = random_db(500 + seed, 60, 6, 0.4);
        for &(min_sup, pft) in &[(0.3, 0.9), (0.5, 0.5)] {
            let dpb = DpMiner::with_pruning()
                .mine_probabilistic_raw(&db, min_sup, pft)
                .unwrap();
            let dpnb = DpMiner::without_pruning()
                .mine_probabilistic_raw(&db, min_sup, pft)
                .unwrap();
            assert_eq!(dpb.sorted_itemsets(), dpnb.sorted_itemsets());
            let dcb = DcMiner::with_pruning()
                .mine_probabilistic_raw(&db, min_sup, pft)
                .unwrap();
            let dcnb = DcMiner::without_pruning()
                .mine_probabilistic_raw(&db, min_sup, pft)
                .unwrap();
            assert_eq!(dcb.sorted_itemsets(), dcnb.sorted_itemsets());
        }
    }
}
