//! Cross-crate property-based tests (proptest): randomized invariants
//! spanning the statistics substrate and the miners.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use uncertain_fim::miners::common::{
    mine_level_wise_with_plan, ExactKernel, ExactMeasure, ExpectedSupport, FrequentnessMeasure,
    IncrementalMiner, NormalApprox, PoissonApprox,
};
use uncertain_fim::miners::Algorithm;
use uncertain_fim::prelude::*;
use uncertain_fim::stats::chernoff::chernoff_upper_bound;
use uncertain_fim::stats::pb::{
    pmf_divide_conquer, pmf_exact, support_moments, survival_dp, survival_from_pmf,
};

/// Strategy: a probability strictly in (0, 1].
fn prob() -> impl Strategy<Value = f64> {
    (1u32..=1000).prop_map(|k| k as f64 / 1000.0)
}

/// Strategy: a small uncertain database (≤ 24 transactions over ≤ 5 items).
fn small_db() -> impl Strategy<Value = UncertainDatabase> {
    vec(vec((0u32..5, prob()), 0..5), 1..24).prop_map(|raw| {
        let transactions = raw
            .into_iter()
            .map(|units| {
                // Dedup items, keeping the first probability.
                let mut seen = std::collections::BTreeMap::new();
                for (i, p) in units {
                    seen.entry(i).or_insert(p);
                }
                Transaction::new(seen.into_iter().collect::<Vec<_>>()).unwrap()
            })
            .collect();
        UncertainDatabase::with_num_items(transactions, 5)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pmf_is_a_distribution(q in vec(prob(), 0..60)) {
        let pmf = pmf_exact(&q);
        prop_assert_eq!(pmf.len(), q.len() + 1);
        let total: f64 = pmf.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(pmf.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
    }

    #[test]
    fn three_exact_kernels_triangulate(q in vec(prob(), 0..80)) {
        // Dense DP, divide-and-conquer + FFT, and characteristic-function
        // DFT are independently derived; all three must agree everywhere.
        let a = pmf_exact(&q);
        let b = pmf_divide_conquer(&q, None);
        let c = uncertain_fim::stats::dft_cf::pmf_dft_cf(&q);
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.len(), c.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            prop_assert!((x - y).abs() < 1e-9, "dp {} vs dc {}", x, y);
            prop_assert!((x - z).abs() < 1e-8, "dp {} vs cf {}", x, z);
        }
    }

    #[test]
    fn binomial_fast_path_matches_general_kernel(
        p in (1u32..=99).prop_map(|k| k as f64 / 100.0),
        n in 1usize..60,
        msup in 0usize..65,
    ) {
        let q = vec![p; n];
        let general = survival_dp(&q, msup);
        let fast = uncertain_fim::stats::binomial::binomial_survival(
            n as u64, msup as u64, p,
        );
        prop_assert!((general - fast).abs() < 1e-9, "{} vs {}", general, fast);
        prop_assert_eq!(
            uncertain_fim::stats::binomial::detect_constant(&q, 0.0),
            Some(p)
        );
    }

    #[test]
    fn truncated_dp_matches_pmf_tail(q in vec(prob(), 0..50), msup in 0usize..55) {
        let direct = survival_dp(&q, msup);
        let via_pmf = survival_from_pmf(&pmf_exact(&q), msup);
        prop_assert!((direct - via_pmf).abs() < 1e-9);
        // And the saturated divide-and-conquer agrees too.
        if msup >= 1 {
            let capped = pmf_divide_conquer(&q, Some(msup));
            let dc = if msup < capped.len() { capped[msup] } else { 0.0 };
            prop_assert!((direct - dc).abs() < 1e-9);
        }
    }

    #[test]
    fn survival_is_monotone_in_threshold(q in vec(prob(), 0..40)) {
        let mut prev = 1.0f64;
        for msup in 0..=q.len() + 1 {
            let s = survival_dp(&q, msup);
            prop_assert!(s <= prev + 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
            prev = s;
        }
    }

    #[test]
    fn chernoff_dominates_exact_survival(q in vec(prob(), 1..50), msup in 1usize..55) {
        let (mu, _) = support_moments(&q);
        let exact = survival_dp(&q, msup);
        let bound = chernoff_upper_bound(mu, msup as f64);
        prop_assert!(bound >= exact - 1e-9, "bound {} < exact {}", bound, exact);
    }

    #[test]
    fn moments_match_distribution(q in vec(prob(), 0..40)) {
        let (mu, var) = support_moments(&q);
        let pmf = pmf_exact(&q);
        let mean: f64 = pmf.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        let ex2: f64 = pmf.iter().enumerate().map(|(k, &p)| (k * k) as f64 * p).sum();
        prop_assert!((mu - mean).abs() < 1e-8);
        prop_assert!((var - (ex2 - mean * mean)).abs() < 1e-7);
    }

    #[test]
    fn all_esup_miners_agree_with_oracle(db in small_db(), min_esup in 1u32..=9) {
        let ratio = min_esup as f64 / 10.0;
        let oracle = BruteForce::new().mine_expected_ratio(&db, ratio).unwrap();
        for algo in Algorithm::EXPECTED_SUPPORT {
            let r = algo
                .expected_support_miner()
                .unwrap()
                .mine_expected_ratio(&db, ratio)
                .unwrap();
            prop_assert_eq!(
                r.sorted_itemsets(),
                oracle.sorted_itemsets(),
                "{} diverged",
                algo.name()
            );
        }
    }

    #[test]
    fn all_exact_prob_miners_agree_with_oracle(
        db in small_db(),
        min_sup in 1u32..=9,
        pft in 1u32..=9,
    ) {
        let (ms, pf) = (min_sup as f64 / 10.0, pft as f64 / 10.0);
        let oracle = BruteForce::new().mine_probabilistic_raw(&db, ms, pf).unwrap();
        for algo in Algorithm::EXACT_PROBABILISTIC {
            let r = algo
                .probabilistic_miner()
                .unwrap()
                .mine_probabilistic_raw(&db, ms, pf)
                .unwrap();
            prop_assert_eq!(
                r.sorted_itemsets(),
                oracle.sorted_itemsets(),
                "{} diverged",
                algo.name()
            );
        }
    }

    #[test]
    fn frequent_probability_is_antimonotone(db in small_db()) {
        // Direct check of the theorem every miner's pruning rests on:
        // X ⊆ Y ⇒ Pr{sup(X) ≥ k} ≥ Pr{sup(Y) ≥ k}.
        let msup = (db.num_transactions() / 2).max(1);
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a == b { continue; }
                let qa = db.itemset_prob_vector(&[a.min(b), a.max(b)][..1]);
                let qab = db.itemset_prob_vector(&[a.min(b), a.max(b)]);
                let pa = survival_dp(&qa, msup);
                let pab = survival_dp(&qab, msup);
                prop_assert!(pab <= pa + 1e-12);
            }
        }
    }
}

/// Strategy: a database wide enough to shard (65..200 transactions over 6
/// items), so a one-chunk (64-tid) shard plan splits it into 2–4 shards
/// while the default plan leaves it unsharded.
fn shardable_db() -> impl Strategy<Value = UncertainDatabase> {
    vec(vec((0u32..6, prob()), 0..6), 65..200).prop_map(|raw| {
        let transactions = raw
            .into_iter()
            .map(|units| {
                let mut seen = std::collections::BTreeMap::new();
                for (i, p) in units {
                    seen.entry(i).or_insert(p);
                }
                Transaction::new(seen.into_iter().collect::<Vec<_>>()).unwrap()
            })
            .collect();
        UncertainDatabase::with_num_items(transactions, 6)
    })
}

/// Runs the level-wise miner under every measure kind with the given shard
/// plan: plain and variance-recording expected support, both approximate
/// frequent-probability measures, and both exact kernels (with their
/// Chernoff screens, so the threshold pushdown — and therefore the zone-map
/// precheck — fires on the sharded path).
fn mine_all_measures(
    db: &UncertainDatabase,
    ratio: f64,
    engine: EngineKind,
    plan: ShardPlan,
) -> Vec<(&'static str, MiningResult)> {
    let n = db.num_transactions();
    let params = MiningParams::new(ratio, 0.4).unwrap();
    let esup_threshold = params.min_sup.threshold_real(n);
    let mut runs = vec![
        (
            "esup",
            mine_level_wise_with_plan(db, ExpectedSupport::new(esup_threshold), engine, plan),
        ),
        (
            "esup+var",
            mine_level_wise_with_plan(
                db,
                ExpectedSupport::with_variance(esup_threshold),
                engine,
                plan,
            ),
        ),
        (
            "normal",
            mine_level_wise_with_plan(db, NormalApprox::new(params.msup(n), 0.4), engine, plan),
        ),
        (
            "exact-dp",
            mine_level_wise_with_plan(
                db,
                ExactMeasure::new(ExactKernel::DynamicProgramming, true, n, &params),
                engine,
                plan,
            ),
        ),
        (
            "exact-dc",
            mine_level_wise_with_plan(
                db,
                ExactMeasure::new(ExactKernel::DivideConquer, true, n, &params),
                engine,
                plan,
            ),
        ),
    ];
    if let Some(poisson) = PoissonApprox::from_params(n, &params).unwrap() {
        runs.push((
            "poisson",
            mine_level_wise_with_plan(db, poisson, engine, plan),
        ));
    }
    runs
}

/// Bitwise record equality across mining modes (stats are mode-specific).
fn records_bits(result: &MiningResult) -> Vec<(Itemset, u64, Option<u64>, Option<u64>)> {
    result
        .itemsets
        .iter()
        .map(|f| {
            (
                f.itemset.clone(),
                f.expected_support.to_bits(),
                f.variance.map(f64::to_bits),
                f.frequent_prob.map(f64::to_bits),
            )
        })
        .collect()
}

/// One mutation of a randomized ingest script (see
/// [`incremental_random_step_sequences_match_batch`]).
#[derive(Clone, Debug)]
enum StreamOp {
    /// Append one transaction (possibly empty — a legal no-op arrival).
    Append(Vec<(u32, f64)>),
    /// Expire a burst of oldest transactions.
    Expire(usize),
}

/// Strategy: the unit list of one streamed transaction over 6 items.
fn stream_tx() -> impl Strategy<Value = Vec<(u32, f64)>> {
    vec((0u32..6, prob()), 0..6).prop_map(|units| {
        let mut seen = std::collections::BTreeMap::new();
        for (i, p) in units {
            seen.entry(i).or_insert(p);
        }
        seen.into_iter().collect()
    })
}

/// Strategy: one stream op, biased 4:1 toward arrivals so windows fill up
/// (the shim has no `prop_oneof!`; a selector tuple plays its role).
fn stream_op() -> impl Strategy<Value = StreamOp> {
    (0u32..5, stream_tx(), 1usize..20).prop_map(|(sel, tx, n)| {
        if sel < 4 {
            StreamOp::Append(tx)
        } else {
            StreamOp::Expire(n)
        }
    })
}

/// The deterministic work counters a *cold* incremental refresh must share
/// bit-for-bit with the batch oracle: an unprimed refresh takes the same
/// evaluation path as a from-scratch mine, so any drift here means the
/// streaming machinery leaked into the cold path.
fn cold_work_bits(stats: &MinerStats) -> (u64, u64, u64, u64, u64) {
    (
        stats.candidates_evaluated,
        stats.intersections,
        stats.exact_evaluations,
        stats.shards_evaluated,
        stats.shards_pruned,
    )
}

/// Drives one `IncrementalMiner` through the script, refreshing every
/// `refresh_every` ops (and at the end). Each refresh is pinned two ways:
/// against batch-mining the window snapshot (records bit for bit), and
/// against a *cold re-mine* — the same snapshot replayed into a fresh
/// `IncrementalMiner` — diffing records **and** the deterministic work
/// stats. The warm miner runs on memos point-patched across the whole
/// script; the fresh miner folds everything from scratch; the batch
/// oracle never sees the window machinery at all. All three must agree on
/// records, and the cold miner must additionally match the oracle's work
/// counters (its unprimed refresh *is* a batch mine).
fn drive_incremental<M: FrequentnessMeasure + Copy>(
    measure: M,
    kind: EngineKind,
    plan: ShardPlan,
    capacity: usize,
    ops: &[StreamOp],
    refresh_every: usize,
) -> Result<(), TestCaseError> {
    let window = WindowedDatabase::new(capacity, 6);
    let mut miner = IncrementalMiner::with_plan(window, measure, kind, plan);
    // Edge case first: refreshing a fully vacant window.
    miner.refresh();
    let batch = mine_level_wise_with_plan(&miner.window().snapshot(), measure, kind, plan);
    prop_assert_eq!(
        records_bits(miner.result()),
        records_bits(&batch),
        "{}×{}: empty-window refresh diverged",
        kind,
        measure.name()
    );
    for (i, op) in ops.iter().enumerate() {
        match op {
            StreamOp::Append(units) => {
                miner.append(Transaction::new(units.iter().copied()).unwrap());
            }
            StreamOp::Expire(n) => {
                miner.expire_oldest(*n);
            }
        }
        if (i + 1) % refresh_every == 0 || i + 1 == ops.len() {
            let warm = miner.refresh().stats.clone();
            let snapshot = miner.window().snapshot();
            let batch = mine_level_wise_with_plan(&snapshot, measure, kind, plan);
            prop_assert_eq!(
                records_bits(miner.result()),
                records_bits(&batch),
                "{}×{} diverged from the batch oracle after op {}",
                kind,
                measure.name(),
                i
            );
            // Memo counters engage only on the patched path, never cold.
            prop_assert_eq!(batch.stats.memo_patched, 0);
            prop_assert_eq!(batch.stats.memo_rebuilt, 0);
            prop_assert!(
                warm.memo_patched == 0 || kind != EngineKind::Horizontal,
                "horizontal keeps no engine memo to patch"
            );
            // Cold re-mine: same window contents through a fresh miner.
            let mut cold = IncrementalMiner::with_plan(
                WindowedDatabase::new(capacity, 6),
                measure,
                kind,
                plan,
            );
            for t in snapshot.transactions() {
                cold.append(t.clone());
            }
            let cold_stats = cold.refresh().stats.clone();
            prop_assert_eq!(
                records_bits(miner.result()),
                records_bits(cold.result()),
                "{}×{}: memo-patched records diverged from a cold re-mine after op {}",
                kind,
                measure.name(),
                i
            );
            prop_assert_eq!(
                cold_work_bits(&cold_stats),
                cold_work_bits(&batch.stats),
                "{}×{}: cold refresh work differs from the batch oracle after op {}",
                kind,
                measure.name(),
                i
            );
            prop_assert_eq!(cold_stats.memo_patched, 0);
            prop_assert_eq!(cold_stats.memo_rebuilt, 0);
        }
    }
    Ok(())
}

proptest! {
    // Mining runs per case: 3 engines × 3 plans × ~6 measures. Fewer cases
    // keep the suite quick; the inner sweep is the point.
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Any shard partition — one-chunk shards, 16-chunk shards, or the
    // (unsharded) default — merges bit-identically to the unsharded path
    // for every engine and measure kind. Because the measures' threshold
    // pushdown reaches the sharded engines' zone-map precheck, bitwise
    // record equality here is also the zone-map soundness property at the
    // mining level: a pruned shard's true contribution never flips a
    // keep/prune verdict on any randomized database.
    #[test]
    fn any_shard_partition_merges_bit_identical_to_unsharded(
        db in shardable_db(),
        min_sup in 1u32..=5,
    ) {
        let ratio = min_sup as f64 / 10.0;
        for engine in EngineKind::ALL {
            let reference = mine_all_measures(
                &db,
                ratio,
                engine,
                ShardPlan::for_transactions(db.num_transactions()),
            );
            for width_chunks in [1usize, 16] {
                let plan = ShardPlan::with_width_chunks(width_chunks);
                let sharded = mine_all_measures(&db, ratio, engine, plan);
                prop_assert_eq!(reference.len(), sharded.len());
                for ((name, a), (_, b)) in reference.iter().zip(&sharded) {
                    prop_assert_eq!(
                        records_bits(a),
                        records_bits(b),
                        "{}×{} diverged at width {}",
                        engine,
                        name,
                        width_chunks
                    );
                }
            }
        }
    }
}

proptest! {
    // Per case: 3 engines × 2 plans × ~6 measures, each driven through the
    // whole script with a batch re-mine at every refresh — the sweep is
    // heavy, so few cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The incremental miner, driven by a random append/expire script, must
    // stay record-bit-identical to batch-mining each window snapshot from
    // scratch — for every engine, measure, and shard width {1, 16, full}.
    // Capacity 130 with one-chunk (64-tid) shards puts three shards under
    // the window, so the random scripts routinely produce steps whose
    // dirty slots straddle shard boundaries (delta composition across
    // shards); the 16-chunk plan forces the sharded machinery into its
    // single-shard degenerate case, and the default plan stays unsharded.
    #[test]
    fn incremental_random_step_sequences_match_batch(
        ops in vec(stream_op(), 10..28),
        refresh_every in 2usize..6,
        min_sup in 1u32..=4,
    ) {
        let capacity = 130usize;
        let ratio = min_sup as f64 / 10.0;
        let params = MiningParams::new(ratio, 0.4).unwrap();
        let esup_threshold = params.min_sup.threshold_real(capacity);
        for kind in EngineKind::ALL {
            for plan in [
                ShardPlan::for_transactions(capacity),
                ShardPlan::with_width_chunks(1),
                ShardPlan::with_width_chunks(16),
            ] {
                drive_incremental(
                    ExpectedSupport::new(esup_threshold),
                    kind, plan, capacity, &ops, refresh_every,
                )?;
                drive_incremental(
                    ExpectedSupport::with_variance(esup_threshold),
                    kind, plan, capacity, &ops, refresh_every,
                )?;
                drive_incremental(
                    NormalApprox::new(params.msup(capacity), 0.4),
                    kind, plan, capacity, &ops, refresh_every,
                )?;
                drive_incremental(
                    ExactMeasure::new(ExactKernel::DynamicProgramming, true, capacity, &params),
                    kind, plan, capacity, &ops, refresh_every,
                )?;
                drive_incremental(
                    ExactMeasure::new(ExactKernel::DivideConquer, true, capacity, &params),
                    kind, plan, capacity, &ops, refresh_every,
                )?;
                if let Some(poisson) = PoissonApprox::from_params(capacity, &params).unwrap() {
                    drive_incremental(poisson, kind, plan, capacity, &ops, refresh_every)?;
                }
            }
        }
    }
}

/// The window-delta edge cases, deterministic, across shard widths
/// {1, 16, full}: an untouched (all-vacant) window, a fill that crosses a
/// shard boundary, a warm churn step patching a *retained* memo (the memo
/// counters must engage on the columnar backends), a transaction that
/// arrives and expires within one step (its slot nets back to vacant)
/// landing on that retained memo, full-window expiry, and a refill after
/// total expiry — each refresh pinned bit-for-bit against the batch
/// oracle on every engine.
#[test]
fn window_delta_edge_cases_match_batch() {
    let capacity = 130usize; // three 64-tid shards under the one-chunk plan
    let measure = ExpectedSupport::with_variance(3.0);
    for plan in [
        ShardPlan::for_transactions(capacity),
        ShardPlan::with_width_chunks(1),
        ShardPlan::with_width_chunks(16),
    ] {
        for kind in EngineKind::ALL {
            let window = WindowedDatabase::new(capacity, 6);
            let mut miner = IncrementalMiner::with_plan(window, measure, kind, plan);
            let check = |miner: &mut IncrementalMiner<ExpectedSupport>, label: &str| {
                let stats = miner.refresh().stats.clone();
                let batch =
                    mine_level_wise_with_plan(&miner.window().snapshot(), measure, kind, plan);
                assert_eq!(
                    records_bits(miner.result()),
                    records_bits(&batch),
                    "{kind}: {label} diverged from the batch oracle"
                );
                stats
            };
            // 1. Refreshing the untouched, fully vacant window.
            check(&mut miner, "empty window");
            // 2. Fill past the first shard boundary: dirty slots of one step
            //    land in different shards.
            for i in 0..100u32 {
                miner.append(Transaction::new([(i % 6, 0.9), ((i + 1) % 6, 0.7)]).unwrap());
            }
            check(&mut miner, "fill across shard boundary");
            // 3. Warm churn on the now-retained memo: a second refresh whose
            //    step must point-patch the survivors of step 2's mine rather
            //    than rebuild them — on the columnar backends the patch
            //    counter has to actually engage here.
            miner.expire_oldest(5);
            for i in 0..5u32 {
                miner.append(Transaction::new([(i % 6, 0.85), ((i + 3) % 6, 0.65)]).unwrap());
            }
            let warm = check(&mut miner, "churn on a retained memo");
            if kind != EngineKind::Horizontal {
                assert!(
                    warm.memo_patched > 0,
                    "{kind} ({plan:?}): warm churn step never patched a retained memo node \
                     (patched {}, rebuilt {})",
                    warm.memo_patched,
                    warm.memo_rebuilt
                );
            }
            // 4. A transaction that arrives and expires within the same
            //    step — against the memo retained across two refreshes —
            //    its freshly-filled slot nets back to vacant, and the step
            //    also empties the whole window (full-window expiry).
            let live = miner.window().len();
            miner.append(Transaction::new([(2, 0.8), (3, 0.8)]).unwrap());
            assert_eq!(miner.expire_oldest(live + 1), live + 1);
            check(
                &mut miner,
                "arrive-and-expire same step + full-window expiry on a retained memo",
            );
            assert!(miner.window().is_empty());
            // 5. Refill after total expiry: the tracker must not resurrect
            //    verdicts from the expired generation.
            for i in 0..40u32 {
                miner.append(Transaction::new([(i % 6, 0.6), ((i + 2) % 6, 0.95)]).unwrap());
            }
            check(&mut miner, "refill after empty");
        }
    }
}
