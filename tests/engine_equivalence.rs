//! Cross-backend equivalence suite: every support engine — horizontal
//! scan, vertical tid-list, and diffset delta-memo — must be
//! observationally identical under **all eight** of the paper's miners
//! (plus the unpruned exact variants), on random uncertain databases and
//! on the paper's Table 1 example.
//!
//! For the Apriori-framework miners (UApriori, PDUApriori, NDUApriori,
//! DP/DC ± Chernoff) the backend is actually swapped and compared head to
//! head. The depth-first miners (UFP-growth, UH-Mine, NDUH-Mine) own their
//! data structures and ignore the selector; they are held to the same
//! standard by comparing their output against every backend of their
//! Apriori-framework counterpart.

use proptest::collection::vec;
use proptest::prelude::*;
use uncertain_fim::core::{EngineKind, MeasureKind, TraversalKind};
use uncertain_fim::miners::{Algorithm, MatrixMiner};
use uncertain_fim::prelude::*;

/// Strategy: a probability strictly in (0, 1].
fn prob() -> impl Strategy<Value = f64> {
    (1u32..=1000).prop_map(|k| k as f64 / 1000.0)
}

/// Strategy: a small uncertain database (≤ 24 transactions over ≤ 6 items).
fn small_db() -> impl Strategy<Value = UncertainDatabase> {
    vec(vec((0u32..6, prob()), 0..6), 1..24).prop_map(|raw| {
        let transactions = raw
            .into_iter()
            .map(|units| {
                let mut dedup = std::collections::BTreeMap::new();
                for (i, p) in units {
                    dedup.entry(i).or_insert(p);
                }
                Transaction::new(dedup.into_iter().collect::<Vec<_>>()).unwrap()
            })
            .collect();
        UncertainDatabase::with_num_items(transactions, 6)
    })
}

/// Asserts two results carry the same itemsets with esup within 1e-9.
fn assert_equivalent(
    h: &MiningResult,
    v: &MiningResult,
    label: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(
        h.sorted_itemsets(),
        v.sorted_itemsets(),
        "{}: itemset sets diverge",
        label
    );
    for fi in &v.itemsets {
        let want = h.get(&fi.itemset).expect("same sets");
        prop_assert!(
            (fi.expected_support - want.expected_support).abs() < 1e-9,
            "{}: esup of {} diverges: {} vs {}",
            label,
            fi.itemset,
            fi.expected_support,
            want.expected_support
        );
        match (fi.frequent_prob, want.frequent_prob) {
            (Some(a), Some(b)) => prop_assert!(
                (a - b).abs() < 1e-9,
                "{}: Pr of {} diverges: {} vs {}",
                label,
                fi.itemset,
                a,
                b
            ),
            (None, None) => {}
            (a, b) => prop_assert!(false, "{}: Pr presence diverges: {:?} vs {:?}", label, a, b),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // UApriori across backends, plus the depth-first expected-support
    // miners (UFP-growth, UH-Mine) against both.
    #[test]
    fn expected_support_miners_agree_across_backends(
        db in small_db(),
        min_esup in 1u32..=9,
    ) {
        let ratio = min_esup as f64 / 10.0;
        let h = UApriori::with_engine(EngineKind::Horizontal)
            .mine_expected_ratio(&db, ratio)
            .unwrap();
        let v = UApriori::with_engine(EngineKind::Vertical)
            .mine_expected_ratio(&db, ratio)
            .unwrap();
        assert_equivalent(&h, &v, "UApriori")?;
        let d = UApriori::with_engine(EngineKind::Diffset)
            .mine_expected_ratio(&db, ratio)
            .unwrap();
        assert_equivalent(&h, &d, "UApriori-diffset")?;
        for algo in [Algorithm::UFPGrowth, Algorithm::UHMine] {
            let r = algo
                .expected_support_miner()
                .unwrap()
                .mine_expected_ratio(&db, ratio)
                .unwrap();
            prop_assert_eq!(
                r.sorted_itemsets(),
                v.sorted_itemsets(),
                "{} vs vertical UApriori",
                algo.name()
            );
        }
    }

    // The four exact miners (DPB, DPNB, DCB, DCNB) across backends.
    #[test]
    fn exact_miners_agree_across_backends(
        db in small_db(),
        min_sup in 1u32..=9,
        pft in 1u32..=9,
    ) {
        let params = MiningParams::new(min_sup as f64 / 10.0, pft as f64 / 10.0).unwrap();
        for algo in Algorithm::EXACT_PROBABILISTIC {
            let miner = algo.probabilistic_miner().unwrap();
            let h = miner
                .mine_probabilistic(&db, params.with_engine(EngineKind::Horizontal))
                .unwrap();
            for engine in [EngineKind::Vertical, EngineKind::Diffset] {
                let v = miner
                    .mine_probabilistic(&db, params.with_engine(engine))
                    .unwrap();
                assert_equivalent(&h, &v, &format!("{}-{}", algo.name(), engine))?;
            }
        }
    }

    // The approximate miners: PDUApriori and NDUApriori across backends,
    // NDUH-Mine (depth-first) against NDUApriori on both.
    #[test]
    fn approximate_miners_agree_across_backends(
        db in small_db(),
        min_sup in 1u32..=9,
        pft in 1u32..=8,
    ) {
        let params = MiningParams::new(min_sup as f64 / 10.0, pft as f64 / 10.0).unwrap();
        for algo in [Algorithm::PDUApriori, Algorithm::NDUApriori] {
            let miner = algo.probabilistic_miner().unwrap();
            let h = miner
                .mine_probabilistic(&db, params.with_engine(EngineKind::Horizontal))
                .unwrap();
            for engine in [EngineKind::Vertical, EngineKind::Diffset] {
                let v = miner
                    .mine_probabilistic(&db, params.with_engine(engine))
                    .unwrap();
                assert_equivalent(&h, &v, &format!("{}-{}", algo.name(), engine))?;
            }
        }
        let ndua = NDUApriori::new()
            .mine_probabilistic(&db, params.with_engine(EngineKind::Vertical))
            .unwrap();
        let nduh = NDUHMine::new().mine_probabilistic(&db, params).unwrap();
        prop_assert_eq!(
            nduh.sorted_itemsets(),
            ndua.sorted_itemsets(),
            "NDUH-Mine vs vertical NDUApriori"
        );
    }

    // Every measure × traversal × engine matrix cell, pinned against the
    // BruteForce oracle. The exact and expected-support rows compare to the
    // oracle *directly* (same semantics); the approximate rows are pinned
    // cell-to-cell against their own level-wise×horizontal instantiation —
    // a measure is one semantics, so every traversal and engine must
    // produce the same itemsets, esups and probabilities — while the
    // fidelity of that instantiation to the oracle is covered by the seeded
    // CLT/Poisson tests (tiny random databases are exactly where those
    // approximations are *supposed* to deviate).
    #[test]
    fn exact_matrix_cells_agree_with_the_oracle(
        db in small_db(),
        min_sup in 1u32..=9,
        pft in 1u32..=9,
    ) {
        let params = MiningParams::new(min_sup as f64 / 10.0, pft as f64 / 10.0).unwrap();
        let oracle = BruteForce::new().mine_probabilistic(&db, params).unwrap();
        for measure in [MeasureKind::ExactDp, MeasureKind::ExactDc] {
            for traversal in [TraversalKind::LevelWise, TraversalKind::HyperStructure] {
                for engine in EngineKind::ALL {
                    let r = MatrixMiner::new(measure, traversal)
                        .mine_probabilistic(&db, params.with_engine(engine))
                        .unwrap();
                    let label = format!("{measure}×{traversal}×{engine}");
                    prop_assert_eq!(
                        r.sorted_itemsets(),
                        oracle.sorted_itemsets(),
                        "{} diverges from the oracle",
                        &label
                    );
                    for fi in &r.itemsets {
                        let want = oracle.get(&fi.itemset).expect("same sets");
                        prop_assert!(
                            (fi.expected_support - want.expected_support).abs() < 1e-9,
                            "{}: esup of {}", &label, fi.itemset
                        );
                        prop_assert!(
                            (fi.frequent_prob.unwrap() - want.frequent_prob.unwrap()).abs() < 1e-9,
                            "{}: Pr of {}", &label, fi.itemset
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn expected_support_matrix_cells_agree_with_the_oracle(
        db in small_db(),
        min_esup in 1u32..=9,
    ) {
        let ratio = min_esup as f64 / 10.0;
        // pft is ignored by the expected-support row.
        let params = MiningParams::new(ratio, 0.5).unwrap();
        let oracle = BruteForce::new().mine_expected_ratio(&db, ratio).unwrap();
        for traversal in TraversalKind::ALL {
            for engine in EngineKind::ALL {
                let r = MatrixMiner::new(MeasureKind::ExpectedSupport, traversal)
                    .mine_probabilistic(&db, params.with_engine(engine))
                    .unwrap();
                let label = format!("esup×{traversal}×{engine}");
                prop_assert_eq!(
                    r.sorted_itemsets(),
                    oracle.sorted_itemsets(),
                    "{} diverges from the oracle",
                    &label
                );
                for fi in &r.itemsets {
                    let want = oracle.get(&fi.itemset).expect("same sets");
                    prop_assert!(
                        (fi.expected_support - want.expected_support).abs() < 1e-9,
                        "{}: esup of {}", &label, fi.itemset
                    );
                }
            }
        }
    }

    #[test]
    fn approximate_matrix_cells_agree_with_their_level_wise_reference(
        db in small_db(),
        min_sup in 1u32..=9,
        pft in 1u32..=8,
    ) {
        let params = MiningParams::new(min_sup as f64 / 10.0, pft as f64 / 10.0).unwrap();
        for measure in [MeasureKind::Poisson, MeasureKind::Normal] {
            let reference = MatrixMiner::new(measure, TraversalKind::LevelWise)
                .mine_probabilistic(&db, params)
                .unwrap();
            for traversal in TraversalKind::ALL {
                for engine in EngineKind::ALL {
                    if !MatrixMiner::supported(measure, traversal) {
                        continue;
                    }
                    let r = MatrixMiner::new(measure, traversal)
                        .mine_probabilistic(&db, params.with_engine(engine))
                        .unwrap();
                    let label = format!("{measure}×{traversal}×{engine}");
                    prop_assert_eq!(
                        r.sorted_itemsets(),
                        reference.sorted_itemsets(),
                        "{} diverges from the level-wise reference",
                        &label
                    );
                    for fi in &r.itemsets {
                        let want = reference.get(&fi.itemset).expect("same sets");
                        prop_assert!(
                            (fi.expected_support - want.expected_support).abs() < 1e-9,
                            "{}: esup of {}", &label, fi.itemset
                        );
                        match (fi.frequent_prob, want.frequent_prob) {
                            (Some(a), Some(b)) => prop_assert!(
                                (a - b).abs() < 1e-9,
                                "{}: Pr of {}", &label, fi.itemset
                            ),
                            (None, None) => {}
                            (a, b) => prop_assert!(
                                false,
                                "{}: Pr presence diverges: {:?} vs {:?}", &label, a, b
                            ),
                        }
                    }
                }
            }
        }
    }

    // The vertical backend's statistics (esup, variance, prob-vectors)
    // match the horizontal reference database implementation directly.
    #[test]
    fn vertical_index_matches_reference_statistics(db in small_db()) {
        use uncertain_fim::core::VerticalIndex;
        let idx = VerticalIndex::build(&db);
        for a in 0..6u32 {
            for b in a..6u32 {
                let items: Vec<u32> = if a == b { vec![a] } else { vec![a, b] };
                let vec_v = idx.prob_vector(&items);
                let vec_h = db.itemset_prob_vector(&items);
                prop_assert_eq!(vec_v.nonzero_probs(), vec_h);
                let (esup, var) = vec_v.moments();
                let (we, wv) = db.support_moments(&items);
                prop_assert!((esup - we).abs() < 1e-9);
                prop_assert!((var - wv).abs() < 1e-9);
            }
        }
    }
}

/// The paper's worked example must come out identically on every backend,
/// for every miner in the study.
#[test]
fn paper_table1_identical_across_backends() {
    let db = uncertain_fim::core::examples::paper_table1();

    // Example 1 (Definition 2): min_esup = 0.5 → {A} and {C}.
    for engine in EngineKind::ALL {
        let r = UApriori::with_engine(engine)
            .mine_expected_ratio(&db, 0.5)
            .unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::singleton(0), Itemset::singleton(2)],
            "{}",
            engine.name()
        );
        let a = r.get(&Itemset::singleton(0)).unwrap();
        assert!((a.expected_support - 2.1).abs() < 1e-12);
    }

    // Definition 4 on every probabilistic miner, every backend.
    let params = MiningParams::new(0.5, 0.7).unwrap();
    for algo in [
        Algorithm::DPB,
        Algorithm::DPNB,
        Algorithm::DCB,
        Algorithm::DCNB,
        Algorithm::PDUApriori,
        Algorithm::NDUApriori,
        Algorithm::NDUHMine,
    ] {
        let miner = algo.probabilistic_miner().unwrap();
        let h = miner
            .mine_probabilistic(&db, params.with_engine(EngineKind::Horizontal))
            .unwrap();
        for engine in [EngineKind::Vertical, EngineKind::Diffset] {
            let v = miner
                .mine_probabilistic(&db, params.with_engine(engine))
                .unwrap();
            assert_eq!(
                h.sorted_itemsets(),
                v.sorted_itemsets(),
                "{} diverges on Table 1 ({engine})",
                algo.name()
            );
            for fi in &v.itemsets {
                let want = h.get(&fi.itemset).unwrap();
                assert!((fi.expected_support - want.expected_support).abs() < 1e-9);
            }
        }
    }
}

/// The vertical backend on a database large enough to engage the parallel
/// candidate fan-out still matches the horizontal backend exactly.
#[test]
fn backends_agree_on_large_parallel_workload() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let transactions: Vec<Transaction> = (0..6000)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..12u32)
                .filter_map(|i| {
                    if rng.gen_bool(0.5) {
                        Some((i, rng.gen_range(0.2..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    let db = UncertainDatabase::with_num_items(transactions, 12);

    let h = UApriori::with_engine(EngineKind::Horizontal)
        .mine_expected_ratio(&db, 0.02)
        .unwrap();
    assert!(
        h.len() > 50,
        "workload should mine several levels: {}",
        h.len()
    );
    for engine in [EngineKind::Vertical, EngineKind::Diffset] {
        let v = UApriori::with_engine(engine)
            .mine_expected_ratio(&db, 0.02)
            .unwrap();
        assert_eq!(h.sorted_itemsets(), v.sorted_itemsets(), "{engine}");
        for fi in &v.itemsets {
            let want = h.get(&fi.itemset).unwrap().expected_support;
            assert!(
                (fi.expected_support - want).abs() < 1e-9,
                "{engine} {}: {} vs {}",
                fi.itemset,
                fi.expected_support,
                want
            );
        }
    }
}
