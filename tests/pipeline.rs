//! Integration test: full experiment pipelines — generate a benchmark
//! analog, persist it through the FIMI formats, mine it with every group,
//! and score approximation accuracy; i.e. one pass through everything the
//! harness does, at tiny scale.

use std::io::Cursor;
use uncertain_fim::data::{
    assign_probabilities, fimi, Benchmark, DeterministicDatabase, ProbabilityModel,
};
use uncertain_fim::metrics::accuracy::precision_recall;
use uncertain_fim::miners::Algorithm;
use uncertain_fim::prelude::*;

#[test]
fn generated_benchmarks_have_published_shapes() {
    for b in Benchmark::ALL {
        let shape = b.paper_shape();
        let det = b.generate_deterministic(0.005, 11);
        assert_eq!(det.num_items(), shape.num_items, "{}", b.name());
        let expected_n = ((shape.num_transactions as f64) * 0.005).round() as usize;
        assert_eq!(det.num_transactions(), expected_n, "{}", b.name());
        // Average length within 20% of the published value (T25I15's
        // corruption machinery gets the widest berth).
        let len = det.avg_transaction_len();
        assert!(
            (len - shape.avg_len).abs() / shape.avg_len < 0.25,
            "{}: avg len {len} vs published {}",
            b.name(),
            shape.avg_len
        );
    }
}

#[test]
fn fimi_roundtrip_preserves_mining_results() {
    let det = Benchmark::Gazelle.generate_deterministic(0.01, 5);
    let udb = assign_probabilities(
        &det,
        &ProbabilityModel::Gaussian {
            mean: 0.95,
            variance: 0.05,
        },
        5,
    );

    // Deterministic FIMI round-trip.
    let mut buf = Vec::new();
    fimi::write_fimi(&det, &mut buf).unwrap();
    let det_back = fimi::read_fimi(Cursor::new(&buf)).unwrap();
    assert_eq!(
        DeterministicDatabase::new(det_back.transactions().to_vec()),
        DeterministicDatabase::new(det.transactions().to_vec())
    );

    // Uncertain round-trip: mining results must be identical bitwise.
    let mut ubuf = Vec::new();
    fimi::write_uncertain(&udb, &mut ubuf).unwrap();
    let udb_back = fimi::read_uncertain(Cursor::new(&ubuf)).unwrap();
    let before = UHMine::new().mine_expected_ratio(&udb, 0.02).unwrap();
    let after = UHMine::new().mine_expected_ratio(&udb_back, 0.02).unwrap();
    assert_eq!(before.sorted_itemsets(), after.sorted_itemsets());
}

#[test]
fn three_groups_are_consistent_on_a_generated_benchmark() {
    // One dataset, all three algorithm groups; within-group result sets must
    // agree exactly (expected-support trio; exact quartet), and the
    // approximate group must score near-perfect accuracy against exact.
    let db = Benchmark::Gazelle.generate(0.02, 31);
    let (min_sup, pft) = (0.02, 0.9);

    let esup_sets: Vec<_> = Algorithm::EXPECTED_SUPPORT
        .iter()
        .map(|a| {
            a.expected_support_miner()
                .unwrap()
                .mine_expected_ratio(&db, min_sup)
                .unwrap()
                .sorted_itemsets()
        })
        .collect();
    assert_eq!(esup_sets[0], esup_sets[1]);
    assert_eq!(esup_sets[0], esup_sets[2]);
    assert!(
        !esup_sets[0].is_empty(),
        "degenerate test: nothing frequent"
    );

    let exact_sets: Vec<_> = Algorithm::EXACT_PROBABILISTIC
        .iter()
        .map(|a| {
            a.probabilistic_miner()
                .unwrap()
                .mine_probabilistic_raw(&db, min_sup, pft)
                .unwrap()
        })
        .collect();
    for pair in exact_sets.windows(2) {
        assert_eq!(pair[0].sorted_itemsets(), pair[1].sorted_itemsets());
    }

    let exact = &exact_sets[0];
    for algo in [
        Algorithm::NDUApriori,
        Algorithm::NDUHMine,
        Algorithm::PDUApriori,
    ] {
        let approx = algo
            .probabilistic_miner()
            .unwrap()
            .mine_probabilistic_raw(&db, min_sup, pft)
            .unwrap();
        let acc = precision_recall(&approx, exact);
        // The Normal-based miners should be near-exact; the Poisson-based
        // one is visibly coarser at small supports — the paper's own §4.4
        // finding ("Normal distribution-based approximation algorithms can
        // get better approximation effect than the Poisson").
        let bar = if algo == Algorithm::PDUApriori {
            0.7
        } else {
            0.9
        };
        assert!(
            acc.precision > bar && acc.recall > bar,
            "{}: precision {:.3} recall {:.3}",
            algo.name(),
            acc.precision,
            acc.recall
        );
    }
}

#[test]
fn analog_popularity_regimes_are_correct() {
    // The paper's conclusions hinge on which regime each dataset sits in;
    // the profiles must separate cleanly.
    use ufim_data::stats::popularity_profile;
    let connect = popularity_profile(&Benchmark::Connect.generate_deterministic(0.002, 8));
    let kosarak = popularity_profile(&Benchmark::Kosarak.generate_deterministic(0.002, 8));
    let gazelle = popularity_profile(&Benchmark::Gazelle.generate_deterministic(0.01, 8));
    // Clickstream analogs are heavily skewed, the grid analog is not.
    assert!(kosarak.gini > 0.7, "kosarak gini {}", kosarak.gini);
    assert!(connect.gini < 0.5, "connect gini {}", connect.gini);
    // Gazelle rows are short; Connect rows constant-length 43.
    assert!(gazelle.len_quartiles.1 <= 3);
    assert_eq!(connect.len_quartiles, (43, 43, 43));
}

#[test]
fn uncertain_file_roundtrip_on_disk() {
    // Same as the in-memory round-trip but through the real filesystem —
    // the path `ufim-datagen` writes and downstream users read.
    let dir = std::env::temp_dir().join(format!("ufim-pipeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gazelle.udb");

    let db = Benchmark::Gazelle.generate(0.01, 21);
    {
        let file = std::fs::File::create(&path).unwrap();
        fimi::write_uncertain(&db, std::io::BufWriter::new(file)).unwrap();
    }
    let back = {
        let file = std::fs::File::open(&path).unwrap();
        fimi::read_uncertain(std::io::BufReader::new(file)).unwrap()
    };
    assert_eq!(back.num_transactions(), db.num_transactions());
    let a = UHMine::new().mine_expected_ratio(&db, 0.02).unwrap();
    let b = UHMine::new().mine_expected_ratio(&back, 0.02).unwrap();
    assert_eq!(a.sorted_itemsets(), b.sorted_itemsets());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn zipf_skew_shrinks_the_frequent_set() {
    // The paper's Fig 4(k) mechanism: higher skew ⇒ more zero-probability
    // units ⇒ fewer frequent itemsets (and faster mining).
    let counts: Vec<usize> = [0.8, 1.4, 2.0]
        .iter()
        .map(|&skew| {
            let db =
                Benchmark::Connect.generate_with_model(0.003, 9, &ProbabilityModel::zipf(skew));
            UApriori::new()
                .mine_expected_ratio(&db, 0.05)
                .unwrap()
                .len()
        })
        .collect();
    assert!(
        counts[0] >= counts[1] && counts[1] >= counts[2],
        "frequent counts should shrink with skew: {counts:?}"
    );
    assert!(
        counts[0] > counts[2],
        "skew must have an effect: {counts:?}"
    );
}

#[test]
fn scalability_truncation_is_monotone_in_work() {
    // The harness's scalability protocol: truncating the transaction stream
    // yields nested databases; frequent-itemset counts at a fixed ratio stay
    // comparable and runtimes grow. Check the protocol invariants (counts
    // comparable, truncation nested), not the timing.
    let full = Benchmark::T25I15D320k.generate(0.01, 3);
    let half = full.truncated(full.num_transactions() / 2);
    assert_eq!(half.num_transactions(), full.num_transactions() / 2);
    assert_eq!(
        half.transactions()[0],
        full.transactions()[0],
        "truncation must preserve the prefix"
    );
    let r_half = UHMine::new().mine_expected_ratio(&half, 0.1).unwrap();
    let r_full = UHMine::new().mine_expected_ratio(&full, 0.1).unwrap();
    // Same generating process, same ratio threshold: the frequent-set size
    // should be in the same ballpark (within 2x either way).
    let (a, b) = (r_half.len().max(1), r_full.len().max(1));
    assert!(a <= b * 2 && b <= a * 2, "half={a}, full={b}");
}

#[test]
fn pdu_lambda_threshold_is_between_definitions() {
    // PDUApriori's λ*: for pft > 0.5 the Poisson inversion demands more
    // than the raw expected-support threshold (λ* > msup-ish), so PDU's
    // result is a subset of the plain esup result at the same ratio.
    let db = Benchmark::Gazelle.generate(0.02, 13);
    let (min_sup, pft) = (0.02, 0.9);
    let esup_result = UApriori::new().mine_expected_ratio(&db, min_sup).unwrap();
    let pdu_result = PDUApriori::new()
        .mine_probabilistic_raw(&db, min_sup, pft)
        .unwrap();
    let esup_set: std::collections::BTreeSet<_> =
        esup_result.sorted_itemsets().into_iter().collect();
    for itemset in pdu_result.sorted_itemsets() {
        assert!(
            esup_set.contains(&itemset),
            "PDU found {itemset} that plain esup mining at the same ratio missed"
        );
    }
}
