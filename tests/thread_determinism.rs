//! Cross-`UFIM_THREADS` bit-identity suite: every parallelized traversal
//! must produce byte-identical records **and** [`MinerStats`] whatever the
//! worker pool size.
//!
//! The parallel decompositions (level-wise candidate maps, the UH-Struct
//! and UFP-tree first-level fan-outs) all merge per-task results in a
//! fixed item order, and every float is computed within exactly one task —
//! so nothing observable may change between `UFIM_THREADS=1` and any other
//! value. This suite pins that with the scoped
//! [`ufim_core::parallel::with_thread_override`] (thread-local, so tests
//! can sweep pool sizes without env races), mirroring the level-wise
//! determinism test in `ufim_core::parallel` one layer up, at the level of
//! whole mining runs.
//!
//! The large databases are sized to clear the
//! [`ufim_core::parallel::DEFAULT_MIN_WORK`] gate and the miners' spawn
//! cutoffs, so pool sizes > 1 genuinely exercise the work-stealing pool
//! (worker threads spawn fine on single-core hosts; only the
//! interleaving changes). The **deep-skew** fixture additionally pins the
//! *nested* spawn path: its Zipf-style item distribution concentrates
//! almost every transaction in one first-level subtree, so the recursion
//! must re-spawn below the root — the exact shape the one-level fan-out
//! of PR 4 could not balance — and the results must still be
//! bit-identical at every pool size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uncertain_fim::core::parallel::with_thread_override;
use uncertain_fim::core::{EngineKind, MeasureKind, TraversalKind};
use uncertain_fim::miners::{MatrixMiner, NDUHMine, UFPGrowth, UHMine};
use uncertain_fim::prelude::*;

/// Pool sizes to sweep, per the issue: sequential, small, oversubscribed.
const POOLS: [usize; 3] = [1, 2, 8];

/// A database big enough that the depth-first fan-outs and the level-wise
/// candidate maps all clear the parallelism gate (~40k projected units).
fn big_db() -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(99);
    let transactions: Vec<Transaction> = (0..8_000)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..10u32)
                .filter_map(|i| {
                    if rng.gen_bool(0.5) {
                        Some((i, rng.gen_range(0.2..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    UncertainDatabase::with_num_items(transactions, 10)
}

/// A smaller database for the expensive exact-kernel cells (their
/// per-candidate cost is quadratic-ish in the transaction count). These
/// runs mostly stay under the gate — the point is that the merge layer is
/// identical either way, and cheap runs keep the sweep fast.
fn medium_db() -> UncertainDatabase {
    let mut rng = StdRng::seed_from_u64(7);
    let transactions: Vec<Transaction> = (0..600)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..8u32)
                .filter_map(|i| {
                    if rng.gen_bool(0.55) {
                        Some((i, rng.gen_range(0.3..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    UncertainDatabase::with_num_items(transactions, 8)
}

/// The shared deep-skew fixture (`ufim_data::benchmarks::deep_skew`, also
/// used by `bench_parallel`'s guard so the two suites cannot drift): item
/// inclusion decays geometrically from a near-ubiquitous item 0, so the
/// rank-0 subtree dominates every depth-first decomposition (UH-Mine's
/// projected rows, UFP-growth's heavy conditionals) several levels deep —
/// the deep-skew shape that serializes a one-level fan-out. Sized so the
/// dominant chain stays far above the miners' nested-spawn cutoffs for
/// multiple levels.
fn deep_skew_db() -> UncertainDatabase {
    let db = uncertain_fim::data::benchmarks::deep_skew(12_000, 16, 4242);
    // Non-vacuity: the dominant chain must clear the nested-spawn size
    // cutoffs (1024 projected rows / 512 conditional nodes) for at least
    // three levels, otherwise this fixture would never take the nested
    // path it exists to pin.
    let chain3 = db
        .transactions()
        .iter()
        .filter(|t| [0u32, 1, 2].iter().all(|i| t.items().contains(i)))
        .count();
    assert!(chain3 > 2048, "deep-skew fixture lost its skew: {chain3}");
    db
}

/// Byte-level equality of two results: same itemsets in the same
/// canonical order, every statistic bit-identical, same counters.
fn assert_bit_identical(reference: &MiningResult, got: &MiningResult, label: &str) {
    assert_records_bit_identical(reference, got, label);
    assert_eq!(reference.stats, got.stats, "{label}: stats differ");
}

/// Record-level half of [`assert_bit_identical`]: used on its own for
/// cross-mode comparisons (sharded vs. unsharded) where the counters are
/// legitimately mode-specific but the mined records must not move a bit.
fn assert_records_bit_identical(reference: &MiningResult, got: &MiningResult, label: &str) {
    assert_eq!(reference.len(), got.len(), "{label}: result sizes differ");
    for (a, b) in reference.itemsets.iter().zip(&got.itemsets) {
        assert_eq!(a.itemset, b.itemset, "{label}");
        assert_eq!(
            a.expected_support.to_bits(),
            b.expected_support.to_bits(),
            "{label}: esup of {}",
            a.itemset
        );
        assert_eq!(
            a.variance.map(f64::to_bits),
            b.variance.map(f64::to_bits),
            "{label}: variance of {}",
            a.itemset
        );
        assert_eq!(
            a.frequent_prob.map(f64::to_bits),
            b.frequent_prob.map(f64::to_bits),
            "{label}: Pr of {}",
            a.itemset
        );
    }
}

/// Runs `mine` under each pool size and pins every run against the
/// sequential reference.
fn sweep_pools(label: &str, mine: impl Fn() -> MiningResult) {
    let reference = with_thread_override(1, &mine);
    assert!(
        !reference.is_empty(),
        "{label}: fixture found nothing — the sweep would be vacuous"
    );
    for threads in POOLS {
        let got = with_thread_override(threads, &mine);
        assert_bit_identical(&reference, &got, &format!("{label} @ threads={threads}"));
    }
}

#[test]
fn uh_mine_is_bit_identical_across_pool_sizes() {
    let db = big_db();
    sweep_pools("UH-Mine", || {
        UHMine::with_variance()
            .mine_expected_ratio(&db, 0.05)
            .unwrap()
    });
}

#[test]
fn ufp_growth_is_bit_identical_across_pool_sizes() {
    let db = big_db();
    sweep_pools("UFP-growth", || {
        UFPGrowth::new().mine_expected_ratio(&db, 0.05).unwrap()
    });
}

#[test]
fn nduh_mine_is_bit_identical_across_pool_sizes() {
    let db = big_db();
    sweep_pools("NDUH-Mine", || {
        NDUHMine::new()
            .mine_probabilistic_raw(&db, 0.08, 0.5)
            .unwrap()
    });
}

/// Deep skew through UH-Mine: the dominant subtree forces nested
/// re-spawning (every pool size > 1 spawns the same task tree; pool size
/// 1 runs inline) and the merge must stay bit-identical.
#[test]
fn uh_mine_deep_skew_nested_spawns_are_bit_identical() {
    let db = deep_skew_db();
    sweep_pools("UH-Mine deep-skew", || {
        UHMine::with_variance()
            .mine_expected_ratio(&db, 0.05)
            .unwrap()
    });
}

/// Deep skew through UFP-growth: the heavy conditional trees under the
/// dominant ranks re-spawn from inside their tasks.
#[test]
fn ufp_growth_deep_skew_nested_spawns_are_bit_identical() {
    let db = deep_skew_db();
    sweep_pools("UFP-growth deep-skew", || {
        UFPGrowth::new().mine_expected_ratio(&db, 0.05).unwrap()
    });
}

/// Deep skew through NDUH-Mine (hyper traversal + Normal measure): the
/// approximate measure's extra statistics ride the same nested tasks.
#[test]
fn nduh_mine_deep_skew_nested_spawns_are_bit_identical() {
    let db = deep_skew_db();
    sweep_pools("NDUH-Mine deep-skew", || {
        NDUHMine::new()
            .mine_probabilistic_raw(&db, 0.08, 0.5)
            .unwrap()
    });
}

/// Every hyper and tree matrix cell (the traversals this PR parallelized),
/// on the database sized for its measure's cost.
#[test]
fn hyper_and_tree_matrix_cells_are_bit_identical_across_pool_sizes() {
    let big = big_db();
    let medium = medium_db();
    for traversal in [TraversalKind::HyperStructure, TraversalKind::TreeGrowth] {
        for measure in MeasureKind::ALL {
            if !MatrixMiner::supported(measure, traversal) {
                continue;
            }
            let (db, min_sup) = if measure.is_exact() {
                (&medium, 0.3)
            } else {
                (&big, 0.08)
            };
            let cell = MatrixMiner::new(measure, traversal);
            sweep_pools(&format!("{measure}×{traversal}"), || {
                cell.mine_probabilistic_raw(db, min_sup, 0.3).unwrap()
            });
        }
    }
}

/// The sharded support engines (tid-range shards from PR 7): forcing
/// sub-default shard widths on the big fixture engages the shards ×
/// candidates dual parallel axis in the columnar backends and the
/// block-range seam in the horizontal one. Every width must be pool-size
/// invariant down to the full [`MinerStats`], and its records must match
/// the unsharded run bit for bit (counters are mode-specific there: the
/// sharded engines count per-shard kernel invocations and the new shard
/// counters, so only the records cross modes).
#[test]
fn sharded_level_wise_is_bit_identical_across_pool_sizes_and_widths() {
    use uncertain_fim::miners::common::{
        mine_level_wise, mine_level_wise_with_plan, ExpectedSupport,
    };

    let db = big_db();
    let threshold = 0.05 * db.num_transactions() as f64;
    for engine in EngineKind::ALL {
        let unsharded = with_thread_override(1, || {
            mine_level_wise(&db, ExpectedSupport::with_variance(threshold), engine)
        });
        assert!(
            !unsharded.is_empty(),
            "sharded sweep fixture is vacuous on {engine}"
        );
        // 64-tid shards (125 of them) and 1024-tid shards (8): both far
        // below the default width, so the sharded paths genuinely run.
        for width_chunks in [1usize, 16] {
            let plan = ShardPlan::with_width_chunks(width_chunks);
            assert!(
                plan.num_shards(db.num_transactions()) > 1,
                "width {width_chunks} does not shard the fixture"
            );
            let label = format!("sharded level-wise/{engine} width={width_chunks}");
            sweep_pools(&label, || {
                mine_level_wise_with_plan(
                    &db,
                    ExpectedSupport::with_variance(threshold),
                    engine,
                    plan,
                )
            });
            let sharded = with_thread_override(1, || {
                mine_level_wise_with_plan(
                    &db,
                    ExpectedSupport::with_variance(threshold),
                    engine,
                    plan,
                )
            });
            assert_records_bit_identical(&unsharded, &sharded, &label);
        }
    }
}

/// The incremental sliding-window miner (PR 8): each pool size replays the
/// same ingest script from scratch — an initial fill, then three
/// append/expire rounds — and *every* refresh along the way must be
/// bit-identical, records **and** [`MinerStats`], across pool sizes. The
/// incremental layer adds no thread-dependent state of its own (the border
/// tracker's classify/record loop is sequential), so the invariance it
/// inherits from the already-pinned engines must survive intact, on the
/// default plan and under forced 1024-tid shards.
#[test]
fn incremental_refresh_is_bit_identical_across_pool_sizes() {
    use uncertain_fim::miners::common::{ExpectedSupport, IncrementalMiner};

    // One fixed script: big_db-shaped arrivals, enough for the fill plus
    // three incremental rounds.
    let mut rng = StdRng::seed_from_u64(21);
    let script: Vec<Transaction> = (0..8_600)
        .map(|_| {
            let units: Vec<(u32, f64)> = (0..10u32)
                .filter_map(|i| {
                    if rng.gen_bool(0.5) {
                        Some((i, rng.gen_range(0.2..=1.0)))
                    } else {
                        None
                    }
                })
                .collect();
            Transaction::new(units).unwrap()
        })
        .collect();
    let capacity = 8_192usize;
    let threshold = 0.05 * capacity as f64;

    for engine in EngineKind::ALL {
        for (plan_label, plan) in [
            ("default", ShardPlan::for_transactions(capacity)),
            ("width=16", ShardPlan::with_width_chunks(16)),
        ] {
            let run = || -> Vec<MiningResult> {
                let window = WindowedDatabase::new(capacity, 10);
                let mut miner = IncrementalMiner::with_plan(
                    window,
                    ExpectedSupport::with_variance(threshold),
                    engine,
                    plan,
                );
                let mut stream = script.iter().cloned();
                for t in stream.by_ref().take(8_000) {
                    miner.append(t);
                }
                let mut refreshes = vec![miner.refresh().clone()];
                for _ in 0..3 {
                    for t in stream.by_ref().take(200) {
                        miner.append(t);
                    }
                    miner.expire_oldest(100);
                    refreshes.push(miner.refresh().clone());
                }
                refreshes
            };
            let reference = with_thread_override(1, run);
            assert!(
                !reference.iter().all(|r| r.is_empty()),
                "incremental/{engine} {plan_label}: fixture is vacuous"
            );
            for threads in POOLS {
                let got = with_thread_override(threads, run);
                assert_eq!(reference.len(), got.len());
                for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                    assert_bit_identical(
                        a,
                        b,
                        &format!(
                            "incremental/{engine} {plan_label} refresh {i} @ threads={threads}"
                        ),
                    );
                }
            }
        }
    }
}

/// The level-wise column on every backend rides the same merge machinery;
/// sweep it too so the whole matrix is pinned (the issue's "every
/// hyper/tree cell" plus the engine seam the scratch spaces changed).
#[test]
fn level_wise_backends_are_bit_identical_across_pool_sizes() {
    let db = big_db();
    for engine in EngineKind::ALL {
        let cell = MatrixMiner::new(MeasureKind::ExpectedSupport, TraversalKind::LevelWise);
        sweep_pools(&format!("esup×level-wise/{engine}"), || {
            let params = MiningParams::new(0.05, 0.5).unwrap().with_engine(engine);
            cell.mine_probabilistic(&db, params).unwrap()
        });
    }
}
