//! Integration test: the paper's worked example (Table 1, Examples 1–2,
//! Figure 1) holds across every algorithm in the workspace.

use uncertain_fim::core::examples::paper_table1;
use uncertain_fim::miners::Algorithm;
use uncertain_fim::prelude::*;

#[test]
fn example1_every_expected_support_miner() {
    let db = paper_table1();
    let want = vec![Itemset::singleton(0), Itemset::singleton(2)];
    for algo in Algorithm::EXPECTED_SUPPORT
        .into_iter()
        .chain([Algorithm::BruteForce])
    {
        let r = algo
            .expected_support_miner()
            .unwrap()
            .mine_expected_ratio(&db, 0.5)
            .unwrap();
        assert_eq!(r.sorted_itemsets(), want, "{}", algo.name());
        let a = r.get(&Itemset::singleton(0)).unwrap();
        let c = r.get(&Itemset::singleton(2)).unwrap();
        assert!((a.expected_support - 2.1).abs() < 1e-9, "{}", algo.name());
        assert!((c.expected_support - 2.6).abs() < 1e-9, "{}", algo.name());
    }
}

#[test]
fn exact_probabilistic_miners_report_identical_probabilities() {
    let db = paper_table1();
    // Ground truth from first principles: Pr{sup(A) >= 2} over {.8,.8,.5}
    // = 1 - 0.02 - 0.18 = 0.80; Pr{sup(C) >= 2} over {.9,.9,.8}
    // = 1 - (0.1·0.1·0.2) - (0.9·0.1·0.2 + 0.1·0.9·0.2 + 0.1·0.1·0.8)
    // = 1 - 0.002 - 0.044 = 0.954.
    for algo in Algorithm::EXACT_PROBABILISTIC {
        let r = algo
            .probabilistic_miner()
            .unwrap()
            .mine_probabilistic_raw(&db, 0.5, 0.7)
            .unwrap();
        let a = r.get(&Itemset::singleton(0)).expect("A frequent");
        let c = r.get(&Itemset::singleton(2)).expect("C frequent");
        assert!(
            (a.frequent_prob.unwrap() - 0.80).abs() < 1e-9,
            "{}: {:?}",
            algo.name(),
            a.frequent_prob
        );
        assert!(
            (c.frequent_prob.unwrap() - 0.954).abs() < 1e-9,
            "{}: {:?}",
            algo.name(),
            c.frequent_prob
        );
        // At pft = 0.85 only C survives.
        let r2 = algo
            .probabilistic_miner()
            .unwrap()
            .mine_probabilistic_raw(&db, 0.5, 0.85)
            .unwrap();
        assert_eq!(
            r2.sorted_itemsets(),
            vec![Itemset::singleton(2)],
            "{}",
            algo.name()
        );
    }
}

#[test]
fn figure1_frequency_order_is_respected_by_depth_first_miners() {
    // min_esup = 0.25: all six items frequent, ordered C,A,F,B,E,D. Both
    // depth-first miners must find the same complete result set as the
    // breadth-first one.
    let db = paper_table1();
    let reference = UApriori::new().mine_expected_ratio(&db, 0.25).unwrap();
    for algo in [Algorithm::UFPGrowth, Algorithm::UHMine] {
        let r = algo
            .expected_support_miner()
            .unwrap()
            .mine_expected_ratio(&db, 0.25)
            .unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            reference.sorted_itemsets(),
            "{}",
            algo.name()
        );
    }
    assert_eq!(reference.len(), 8); // 6 singletons + {A,C} + {C,E}
}

#[test]
fn table2_semantics() {
    // Any support PMF equal to Table 2 yields Example 2's 0.72.
    let pmf = uncertain_fim::core::examples::table2_distribution();
    let pr = uncertain_fim::stats::pb::survival_from_pmf(&pmf, 2);
    assert!((pr - 0.72).abs() < 1e-12);
    assert!(pr > 0.7, "Example 2: qualifies at pft = 0.7");
}

#[test]
fn approximate_miners_run_on_the_micro_example() {
    // N = 4 is far below CLT territory; the contract here is only that the
    // approximate miners run, report sane probabilities, and include every
    // itemset whose exact probability is overwhelming.
    let db = paper_table1();
    for algo in [
        Algorithm::PDUApriori,
        Algorithm::NDUApriori,
        Algorithm::NDUHMine,
    ] {
        let r = algo
            .probabilistic_miner()
            .unwrap()
            .mine_probabilistic_raw(&db, 0.25, 0.5)
            .unwrap();
        for fi in &r.itemsets {
            if let Some(p) = fi.frequent_prob {
                assert!((0.0..=1.0).contains(&p), "{}", algo.name());
            }
        }
        // {C} has Pr{sup >= 1} = 1 - 0.1·0.1·0.2 = 0.998: must be found.
        assert!(
            r.get(&Itemset::singleton(2)).is_some(),
            "{} missed the overwhelming itemset",
            algo.name()
        );
    }
}
