//! Serving-layer guarantees: warm answers from the cross-query memo must
//! be **bit-identical** to cold `MatrixMiner` mines at the same
//! parameters, for every engine × measure × threshold × thread count, and
//! concurrent clients must be perfectly isolated — interleaved queries
//! return the same bytes as serialized ones.
//!
//! Why bit-identity is provable rather than hoped-for: the engine
//! statistics of a candidate (esup, variance, count, probability vector)
//! do not depend on the threshold, the determinism machinery (fixed
//! summation shapes, `OrderedSink`) makes them identical for every
//! `UFIM_THREADS`, and every measure's keep-set shrinks as its threshold
//! tightens — so re-judging the retained basis records at a covered query
//! threshold reproduces exactly the cold record set, floats and all.

use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;
use uncertain_fim::core::parallel::with_thread_override;
use uncertain_fim::core::{EngineKind, MeasureKind, TraversalKind};
use uncertain_fim::miners::{top_k_by_expected_support, MatrixMiner};
use uncertain_fim::prelude::*;
use uncertain_fim::serve::{MemoOutcome, ResidentMemo, ServeCore};

/// Strategy: a probability strictly in (0, 1].
fn prob() -> impl Strategy<Value = f64> {
    (1u32..=1000).prop_map(|k| k as f64 / 1000.0)
}

/// Strategy: a small uncertain database (≤ 24 transactions over ≤ 6 items).
fn small_db() -> impl Strategy<Value = UncertainDatabase> {
    vec(vec((0u32..6, prob()), 0..6), 1..24).prop_map(|raw| {
        let transactions = raw
            .into_iter()
            .map(|units| {
                let mut dedup = std::collections::BTreeMap::new();
                for (i, p) in units {
                    dedup.entry(i).or_insert(p);
                }
                Transaction::new(dedup.into_iter().collect::<Vec<_>>()).unwrap()
            })
            .collect();
        UncertainDatabase::with_num_items(transactions, 6)
    })
}

/// The cold oracle: a level-wise `MatrixMiner` run, canonicalized.
fn cold(
    db: &UncertainDatabase,
    measure: MeasureKind,
    engine: EngineKind,
    params: &MiningParams,
) -> MiningResult {
    let mut r = MatrixMiner::new(measure, TraversalKind::LevelWise)
        .mine_probabilistic(db, params.with_engine(engine))
        .unwrap();
    r.canonicalize();
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The tentpole guarantee: prime the memo at a low basis threshold,
    // then answer every query threshold warm — records (itemsets, esup,
    // variance, frequent-probability floats) must equal the cold mine
    // bit for bit, across engines × measures × thresholds.
    #[test]
    fn warm_sweep_is_bit_identical_to_cold_mining(
        db in small_db(),
        basis_pct in 10u32..=40,
        sweep_pct in 40u32..=95,
        pft_pct in 10u32..=90,
    ) {
        let basis = MiningParams::new(f64::from(basis_pct) / 100.0, f64::from(pft_pct) / 100.0).unwrap();
        let query = MiningParams::new(f64::from(sweep_pct) / 100.0, f64::from(pft_pct) / 100.0).unwrap();
        for measure in MeasureKind::ALL {
            for engine in EngineKind::ALL {
                let memo = ResidentMemo::new(1 << 20);
                let (base, o) = memo.answer("db", &db, measure, engine, &basis).unwrap();
                prop_assert_eq!(o, MemoOutcome::Miss);
                prop_assert_eq!(&base.itemsets, &cold(&db, measure, engine, &basis).itemsets,
                    "basis records diverge for {}x{}", measure, engine);
                let (warm, o) = memo.answer("db", &db, measure, engine, &query).unwrap();
                prop_assert_eq!(o, MemoOutcome::Hit, "{}x{} query not covered", measure, engine);
                prop_assert_eq!(warm.stats.intersections, 0u64);
                prop_assert_eq!(warm.stats.scans, 0u64);
                let want = cold(&db, measure, engine, &query);
                prop_assert_eq!(&warm.itemsets, &want.itemsets,
                    "warm records diverge for {}x{}", measure, engine);
            }
        }
    }

    // Top-k over a warm answer equals top-k over the cold mine — same
    // deterministic order, same floats.
    #[test]
    fn warm_top_k_matches_cold_top_k(db in small_db(), k in 1usize..8) {
        let basis = MiningParams::new(0.2, 0.3).unwrap();
        let query = MiningParams::new(0.4, 0.6).unwrap();
        for engine in EngineKind::ALL {
            let memo = ResidentMemo::new(1 << 20);
            memo.answer("db", &db, MeasureKind::Normal, engine, &basis).unwrap();
            let (warm, o) = memo.answer("db", &db, MeasureKind::Normal, engine, &query).unwrap();
            prop_assert_eq!(o, MemoOutcome::Hit);
            let want = cold(&db, MeasureKind::Normal, engine, &query);
            let warm_top: Vec<FrequentItemset> =
                top_k_by_expected_support(&warm, k, 1).into_iter().cloned().collect();
            let cold_top: Vec<FrequentItemset> =
                top_k_by_expected_support(&want, k, 1).into_iter().cloned().collect();
            prop_assert_eq!(warm_top, cold_top, "top-{} diverges on {}", k, engine);
        }
    }
}

/// Warm answers are identical for every per-request thread cap — the
/// admission-cap isolation cannot change what a query computes.
#[test]
fn warm_answers_identical_across_thread_caps() {
    let db = uncertain_fim::core::examples::paper_table1();
    let basis = MiningParams::new(0.25, 0.3).unwrap();
    let query = MiningParams::new(0.5, 0.7).unwrap();
    for measure in MeasureKind::ALL {
        for engine in EngineKind::ALL {
            let reference: Vec<MiningResult> = [1usize, 4, 8]
                .iter()
                .map(|&threads| {
                    with_thread_override(threads, || {
                        let memo = ResidentMemo::new(1 << 20);
                        memo.answer("t1", &db, measure, engine, &basis).unwrap();
                        let (warm, o) = memo.answer("t1", &db, measure, engine, &query).unwrap();
                        assert_eq!(o, MemoOutcome::Hit);
                        assert_eq!(warm.stats.intersections, 0);
                        warm
                    })
                })
                .collect();
            let cold_ref = with_thread_override(1, || cold(&db, measure, engine, &query));
            for (i, warm) in reference.iter().enumerate() {
                assert_eq!(
                    warm.itemsets, cold_ref.itemsets,
                    "{measure}x{engine} thread cap #{i}"
                );
            }
        }
    }
}

/// The wire-level traffic a concurrency test replays: a mix of sweeps,
/// top-k, probes, and a depth-first mine, all warm-answerable or
/// memo-independent after priming.
fn mixed_queries() -> Vec<String> {
    let mut lines = Vec::new();
    for engine in ["horizontal", "vertical", "diffset"] {
        lines.push(format!(
            r#"{{"op":"sweep","dataset":"t1","measure":"esup","engine":"{engine}","pft":0.7,"thresholds":[0.5,0.75],"records":true}}"#
        ));
        lines.push(format!(
            r#"{{"op":"topk","dataset":"t1","measure":"normal","engine":"{engine}","min_sup":0.5,"pft":0.5,"k":4,"min_len":1}}"#
        ));
        lines.push(format!(
            r#"{{"op":"probe","dataset":"t1","measure":"esup","engine":"{engine}","min_sup":0.5,"pft":0.7,"itemset":[0]}}"#
        ));
        lines.push(format!(
            r#"{{"op":"probe","dataset":"t1","measure":"exact-dp","engine":"{engine}","min_sup":0.5,"pft":0.7,"itemset":[1,2]}}"#
        ));
    }
    lines.push(
        r#"{"op":"mine","dataset":"t1","measure":"esup","traversal":"hyper","min_sup":0.5,"pft":0.7,"records":true}"#.to_string(),
    );
    lines
}

/// Primes every memo cell the mixed traffic touches, so replays are warm
/// and memo state no longer mutates (the precondition for byte-equality
/// under arbitrary interleavings).
fn primed_core() -> Arc<ServeCore> {
    let core = Arc::new(ServeCore::new(1 << 22));
    core.load_db("t1", uncertain_fim::core::examples::paper_table1());
    let prime = MiningParams::new(0.25, 0.3).unwrap();
    for measure in MeasureKind::ALL {
        for engine in EngineKind::ALL {
            core.answer("t1", measure, engine, &prime).unwrap();
        }
    }
    core
}

/// Concurrent-client isolation: for pool sizes 1/4/8, interleaved clients
/// get byte-for-byte the same responses a serialized replay gets.
#[test]
fn interleaved_clients_get_serialized_bytes() {
    let core = primed_core();
    let queries = mixed_queries();
    // The serialized oracle: one client, in order.
    let serialized: Vec<String> = queries.iter().map(|q| core.handle_line(q)).collect();
    for clients in [1usize, 4, 8] {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let core = Arc::clone(&core);
                let queries = queries.clone();
                std::thread::spawn(move || {
                    // Stagger each client's starting offset to force
                    // different interleavings of the same query set.
                    let responses: Vec<(usize, String)> = (0..queries.len())
                        .map(|i| {
                            let q = (i + c) % queries.len();
                            (q, core.handle_line(&queries[q]))
                        })
                        .collect();
                    responses
                })
            })
            .collect();
        for h in handles {
            for (q, response) in h.join().unwrap() {
                assert_eq!(
                    response, serialized[q],
                    "interleaved response diverges with {clients} clients"
                );
            }
        }
    }
    // All that traffic was warm: zero new misses or extends beyond the
    // priming mines (probes on uncovered exact cells count as misses at
    // priming time only if uncovered — assert no extends at least).
    assert_eq!(core.memo().counters().extends, 0);
}
