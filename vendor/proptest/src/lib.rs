//! Offline in-tree shim for the subset of `proptest` used by this
//! workspace: range / tuple / `prop_map` / `collection::vec` strategies, the
//! [`proptest!`] macro, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from crates.io proptest, by design:
//!
//! * **no shrinking** — a failing case reports its seed and case number
//!   instead of a minimized input;
//! * **deterministic seeding** — each test's RNG is seeded from the hash of
//!   its name (override with `PROPTEST_SEED`), so failures reproduce exactly;
//! * `ProptestConfig` carries only `cases`.
//!
//! The strategy API is the same shape (`Strategy<Value = T>`, combinators
//! return strategies), so test code written against this shim also compiles
//! against real proptest.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test execution configuration and error plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's `Config`: just the case count.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed `prop_assert!` — carried as an `Err` so the harness can
    /// attach case context before panicking.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The per-test RNG. Deterministic: seeded from the test name (or the
    /// `PROPTEST_SEED` environment variable), then advanced per case.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(name: &str) -> TestRng {
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = s.parse::<u64>() {
                    return TestRng(StdRng::seed_from_u64(seed));
                }
            }
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates random values of an output type. Unlike real proptest there
    /// is no value tree / shrinking: `generate` produces the value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.0.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.0.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector whose length is uniform in `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in vec(0f64..1.0, 1..5)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_and_tuple_compose(v in vec((0u32..5, 1u32..=10), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 5);
                prop_assert!((1..=10).contains(&b));
            }
        }

        #[test]
        fn prop_map_applies(x in (1u32..=100).prop_map(|k| k as f64 / 100.0)) {
            prop_assert!(x > 0.0 && x <= 1.0, "{} out of range", x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!((0u32..100).generate(&mut a), (0u32..100).generate(&mut b));
        }
    }
}
