//! Offline in-tree shim for the subset of `criterion` used by this
//! workspace's benches: `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm up for `warm_up_time`, then
//! take `sample_size` samples sized to fill `measurement_time`, and print
//! mean / min / max nanoseconds per iteration — statistically cruder than
//! real criterion but honest wall-clock numbers, which is all the
//! workspace's benches need. `cargo bench` filters (a trailing substring
//! argument) are honored.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("algo", "dataset")` → `algo/dataset`.
    pub fn new<F: Display, P: Display>(function_id: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs closures under timing; handed to bench bodies.
pub struct Bencher<'a> {
    cfg: &'a GroupConfig,
    /// Filled by `iter`: (mean, min, max) nanoseconds per iteration.
    result: Option<(f64, f64, f64)>,
}

impl Bencher<'_> {
    /// Times `f`, first warming up then sampling.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Sampling: `sample_size` samples, each sized so all samples
        // together roughly fill the measurement budget.
        let samples = self.cfg.sample_size.max(2);
        let budget = self.cfg.measurement.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let mut means = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            means.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let min = means.iter().copied().fold(f64::INFINITY, f64::min);
        let max = means.iter().copied().fold(0.0f64, f64::max);
        self.result = Some((mean * 1e9, min * 1e9, max * 1e9));
    }
}

#[derive(Clone, Debug)]
struct GroupConfig {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: GroupConfig,
    filter: &'a Option<String>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    /// Total sampling budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            cfg: &self.cfg,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((mean, min, max)) => println!(
                "{full:<56} time: [{} {} {}]",
                fmt_ns(min),
                fmt_ns(mean),
                fmt_ns(max)
            ),
            None => println!("{full:<56} (no measurement)"),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        self.run(&id.id, f);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (printing happens eagerly; this is for API parity).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads a benchmark-name filter from the command line, skipping the
    /// flags cargo-bench passes (`--bench`, `--profile-time`, …).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--profile-time" || a == "--save-baseline" || a == "--baseline" {
                let _ = args.next();
            } else if !a.starts_with('-') {
                self.filter = Some(a);
            }
        }
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: GroupConfig::default(),
            filter: &self.filter,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: String::new(),
            cfg: GroupConfig::default(),
            filter: &self.filter,
        };
        g.run(id, f);
        drop(g);
        self
    }

    /// No-op for API parity.
    pub fn final_summary(&mut self) {}
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("algo", "ds").id, "algo/ds");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
        assert_eq!(BenchmarkId::from("x").id, "x");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn format_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
