//! A persistent work-stealing task pool with nested spawning — the
//! offline stand-in for rayon-core's scheduler, hand-rolled like the other
//! `vendor/` shims because the build environment has no crates.io access.
//!
//! ## Architecture
//!
//! One process-global [`Pool`] owns up to [`MAX_WORKERS`] worker threads,
//! spawned **lazily**: the pool starts empty and grows to the high-water
//! mark of requested parallelism, never shrinking (parked workers cost a
//! few KB of stack each). Each worker owns a fixed-capacity
//! **Chase-Lev-style deque** (Chase & Lev, SPAA 2005, with the C11
//! memory-ordering corrections of Lê et al., PPoPP 2013): the owner pushes
//! and pops at the bottom (LIFO — depth-first task order keeps working
//! sets hot), thieves steal from the top (FIFO — they take the oldest,
//! biggest-grained work). A shared mutex-guarded **injector** queue takes
//! spawns from non-worker threads and the overflow when a deque is full.
//!
//! ## Scopes
//!
//! All spawning happens inside a [`scope`]: tasks may borrow data owned by
//! the scope's caller (`'env`), and [`scope`] does not return until every
//! task spawned within it — **including tasks spawned by tasks**, to any
//! depth — has completed. That nested [`Scope::spawn`] is the point of the
//! design: a recursive traversal can re-spawn child subtrees from inside a
//! running task, so a single dominant subtree no longer serializes on one
//! worker the way a one-shot fan-out forces it to.
//!
//! While waiting, the scope's owner executes pending tasks itself, so the
//! owner thread is always the scope's first participant and a pool of
//! `threads` means *owner + (threads − 1) workers*.
//!
//! ## Concurrency caps (partitioning a shared pool)
//!
//! Each scope carries a fixed `threads` cap chosen at creation. The pool
//! is shared by every scope in the process, so the cap is enforced by
//! **admission**: at most `threads` threads execute a given scope's tasks
//! concurrently; a worker that draws a task from a saturated scope
//! re-queues it and backs off. A cap of 1 short-circuits entirely —
//! [`Scope::spawn`] runs the task inline, synchronously, and the pool is
//! never touched, which keeps single-threaded runs genuinely sequential.
//!
//! ## Determinism contract
//!
//! The pool itself promises only that every spawned task runs **exactly
//! once** and that [`scope`] observes all of them complete. Callers that
//! need bit-identical results across pool sizes (this workspace's miners)
//! must make the *decomposition* a pure function of the input and collect
//! per-task outputs under deterministic keys — see
//! `ufim_core::parallel::OrderedSink`. Scheduling order is intentionally
//! free; result order must never derive from it.
//!
//! ## Panics
//!
//! A panic inside a task is caught on the worker, the first payload is
//! stored, the scope still drains fully (no task is leaked mid-borrow),
//! and the payload is re-thrown from [`scope`] on the owner's thread.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Hard upper bound on persistent worker threads. Requests beyond it are
/// admitted (the cap still limits concurrency) but execute on at most this
/// many workers plus the scope owners.
pub const MAX_WORKERS: usize = 32;

/// Per-worker deque capacity (power of two). Overflow spills to the
/// shared injector, so the bound affects locality, never correctness.
const DEQUE_CAP: usize = 256;

/// Backstop park timeout: workers re-poll at this cadence even if a
/// wake-up notification is lost to the push-vs-park race on the deques
/// (pushes to a worker's own deque happen outside the injector lock).
const PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// Back-off after drawing a task from a scope whose concurrency cap is
/// saturated: the task is re-queued and the thread briefly sleeps instead
/// of spinning on re-admission.
const ADMISSION_BACKOFF: Duration = Duration::from_micros(100);

/// A type-erased, lifetime-erased task body. Soundness of the `'env →
/// 'static` erasure rests on [`scope`] not returning until the body has
/// run (see [`Scope::spawn`]).
type TaskBody = Box<dyn FnOnce() + Send + 'static>;

/// One queued task: the body plus the scope it must be accounted to.
struct Task {
    scope: Arc<ScopeState>,
    body: TaskBody,
}

/// A `Box<Task>` travelling through the queues as a raw pointer (the
/// Chase-Lev buffer stores machine words). Ownership is linear: exactly
/// one successful `pop`/`steal`/injector-pop re-materializes the box.
struct RawTask(*mut Task);

// SAFETY: a RawTask is a uniquely-owned `Box<Task>` in disguise; `Task`
// itself is Send (body is `Send`, the Arc is Send+Sync), and the queue
// protocols hand each pointer to exactly one consumer.
unsafe impl Send for RawTask {}

/// Shared bookkeeping of one [`scope`] invocation.
struct ScopeState {
    /// Tasks spawned and not yet finished.
    pending: AtomicUsize,
    /// Maximum threads (owner included) executing this scope concurrently.
    cap: usize,
    /// Threads currently executing one of this scope's tasks.
    active: AtomicUsize,
    /// First panic payload thrown by a task, re-thrown at scope exit.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Completion signal: notified when `pending` drops to zero.
    done: Mutex<()>,
    done_cond: Condvar,
}

impl ScopeState {
    fn new(cap: usize) -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            cap,
            active: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(()),
            done_cond: Condvar::new(),
        }
    }

    /// Racy capacity hint for queue scans: whether an execution slot
    /// *looks* free right now. [`ScopeState::try_enter`] remains the
    /// authoritative gate; a stale `true` here only costs one failed
    /// admission, a stale `false` only delays a task until the next
    /// notification or park timeout.
    fn looks_admissible(&self) -> bool {
        self.active.load(Ordering::Relaxed) < self.cap
    }

    /// Claims an execution slot; fails when the cap is saturated.
    fn try_enter(&self) -> bool {
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if cur >= self.cap {
                return false;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    fn leave(&self) {
        self.active.fetch_sub(1, Ordering::Release);
    }

    /// Records a task completion; wakes the owner on the last one.
    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done.lock().unwrap();
            self.done_cond.notify_all();
        }
    }

    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Outcome of one steal attempt on a foreign deque.
enum Steal {
    /// The deque looked empty.
    Empty,
    /// Lost a race; worth retrying immediately.
    Retry,
    /// Successfully stole the top task.
    Yes(RawTask),
}

/// A fixed-capacity Chase-Lev work-stealing deque over raw task pointers.
///
/// Single owner (`push`/`pop` from the bottom), many thieves (`steal`
/// from the top). The buffer slots are `AtomicPtr`, which keeps every
/// cross-thread slot access a plain atomic op; the `top`/`bottom` index
/// protocol below is the published algorithm (Chase & Lev 2005; orderings
/// per Lê et al. 2013). The capacity is fixed — `push` reports a full
/// deque instead of growing, and the caller spills to the injector — so
/// no buffer ever needs reclamation.
struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    slots: Box<[AtomicPtr<Task>]>,
}

impl Deque {
    fn new() -> Self {
        let slots: Vec<AtomicPtr<Task>> = (0..DEQUE_CAP)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    #[inline]
    fn slot(&self, index: isize) -> &AtomicPtr<Task> {
        &self.slots[(index as usize) & (DEQUE_CAP - 1)]
    }

    /// Owner-only bottom push. `Err` hands the task back when full.
    fn push(&self, task: RawTask) -> Result<(), RawTask> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= DEQUE_CAP as isize {
            return Err(task);
        }
        self.slot(b).store(task.0, Ordering::Relaxed);
        // Publish the slot before publishing the new bottom.
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Owner-only bottom pop (LIFO).
    fn pop(&self) -> Option<RawTask> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The store above must be visible before we read `top`, and
        // symmetrically for thieves — the crux of the algorithm.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let task = self.slot(b).load(Ordering::Relaxed);
        if t == b {
            // Last element: race the thieves for it via `top`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                return None; // a thief got it
            }
        }
        Some(RawTask(task))
    }

    /// Any-thread top steal (FIFO).
    fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let task = self.slot(t).load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        Steal::Yes(RawTask(task))
    }
}

thread_local! {
    /// The index of this thread's own deque when it is a pool worker.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The process-global work-stealing pool. Obtain it with [`Pool::global`];
/// it cannot be constructed directly.
pub struct Pool {
    /// One deque per potential worker, pre-allocated so thieves can sweep
    /// without locking. Unspawned workers' deques just stay empty.
    deques: Vec<Deque>,
    /// Spawns from non-worker threads, deque overflow, and re-queued
    /// admission-blocked tasks.
    injector: Mutex<VecDeque<RawTask>>,
    /// Workers parked on `work_cond` (paired with the injector mutex).
    sleepers: AtomicUsize,
    work_cond: Condvar,
    /// Worker threads spawned so far (monotonic, ≤ [`MAX_WORKERS`]).
    started: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The process-global pool (created empty on first use; worker
    /// threads are spawned lazily by [`scope`]).
    pub fn global() -> &'static Pool {
        POOL.get_or_init(|| Pool {
            deques: (0..MAX_WORKERS).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleepers: AtomicUsize::new(0),
            work_cond: Condvar::new(),
            started: Mutex::new(0),
        })
    }

    /// Number of worker threads spawned so far — the pool's high-water
    /// mark (monotonic; exposed for tests and diagnostics).
    pub fn workers_started(&self) -> usize {
        *self.started.lock().unwrap()
    }

    /// Grows the pool to at least `n` workers (clamped to
    /// [`MAX_WORKERS`]). Failures to spawn are tolerated: scope owners
    /// always drain their own tasks, so fewer workers only costs speed.
    fn ensure_workers(&'static self, n: usize) {
        let n = n.min(MAX_WORKERS);
        if *self.started.lock().unwrap() >= n {
            return;
        }
        let mut started = self.started.lock().unwrap();
        while *started < n {
            let index = *started;
            let spawned = std::thread::Builder::new()
                .name(format!("workpool-{index}"))
                .spawn(move || self.worker_loop(index));
            if spawned.is_err() {
                break;
            }
            *started += 1;
        }
    }

    /// Queues a task: a worker pushes to its own deque (spilling to the
    /// injector when full), any other thread goes through the injector.
    fn submit(&self, task: RawTask) {
        let spilled = match WORKER_INDEX.get() {
            Some(index) => self.deques[index].push(task).err(),
            None => Some(task),
        };
        match spilled {
            Some(task) => self.inject(task),
            None => self.notify(),
        }
    }

    /// Queues a task on the shared injector directly, bypassing the
    /// worker's own deque. Used for spills and for admission-blocked
    /// tasks: re-queueing a blocked task to the deque we are about to pop
    /// from again would make the thread busy-poll it instead of stealing
    /// runnable work from another scope or parking.
    fn inject(&self, task: RawTask) {
        let mut q = self.injector.lock().unwrap();
        q.push_back(task);
        // Notify under the lock: cheap, and cannot be lost.
        self.work_cond.notify_one();
    }

    /// Wakes one parked worker if any are parked. Pushes to a worker's
    /// own deque race with parking; [`PARK_TIMEOUT`] bounds the loss.
    fn notify(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.injector.lock().unwrap();
            self.work_cond.notify_one();
        }
    }

    /// Finds one runnable task: own deque first (LIFO), then a steal
    /// sweep over every other deque, then the injector. The injector scan
    /// skips tasks whose scope looks saturated — they stay queued and the
    /// caller parks instead of cycling them, so a capped scope never
    /// hot-spins the surplus workers (admission freeing up re-notifies;
    /// the park timeout backstops the racy capacity hint).
    fn find_task(&self, me: Option<usize>) -> Option<RawTask> {
        if let Some(index) = me {
            if let Some(task) = self.deques[index].pop() {
                return Some(task);
            }
        }
        // Steal sweep. Start after our own slot so thieves spread out;
        // retry a deque a few times on CAS races before moving on.
        let start = me.map_or(0, |i| i + 1);
        for offset in 0..MAX_WORKERS {
            let j = (start + offset) % MAX_WORKERS;
            if Some(j) == me {
                continue;
            }
            for _ in 0..4 {
                match self.deques[j].steal() {
                    Steal::Yes(task) => return Some(task),
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => break,
                }
            }
        }
        let mut q = self.injector.lock().unwrap();
        for i in 0..q.len() {
            // SAFETY: the pointer is a live uniquely-owned Box<Task>
            // sitting in the queue (we hold the queue lock), read-only
            // here; ownership only transfers via the remove below.
            let admissible = unsafe { (*q[i].0).scope.looks_admissible() };
            if admissible {
                return q.remove(i);
            }
        }
        None
    }

    /// Executes one drawn task, honoring its scope's concurrency cap:
    /// blocked tasks are re-queued and the thread backs off briefly.
    fn execute(&self, raw: RawTask) {
        // SAFETY: RawTask ownership is linear (see its definition); this
        // is the unique re-materialization of the box.
        let task = unsafe { Box::from_raw(raw.0) };
        if task.scope.try_enter() {
            let scope = Arc::clone(&task.scope);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task.body)) {
                scope.store_panic(payload);
            }
            scope.leave();
            scope.finish_one();
            // Leaving may unblock admission for a re-queued sibling.
            self.notify();
        } else {
            self.inject(RawTask(Box::into_raw(task)));
            std::thread::sleep(ADMISSION_BACKOFF);
        }
    }

    /// The persistent worker body: run tasks, steal, park.
    fn worker_loop(&'static self, index: usize) {
        WORKER_INDEX.set(Some(index));
        loop {
            match self.find_task(Some(index)) {
                Some(task) => self.execute(task),
                None => self.park(),
            }
        }
    }

    /// Parks until notified or [`PARK_TIMEOUT`] elapses. Parking even
    /// when the injector is non-empty is deliberate: anything left there
    /// was skipped as saturated by [`Pool::find_task`], and admission
    /// freeing up notifies this condvar ([`Pool::execute`] after
    /// `leave`), with the timeout bounding any notify race.
    fn park(&self) {
        let guard = self.injector.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let _ = self.work_cond.wait_timeout(guard, PARK_TIMEOUT).unwrap();
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Blocks until `state.pending` reaches zero, executing pending tasks
    /// (of any scope) while waiting — the owner is a full participant.
    fn wait_scope(&self, state: &ScopeState) {
        let me = WORKER_INDEX.get();
        loop {
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            match self.find_task(me) {
                Some(task) => self.execute(task),
                None => {
                    let guard = state.done.lock().unwrap();
                    if state.pending.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    let _ = state
                        .done_cond
                        .wait_timeout(guard, Duration::from_micros(500))
                        .unwrap();
                }
            }
        }
    }
}

/// A spawning handle tied to one [`scope`] invocation. `'env` is the
/// lifetime of data the caller lets tasks borrow; the `PhantomData` makes
/// it invariant so it cannot be shrunk.
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    pool: &'static Pool,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// The scope's thread budget (owner included) — the `threads` given
    /// to [`scope`]. Spawn-cutoff heuristics read this instead of any
    /// thread-local state so decisions inside tasks match the owner's.
    pub fn threads(&self) -> usize {
        self.state.cap
    }

    /// Spawns `f` as a pool task. The closure receives the scope again,
    /// so tasks can spawn nested tasks to any depth. With a thread budget
    /// of 1 the call is synchronous (`f` runs inline, right here), which
    /// makes single-threaded execution genuinely sequential.
    ///
    /// Panics in `f` are captured and re-thrown by [`scope`] after the
    /// scope fully drains.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        if self.state.cap <= 1 {
            f(self);
            return;
        }
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let pool = self.pool;
        let body: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let scope = Scope {
                state,
                pool,
                _env: PhantomData,
            };
            f(&scope);
        });
        // SAFETY: erasing 'env to 'static is sound because `scope` (the
        // only constructor of `Scope`) does not return — not even on
        // panic — until `pending` drops to zero, i.e. until this body has
        // run to completion. No borrow inside `f` can outlive its data.
        let body: TaskBody = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(body)
        };
        let task = Box::new(Task {
            scope: Arc::clone(&self.state),
            body,
        });
        self.pool.submit(RawTask(Box::into_raw(task)));
    }
}

/// Runs `f` with a [`Scope`] capped at `threads` concurrent executors
/// (the calling thread counts as one), returning once `f` **and every
/// task transitively spawned in the scope** have completed.
///
/// The pool grows (persistently, up to [`MAX_WORKERS`] workers) to serve
/// the request; it is shared with every other scope in the process, the
/// cap partitioning it by admission. If a task — or `f` itself —
/// panicked, the first task payload (else `f`'s) is re-thrown here after
/// the scope drains, so borrowed data is never abandoned mid-task.
pub fn scope<'env, R>(threads: usize, f: impl FnOnce(&Scope<'env>) -> R) -> R {
    let threads = threads.max(1);
    let pool = Pool::global();
    if threads > 1 {
        pool.ensure_workers(threads - 1);
    }
    let state = Arc::new(ScopeState::new(threads));
    let handle = Scope {
        state: Arc::clone(&state),
        pool,
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&handle)));
    pool.wait_scope(&state);
    if let Some(payload) = state.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }
    match result {
        Ok(value) => value,
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_tasks() {
        let hits = AtomicUsize::new(0);
        scope(4, |s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn cap_one_is_inline_and_sequential() {
        // With a budget of 1, spawn is synchronous on the caller: the
        // strictly increasing order proves no deferral, and the thread id
        // proves no task ever reached a pool worker. (No assertions on
        // the process-global queues — sibling tests share them.)
        let caller = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        let order_ref = &order;
        scope(1, |s| {
            for i in 0..50 {
                s.spawn(move |_| {
                    assert_eq!(std::thread::current().id(), caller);
                    order_ref.lock().unwrap().push(i);
                });
            }
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawns_to_depth_five() {
        // A 3-ary spawn tree of depth 5: 3^0 + ... + 3^5 = 364 tasks.
        fn grow<'env>(s: &Scope<'env>, sum: &'env AtomicU64, depth: u64, label: u64) {
            sum.fetch_add(label, Ordering::Relaxed);
            if depth == 5 {
                return;
            }
            for child in 0..3u64 {
                let label = label * 3 + child + 1;
                s.spawn(move |s| grow(s, sum, depth + 1, label));
            }
        }
        let expected = {
            // Sequential reference of the same tree.
            fn walk(depth: u64, label: u64) -> u64 {
                let mut total = label;
                if depth < 5 {
                    for child in 0..3u64 {
                        total += walk(depth + 1, label * 3 + child + 1);
                    }
                }
                total
            }
            walk(0, 0)
        };
        for threads in [1, 2, 8] {
            let sum = AtomicU64::new(0);
            scope(threads, |s| grow(s, &sum, 0, 0));
            assert_eq!(sum.load(Ordering::Relaxed), expected, "threads={threads}");
        }
    }

    #[test]
    fn deque_overflow_spills_to_injector() {
        // Far more tasks than DEQUE_CAP from inside a worker task: the
        // overflow must spill, not be dropped.
        let hits = AtomicUsize::new(0);
        scope(2, |s| {
            s.spawn(|s| {
                for _ in 0..(DEQUE_CAP * 4) {
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), DEQUE_CAP * 4);
    }

    #[test]
    fn panic_in_task_propagates_after_drain() {
        let completed = Arc::new(AtomicUsize::new(0));
        let seen = completed.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(4, |s| {
                for i in 0..20 {
                    let completed = seen.clone();
                    s.spawn(move |_| {
                        if i == 7 {
                            panic!("task seven failed");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "task seven failed");
        // Every non-panicking task still ran: the scope drained fully
        // before re-throwing.
        assert_eq!(completed.load(Ordering::Relaxed), 19);
    }

    #[test]
    fn panic_in_owner_closure_still_drains_tasks() {
        let hits = Arc::new(AtomicUsize::new(0));
        let seen = hits.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(4, |s| {
                for _ in 0..10 {
                    let hits = seen.clone();
                    s.spawn(move |_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("owner failed");
            });
        }));
        assert!(result.is_err());
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn pool_grows_monotonically_and_is_reused() {
        scope(3, |s| s.spawn(|_| {}));
        let after_three = Pool::global().workers_started();
        assert!(after_three >= 2);
        scope(2, |s| s.spawn(|_| {}));
        // A smaller request never shrinks the pool.
        assert!(Pool::global().workers_started() >= after_three);
    }

    #[test]
    fn admission_cap_bounds_concurrency() {
        // Track the high-water mark of concurrently running tasks under a
        // cap of 2 while many workers are available.
        scope(8, |s| s.spawn(|_| {})); // grow the pool first
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        scope(2, |s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(200));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {:?}", peak);
    }

    #[test]
    fn scope_returns_closure_value() {
        let value = scope(4, |s| {
            s.spawn(|_| {});
            41 + 1
        });
        assert_eq!(value, 42);
    }

    #[test]
    fn tasks_borrow_scope_local_data() {
        let data: Vec<u64> = (0..1000).collect();
        let total = AtomicU64::new(0);
        scope(4, |s| {
            for chunk in data.chunks(100) {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000 * 999 / 2);
    }
}
