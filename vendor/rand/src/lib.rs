//! Offline in-tree shim for the subset of the `rand` 0.8 API used by this
//! workspace: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_bool`] / [`Rng::gen_range`], and
//! [`distributions::WeightedIndex`].
//!
//! The build environment has no registry access, so this crate stands in for
//! crates.io `rand`. The generator is xoshiro256++ seeded through SplitMix64
//! — not the real `StdRng` (ChaCha12), but a high-quality PRNG whose
//! statistical behavior satisfies every sampling test in the workspace.
//! Streams are deterministic per seed but *not* byte-compatible with
//! crates.io `rand`; nothing in the workspace depends on specific streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding, reduced to the one constructor the workspace calls.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample from a range (half-open or inclusive; see
    /// [`SampleRange`]).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Samples from a distribution (mirrors `Rng::sample`).
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        let u = unit_f64(rng.next_u64());
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reduce(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + reduce(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

/// Unbiased `[0, span)` by rejection sampling (Lemire-style threshold).
fn reduce<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — stands in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions (only what the workspace samples).
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A value-producing distribution.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// Error from [`WeightedIndex::new`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights are zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no items"),
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Sampling of indices `0..n` proportional to a weight list, by
    /// cumulative sums + binary search.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<f64>,
        total: f64,
        _weight: std::marker::PhantomData<X>,
    }

    impl<X: Into<f64> + Copy> WeightedIndex<X> {
        /// Validates weights (non-negative, finite, not all zero) and builds
        /// the sampler.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator<Item = X>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w: f64 = w.into();
                if !(w.is_finite() && w >= 0.0) {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex {
                cumulative,
                total,
                _weight: std::marker::PhantomData,
            })
        }
    }

    impl<X> Distribution<usize> for WeightedIndex<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let u = unit_f64(rng.next_u64()) * self.total;
            // partition_point: first index whose cumulative weight exceeds u.
            let idx = self.cumulative.partition_point(|&c| c <= u);
            idx.min(self.cumulative.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(0.25f64..=0.5);
            assert!((0.25..=0.5).contains(&y));
            let z = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn uniform_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let total: f64 = (0..100_000).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = total / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn weighted_index_proportions() {
        let w = WeightedIndex::new([1.0f64, 3.0, 6.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 100_000.0 - 0.1).abs() < 0.01);
        assert!((counts[2] as f64 / 100_000.0 - 0.6).abs() < 0.01);
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new([0.0f64, 0.0]).is_err());
        assert!(WeightedIndex::new([1.0f64, -2.0]).is_err());
    }
}
