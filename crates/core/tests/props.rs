//! Property-based tests for the core data structures: itemset algebra,
//! transaction invariants, and database reference computations.

use proptest::collection::vec;
use proptest::prelude::*;
use ufim_core::{Itemset, Transaction, UncertainDatabase};

fn items() -> impl Strategy<Value = Vec<u32>> {
    vec(0u32..20, 0..10)
}

fn prob() -> impl Strategy<Value = f64> {
    (1u32..=1000).prop_map(|k| k as f64 / 1000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn itemset_is_sorted_and_deduped(raw in items()) {
        let x = Itemset::from_items(raw.clone());
        prop_assert!(x.items().windows(2).all(|w| w[0] < w[1]));
        for &i in &raw {
            prop_assert!(x.contains(i));
        }
        prop_assert!(x.len() <= raw.len());
    }

    #[test]
    fn union_is_commutative_and_idempotent(a in items(), b in items()) {
        let x = Itemset::from_items(a);
        let y = Itemset::from_items(b);
        prop_assert_eq!(x.union(&y), y.union(&x));
        prop_assert_eq!(x.union(&x), x.clone());
        // Union contains both operands.
        let u = x.union(&y);
        prop_assert!(x.is_subset_of_sorted(u.items()));
        prop_assert!(y.is_subset_of_sorted(u.items()));
    }

    #[test]
    fn with_item_adds_exactly_one(raw in items(), extra in 0u32..25) {
        let x = Itemset::from_items(raw);
        let y = x.with_item(extra);
        prop_assert!(y.contains(extra));
        prop_assert_eq!(y.len(), x.len() + usize::from(!x.contains(extra)));
    }

    #[test]
    fn subset_relation_matches_naive(a in items(), b in items()) {
        let x = Itemset::from_items(a);
        let y = Itemset::from_items(b);
        let naive = x.items().iter().all(|i| y.items().contains(i));
        prop_assert_eq!(x.is_subset_of_sorted(y.items()), naive);
    }

    #[test]
    fn drop_one_subsets_are_all_contained(raw in vec(0u32..20, 1..8)) {
        let x = Itemset::from_items(raw);
        let subs: Vec<Itemset> = x.subsets_dropping_one().collect();
        prop_assert_eq!(subs.len(), x.len());
        for s in &subs {
            prop_assert_eq!(s.len(), x.len() - 1);
            prop_assert!(s.is_subset_of_sorted(x.items()));
        }
    }

    #[test]
    fn apriori_join_produces_supersets(a in vec(0u32..12, 2..5)) {
        let x = Itemset::from_items(a);
        if x.len() >= 2 {
            // Split off the last item two ways to create joinable parents.
            let items = x.items();
            let left = Itemset::from_items(items[..items.len()-1].iter().copied());
            let right = Itemset::from_items(
                items[..items.len()-2].iter().copied().chain([items[items.len()-1]]),
            );
            if let Some(joined) = left.apriori_join(&right).or_else(|| right.apriori_join(&left)) {
                prop_assert_eq!(joined, x.clone());
            }
        }
    }

    #[test]
    fn transaction_itemset_prob_is_product_of_members(
        units in vec((0u32..10, prob()), 0..8),
        query in vec(0u32..10, 0..4),
    ) {
        let mut dedup = std::collections::BTreeMap::new();
        for (i, p) in units { dedup.entry(i).or_insert(p); }
        let t = Transaction::new(dedup.clone().into_iter().collect::<Vec<_>>()).unwrap();
        let q = Itemset::from_items(query);
        let expect: f64 = if q.items().iter().all(|i| dedup.contains_key(i)) {
            q.items().iter().map(|i| dedup[i]).product()
        } else {
            0.0
        };
        prop_assert!((t.itemset_prob(q.items()) - expect).abs() < 1e-12);
    }

    #[test]
    fn database_moments_are_consistent(
        rows in vec(vec((0u32..6, prob()), 0..5), 1..15),
        query in vec(0u32..6, 1..3),
    ) {
        let transactions: Vec<Transaction> = rows
            .into_iter()
            .map(|units| {
                let mut dedup = std::collections::BTreeMap::new();
                for (i, p) in units { dedup.entry(i).or_insert(p); }
                Transaction::new(dedup.into_iter().collect::<Vec<_>>()).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 6);
        let q = Itemset::from_items(query);
        let (esup, var) = db.support_moments(q.items());
        // esup equals the prob-vector sum; var equals Σ q(1-q).
        let qv = db.itemset_prob_vector(q.items());
        let sum: f64 = qv.iter().sum();
        let v: f64 = qv.iter().map(|&p| p * (1.0 - p)).sum();
        prop_assert!((esup - sum).abs() < 1e-12);
        prop_assert!((var - v).abs() < 1e-12);
        prop_assert!((db.expected_support(q.items()) - esup).abs() < 1e-12);
        // Bounds: 0 ≤ esup ≤ N; 0 ≤ var ≤ N/4.
        let n = db.num_transactions() as f64;
        prop_assert!((0.0..=n).contains(&esup));
        prop_assert!((0.0..=n / 4.0 + 1e-12).contains(&var));
    }

    #[test]
    fn truncation_is_prefix(rows in vec(vec((0u32..4, prob()), 0..3), 1..10), cut in 0usize..12) {
        let transactions: Vec<Transaction> = rows
            .into_iter()
            .map(|units| {
                let mut dedup = std::collections::BTreeMap::new();
                for (i, p) in units { dedup.entry(i).or_insert(p); }
                Transaction::new(dedup.into_iter().collect::<Vec<_>>()).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 4);
        let t = db.truncated(cut);
        prop_assert_eq!(t.num_transactions(), cut.min(db.num_transactions()));
        prop_assert_eq!(t.num_items(), db.num_items());
        for (a, b) in t.transactions().iter().zip(db.transactions()) {
            prop_assert_eq!(a, b);
        }
    }
}
