//! Sliding-window ingest over an uncertain database: the tid-delta seam.
//!
//! The paper's motivating data — sensor readings, user-behaviour logs — is a
//! stream, but `sup(X)` is defined over a *database*. The streaming semantics
//! every incremental layer in this workspace builds on is the **sliding
//! window**: mine the most recent `W` transactions, where arrival appends a
//! transaction and expiry removes the oldest.
//!
//! # The ring-buffer tid model
//!
//! [`WindowedDatabase`] is a ring of `capacity` slots and **a tid is a slot
//! index**, stable for the slot's lifetime. A vacant slot holds the empty
//! transaction — a legal [`Transaction`] whose containment probability is
//! zero for every non-empty itemset, so it contributes *exactly* nothing
//! (an IEEE `+0.0` no-op) to every support statistic. Consequently:
//!
//! * [`WindowedDatabase::snapshot`] always has exactly `capacity`
//!   transactions, so `N` is constant and every threshold derived from it
//!   (`⌈N·min_sup⌉`, the Poisson λ-inversion, the Normal bound) is fixed at
//!   construction time — the window never silently moves the bar;
//! * a window step touches only the slots it reassigns: downstream index
//!   and memo maintenance is proportional to the delta, not the window;
//! * mining the snapshot from scratch is always available as the batch
//!   oracle, and incremental results can be compared against it bit for bit.
//!
//! Arrival fills the lowest-numbered free slot (deterministic), expiry
//! vacates the oldest occupied slot (FIFO over arrival order). When the
//! window is full, an arrival first evicts the oldest transaction — the
//! classic count-based sliding window.
//!
//! # Deltas
//!
//! Mutations accumulate into a pending delta; [`WindowedDatabase::take_step`]
//! drains it as a [`WindowStep`] — per dirty slot, the transaction the slot
//! held when the step began (`old`) and the one it holds now (`new`). Deltas
//! therefore **compose**: appending then expiring the same transaction
//! within one step cancels to nothing, and any sequence of mutations between
//! two `take_step` calls collapses to one old→new pair per slot. Consumers
//! ([`VerticalIndex::apply_step`](crate::vertical::VerticalIndex::apply_step),
//! the engines' memo invalidation, the miners' border re-judgment) see only
//! the net change.

use crate::database::UncertainDatabase;
use crate::hash::FxHashMap;
use crate::itemset::ItemId;
use crate::transaction::Transaction;
use std::collections::VecDeque;

/// One dirty slot of a [`WindowStep`]: the transaction the slot held when
/// the step began and the one it holds now. Either side may be the empty
/// transaction (vacant slot).
#[derive(Clone, Debug, PartialEq)]
pub struct DirtySlot {
    /// The slot index — the stable tid of this window position.
    pub tid: u32,
    /// Contents when the step began (empty transaction if vacant).
    pub old: Transaction,
    /// Contents now (empty transaction if vacant).
    pub new: Transaction,
}

/// The net change between two [`WindowedDatabase::take_step`] calls: one
/// [`DirtySlot`] per touched slot, ascending by tid. Slots whose contents
/// ended up unchanged (e.g. a transaction that arrived and expired within
/// the same step) are dropped — the step records *net* changes only.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WindowStep {
    /// Net per-slot changes, strictly ascending by `tid`.
    pub dirty: Vec<DirtySlot>,
}

impl WindowStep {
    /// True when the step changes nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Number of dirty slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.dirty.len()
    }
}

/// Precomputed per-step containment probabilities: the shared fast path
/// for every consumer that asks, per candidate itemset, "which dirty slots
/// changed this itemset's containment probability, and to what?".
///
/// Touch detection through [`Transaction::itemset_prob`] walks the
/// transaction's unit list twice per (candidate, dirty slot) pair — the
/// dominant cost of a refresh once border reuse has collapsed the
/// candidate workload. The probe hoists that walk out of the per-candidate
/// loop: construction expands every dirty slot's old/new transactions into
/// dense per-item probability rows (absent items hold `0.0`) and records,
/// per item, a bitset of the slots where that item's probability moved.
/// A candidate's queries then reduce to a few multiplies per *changed*
/// slot — slots where no member item moved are skipped outright, which is
/// sound because an unchanged factor list yields a bit-identical product.
///
/// Every product is folded exactly like [`Transaction::itemset_prob`]
/// (ascending item order, from `1.0`): probabilities are non-negative, so
/// an absent item's `0.0` factor drives the fold to exactly `+0.0` — the
/// same bits the early-return produces. All derived quantities are
/// therefore **bit-identical** to the naive per-transaction loops they
/// replace, which `probe_matches_naive_loops` pins.
#[derive(Clone, Debug)]
pub struct StepProbe {
    /// Dirty tids, ascending (slot `s` of every row/bitset is `tids[s]`).
    tids: Vec<u32>,
    /// Old-side containment probability rows, `num_items` per dirty slot.
    old: Vec<f64>,
    /// New-side containment probability rows, `num_items` per dirty slot.
    new: Vec<f64>,
    num_items: usize,
    /// Per-item changed-slot bitsets, `words` u64 words per item.
    changed: Vec<u64>,
    /// Bitset words per item (`ceil(len / 64)`).
    words: usize,
}

impl StepProbe {
    /// Expands `step` against the vocabulary `0..num_items`. Cost (and
    /// memory) is `O(dirty × num_items)` — dense on purpose: the probe is
    /// rebuilt per step and queried per candidate, and the candidate loop
    /// is what must be fast.
    pub fn new(step: &WindowStep, num_items: u32) -> Self {
        let n = num_items as usize;
        let len = step.dirty.len();
        let mut old = vec![0.0f64; n * len];
        let mut new = vec![0.0f64; n * len];
        for (s, d) in step.dirty.iter().enumerate() {
            for (item, p) in d.old.units() {
                old[s * n + item as usize] = p;
            }
            for (item, p) in d.new.units() {
                new[s * n + item as usize] = p;
            }
        }
        let words = len.div_ceil(64).max(1);
        let mut changed = vec![0u64; n * words];
        for s in 0..len {
            for i in 0..n {
                if old[s * n + i] != new[s * n + i] {
                    changed[i * words + s / 64] |= 1u64 << (s % 64);
                }
            }
        }
        StepProbe {
            tids: step.dirty.iter().map(|d| d.tid).collect(),
            old,
            new,
            num_items: n,
            changed,
            words,
        }
    }

    /// Number of dirty slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True when the underlying step changes nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// The tid of dirty-slot index `slot`.
    #[inline]
    pub fn tid(&self, slot: usize) -> u32 {
        self.tids[slot]
    }

    /// The containment product of `items` over a probability row —
    /// [`Transaction::itemset_prob`]'s fold, bit for bit (see the type
    /// docs for why the absent-item `0.0` factor is equivalent).
    #[inline]
    fn product(row: &[f64], items: &[ItemId]) -> f64 {
        let mut p = 1.0f64;
        for &i in items {
            p *= row[i as usize];
        }
        p
    }

    /// New-side containment probability of `items` at dirty-slot `slot`.
    #[inline]
    pub fn new_prob(&self, slot: usize, items: &[ItemId]) -> f64 {
        let n = self.num_items;
        Self::product(&self.new[slot * n..(slot + 1) * n], items)
    }

    /// Visits, ascending, every dirty slot where some member item's
    /// probability moved, with the itemset's old/new containment products
    /// there. Slots outside carry bit-identical old/new products and are
    /// skipped.
    fn for_each_candidate_slot(&self, items: &[ItemId], mut f: impl FnMut(usize, f64, f64)) {
        let n = self.num_items;
        for w in 0..self.words {
            let mut mask = 0u64;
            for &i in items {
                mask |= self.changed[i as usize * self.words + w];
            }
            while mask != 0 {
                let s = w * 64 + mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let old_p = Self::product(&self.old[s * n..(s + 1) * n], items);
                let new_p = Self::product(&self.new[s * n..(s + 1) * n], items);
                f(s, old_p, new_p);
            }
        }
    }

    /// Dirty-slot indices where some member item's probability moved,
    /// ascending — the superset of slots whose membership in any structure
    /// keyed on `items` (or on a subset of `items`) can have changed.
    pub fn candidate_slots(&self, items: &[ItemId]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut mask_words = vec![0u64; self.words];
        for &i in items {
            for (m, &c) in mask_words
                .iter_mut()
                .zip(&self.changed[i as usize * self.words..(i as usize + 1) * self.words])
            {
                *m |= c;
            }
        }
        for (w, &mut mut mask) in mask_words.iter_mut().enumerate() {
            while mask != 0 {
                out.push(w * 64 + mask.trailing_zeros() as usize);
                mask &= mask - 1;
            }
        }
        out
    }

    /// Border-tracker deltas for one itemset: whether any dirty slot moved
    /// its containment probability, the total added mass
    /// `Σ max(new − old, 0)`, and the count of slots that went zero →
    /// nonzero. Bit-identical to the naive all-slots loop: skipped slots
    /// contribute exactly nothing to either accumulator.
    pub fn growth(&self, items: &[ItemId]) -> (bool, f64, u64) {
        let mut touched = false;
        let mut added_mass = 0.0f64;
        let mut added_count = 0u64;
        self.for_each_candidate_slot(items, |_, old_p, new_p| {
            if old_p != new_p {
                touched = true;
            }
            if new_p > old_p {
                added_mass += new_p - old_p;
            }
            if old_p == 0.0 && new_p > 0.0 {
                added_count += 1;
            }
        });
        (touched, added_mass, added_count)
    }

    /// The itemset's net containment updates: ascending `(tid, new_prob)`
    /// for every dirty slot where the probability actually moved — exactly
    /// the delta [`ProbVector::apply_tid_delta`] consumes.
    ///
    /// [`ProbVector::apply_tid_delta`]: crate::vertical::ProbVector::apply_tid_delta
    pub fn updates(&self, items: &[ItemId]) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        self.for_each_candidate_slot(items, |s, old_p, new_p| {
            if old_p != new_p {
                out.push((self.tids[s], new_p));
            }
        });
        out
    }
}

/// A count-based sliding window over uncertain transactions, exposing the
/// append/expire ingest API and per-step deltas (see the module docs for
/// the tid model).
#[derive(Clone, Debug)]
pub struct WindowedDatabase {
    /// `capacity` slots; vacant slots hold the empty transaction.
    slots: Vec<Transaction>,
    /// Occupied slots in arrival order (front = oldest).
    order: VecDeque<u32>,
    /// Vacant slots; popped last-in-first-out. Initialized in descending
    /// order so fresh windows fill slots `0, 1, 2, …` — fully deterministic.
    free: Vec<u32>,
    /// Per-slot contents at the moment the slot first became dirty in the
    /// current step.
    pending: FxHashMap<u32, Transaction>,
    num_items: u32,
}

impl WindowedDatabase {
    /// A fresh, empty window of `capacity` slots over the vocabulary
    /// `0..num_items`.
    ///
    /// # Panics
    /// If `capacity` is zero (a zero-slot window cannot hold anything) or
    /// does not fit in `u32` (tids are 32-bit).
    pub fn new(capacity: usize, num_items: u32) -> Self {
        assert!(capacity > 0, "window capacity must be at least 1");
        assert!(u32::try_from(capacity).is_ok(), "capacity exceeds u32 tids");
        WindowedDatabase {
            slots: vec![Transaction::certain([]); capacity],
            order: VecDeque::with_capacity(capacity),
            free: (0..capacity as u32).rev().collect(),
            pending: FxHashMap::default(),
            num_items,
        }
    }

    /// Number of slots (the constant `N` of every snapshot).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots (live transactions in the window).
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Vocabulary size (item ids are `0..num_items`).
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// The current contents of a slot (empty transaction if vacant).
    #[inline]
    pub fn slot(&self, tid: u32) -> &Transaction {
        &self.slots[tid as usize]
    }

    /// Records `tid`'s current contents as the step's `old` side, if this is
    /// the first time the slot is dirtied within the step.
    fn mark_dirty(&mut self, tid: u32) {
        let slot = &self.slots[tid as usize];
        self.pending.entry(tid).or_insert_with(|| slot.clone());
    }

    /// Appends a transaction, evicting the oldest one first when the window
    /// is full. Returns the tid (slot index) the transaction landed in.
    ///
    /// # Panics
    /// In debug builds, if the transaction references an item outside the
    /// vocabulary.
    pub fn append(&mut self, t: Transaction) -> u32 {
        debug_assert!(
            t.items().iter().all(|&i| i < self.num_items),
            "transaction references an item outside the vocabulary"
        );
        if self.free.is_empty() {
            self.expire_oldest(1);
        }
        let tid = self.free.pop().expect("a slot was just freed");
        self.mark_dirty(tid);
        self.slots[tid as usize] = t;
        self.order.push_back(tid);
        tid
    }

    /// Expires (vacates) up to `n` of the oldest transactions; returns how
    /// many were actually expired (fewer only when the window ran dry).
    pub fn expire_oldest(&mut self, n: usize) -> usize {
        let mut expired = 0;
        while expired < n {
            let Some(tid) = self.order.pop_front() else {
                break;
            };
            self.mark_dirty(tid);
            self.slots[tid as usize] = Transaction::certain([]);
            self.free.push(tid);
            expired += 1;
        }
        expired
    }

    /// Drains the pending mutations into a [`WindowStep`]: the *net* change
    /// per slot since the previous `take_step` (or construction), ascending
    /// by tid. Slots whose contents are back to what the step started with
    /// are omitted.
    pub fn take_step(&mut self) -> WindowStep {
        let mut dirty: Vec<DirtySlot> = self
            .pending
            .drain()
            .filter_map(|(tid, old)| {
                let new = self.slots[tid as usize].clone();
                (old != new).then_some(DirtySlot { tid, old, new })
            })
            .collect();
        dirty.sort_unstable_by_key(|d| d.tid);
        WindowStep { dirty }
    }

    /// A from-scratch [`UncertainDatabase`] of the whole window: exactly
    /// `capacity` transactions with tids equal to slot indices (vacant slots
    /// are empty transactions). This is the batch-mining oracle every
    /// incremental result is pinned against.
    pub fn snapshot(&self) -> UncertainDatabase {
        UncertainDatabase::with_num_items(self.slots.clone(), self.num_items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(units: &[(u32, f64)]) -> Transaction {
        Transaction::new(units.iter().copied()).unwrap()
    }

    #[test]
    fn appends_fill_slots_in_order() {
        let mut w = WindowedDatabase::new(3, 4);
        assert_eq!(w.append(tx(&[(0, 0.5)])), 0);
        assert_eq!(w.append(tx(&[(1, 0.5)])), 1);
        assert_eq!(w.append(tx(&[(2, 0.5)])), 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    fn full_window_append_evicts_oldest() {
        let mut w = WindowedDatabase::new(2, 4);
        w.append(tx(&[(0, 0.5)]));
        w.append(tx(&[(1, 0.5)]));
        // Slot 0 (oldest) is evicted and immediately reused.
        assert_eq!(w.append(tx(&[(2, 0.5)])), 0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.slot(0).items(), &[2]);
        assert_eq!(w.slot(1).items(), &[1]);
    }

    #[test]
    fn expiry_vacates_fifo() {
        let mut w = WindowedDatabase::new(3, 4);
        w.append(tx(&[(0, 0.5)]));
        w.append(tx(&[(1, 0.5)]));
        assert_eq!(w.expire_oldest(1), 1);
        assert!(w.slot(0).is_empty());
        assert_eq!(w.len(), 1);
        // Draining past empty stops early.
        assert_eq!(w.expire_oldest(5), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn step_records_net_changes_sorted_by_tid() {
        let mut w = WindowedDatabase::new(4, 4);
        w.append(tx(&[(0, 0.5)]));
        w.append(tx(&[(1, 0.5)]));
        let _ = w.take_step();
        // Dirty slots 1 (expired), 0 (expired), 2 (appended) — out of order.
        w.expire_oldest(2);
        w.append(tx(&[(2, 0.5)]));
        let step = w.take_step();
        let tids: Vec<u32> = step.dirty.iter().map(|d| d.tid).collect();
        // Appends reuse freed slots LIFO: slot 1 was freed last, so the new
        // transaction landed there; slot 0 stays vacant.
        assert_eq!(tids, vec![0, 1]);
        assert!(step.dirty[0].new.is_empty());
        assert_eq!(step.dirty[1].new.items(), &[2]);
        assert_eq!(step.dirty[1].old.items(), &[1]);
    }

    #[test]
    fn arrive_and_expire_same_step_cancels() {
        let mut w = WindowedDatabase::new(2, 4);
        w.append(tx(&[(0, 0.5)]));
        let _ = w.take_step();
        w.append(tx(&[(1, 0.5)]));
        w.expire_oldest(2); // removes slot 0's old tx AND the new arrival
        let step = w.take_step();
        // Slot 1 went empty → tx → empty: net nothing. Slot 0 went tx → empty.
        assert_eq!(step.len(), 1);
        assert_eq!(step.dirty[0].tid, 0);
        assert!(step.dirty[0].new.is_empty());
        assert!(!step.is_empty());
    }

    #[test]
    fn empty_step_is_empty() {
        let mut w = WindowedDatabase::new(2, 4);
        assert!(w.take_step().is_empty());
        w.append(tx(&[(0, 0.5)]));
        let _ = w.take_step();
        assert!(w.take_step().is_empty());
    }

    #[test]
    fn snapshot_has_constant_n_with_empty_vacant_slots() {
        let mut w = WindowedDatabase::new(3, 4);
        w.append(tx(&[(0, 0.8), (1, 0.5)]));
        let db = w.snapshot();
        assert_eq!(db.num_transactions(), 3);
        assert_eq!(db.num_items(), 4);
        assert_eq!(db.transactions()[0].items(), &[0, 1]);
        assert!(db.transactions()[1].is_empty());
        assert!(db.transactions()[2].is_empty());
        // Vacant slots contribute exactly nothing.
        assert_eq!(db.expected_support(&[0]), 0.8);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = WindowedDatabase::new(0, 4);
    }

    /// The probe's products, growth deltas and update lists must be
    /// bit-identical to the naive per-transaction loops they replace.
    #[test]
    fn probe_matches_naive_loops() {
        const NUM_ITEMS: u32 = 7;
        // A deterministic pseudo-random step: slots cycle through
        // empty→tx, tx→tx and tx→empty shapes with varied units.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut rand_tx = |seed_bias: u64| {
            let units: Vec<(u32, f64)> = (0..NUM_ITEMS)
                .filter_map(|i| {
                    let r = next().wrapping_add(seed_bias);
                    (r % 3 != 0).then(|| (i, ((r % 97) as f64 + 1.0) / 98.0))
                })
                .collect();
            tx(&units)
        };
        let empty = Transaction::certain([]);
        let mut dirty = Vec::new();
        for tid in 0..70u32 {
            let (old, new) = match tid % 4 {
                0 => (empty.clone(), rand_tx(1)),
                1 => (rand_tx(2), empty.clone()),
                2 => (rand_tx(3), rand_tx(4)),
                _ => continue, // gaps: dirty tids need not be contiguous
            };
            dirty.push(DirtySlot { tid, old, new });
        }
        let step = WindowStep { dirty };
        let probe = StepProbe::new(&step, NUM_ITEMS);
        assert_eq!(probe.len(), step.len());
        assert!(!probe.is_empty());

        let sets: Vec<Vec<ItemId>> = vec![
            vec![0],
            vec![3],
            vec![0, 1],
            vec![2, 5],
            vec![0, 3, 6],
            vec![1, 2, 4, 5],
            vec![0, 1, 2, 3, 4, 5, 6],
        ];
        for items in &sets {
            // growth == the classifier's naive all-slots accumulation.
            let (mut touched, mut mass, mut count) = (false, 0.0f64, 0u64);
            for d in &step.dirty {
                let old_p = d.old.itemset_prob(items);
                let new_p = d.new.itemset_prob(items);
                if old_p != new_p {
                    touched = true;
                }
                if new_p > old_p {
                    mass += new_p - old_p;
                }
                if old_p == 0.0 && new_p > 0.0 {
                    count += 1;
                }
            }
            let (t, m, c) = probe.growth(items);
            assert_eq!(t, touched, "{items:?}");
            assert_eq!(m.to_bits(), mass.to_bits(), "{items:?}");
            assert_eq!(c, count, "{items:?}");

            // updates == the naive changed-slot filter, values bit for bit.
            let naive: Vec<(u32, u64)> = step
                .dirty
                .iter()
                .filter_map(|d| {
                    let old_p = d.old.itemset_prob(items);
                    let new_p = d.new.itemset_prob(items);
                    (old_p != new_p).then_some((d.tid, new_p.to_bits()))
                })
                .collect();
            let got: Vec<(u32, u64)> = probe
                .updates(items)
                .into_iter()
                .map(|(t, p)| (t, p.to_bits()))
                .collect();
            assert_eq!(got, naive, "{items:?}");

            // new_prob at every slot == itemset_prob of the new side, and
            // candidate_slots covers every slot whose product moved.
            let slots = probe.candidate_slots(items);
            assert!(slots.windows(2).all(|w| w[0] < w[1]));
            for (s, d) in step.dirty.iter().enumerate() {
                assert_eq!(
                    probe.new_prob(s, items).to_bits(),
                    d.new.itemset_prob(items).to_bits(),
                    "{items:?} slot {s}"
                );
                let moved = d.old.itemset_prob(items) != d.new.itemset_prob(items);
                assert!(!moved || slots.contains(&s), "{items:?} slot {s}");
            }
        }
        // Empty itemset: containment is the empty product everywhere.
        let (t, m, c) = probe.growth(&[]);
        assert!(!t);
        assert_eq!(m, 0.0);
        assert_eq!(c, 0);
        assert!(probe.updates(&[]).is_empty());
    }
}
