//! A fast, non-cryptographic hasher in the style of `rustc-hash`'s FxHash.
//!
//! Frequent itemset mining is hash-table heavy: candidate lookup tables are
//! probed once per (transaction, candidate-prefix) pair, and the keys are
//! small integers or short integer sequences. `SipHash` (std's default)
//! leaves a lot of throughput on the table for such keys, and HashDoS
//! resistance is irrelevant for an offline mining workload, so the workspace
//! standardizes on this multiply-and-rotate hasher.
//!
//! The algorithm is the classic Fx mix: for each machine word `w` of input,
//! `state = (state.rotate_left(5) ^ w) * K` with a fixed odd constant `K`.
//! It is the same construction rustc uses for its internal tables.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx mix (64-bit variant).
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied before each multiply.
const ROTATE: u32 = 5;

/// The hasher state. Use via [`FxHashMap`] / [`FxHashSet`] or
/// `BuildHasherDefault<FxHasher>`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume full 8-byte words first, then the tail. This differs from
        // byte-at-a-time hashing only in mixing granularity, not quality.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
        assert_ne!(hash_of(&[1u32, 2][..]), hash_of(&[2u32, 1][..]));
    }

    #[test]
    fn distinguishes_lengths_of_byte_tails() {
        // The tail path tags the remainder length, so a 1-byte zero and a
        // 2-byte zero string must differ.
        let mut h1 = FxHasher::default();
        h1.write(&[0u8]);
        let mut h2 = FxHasher::default();
        h2.write(&[0u8, 0u8]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn spreads_small_keys() {
        // Low-entropy integer keys should not collide in the low bits that a
        // power-of-two table actually uses.
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..1024 {
            seen.insert(hash_of(&i) & 0xFFF);
        }
        // With 4096 buckets and 1024 keys, a decent mix keeps most distinct.
        assert!(
            seen.len() > 900,
            "only {} distinct low-bit patterns",
            seen.len()
        );
    }
}
