//! Validated mining parameters.
//!
//! All three thresholds of the paper — `min_esup` (Definition 2), `min_sup`
//! (Definition 3) and `pft` (Definition 4) — are ratios in `(0, 1]`.
//! [`Ratio`] enforces that once, at the API boundary, so the miners never
//! re-validate. [`MiningParams`] bundles the probabilistic pair and
//! precomputes the integer support threshold `msup = ⌈N · min_sup⌉`.

use crate::error::CoreError;

/// Which support-computation backend an Apriori-framework miner runs on.
///
/// The miners crate implements one `SupportEngine` per variant; this enum is
/// the *selector* that travels through parameters, registries and the bench
/// harness. The backends are observationally equivalent (same itemsets,
/// same statistics to fp precision) and differ only in data layout and cost:
///
/// * [`EngineKind::Horizontal`] — the paper's layout: one trie-guided scan
///   over the transaction list per level (the reference backend);
/// * [`EngineKind::Vertical`] — columnar tid-lists
///   ([`crate::vertical::VerticalIndex`]): one database pass up front, then
///   each candidate costs one sorted-merge intersection of its prefix's
///   memoized [`crate::vertical::ProbVector`] with the last item's postings;
/// * [`EngineKind::Diffset`] — the dEclat analog of the vertical backend:
///   the prefix memo stores [`crate::vertical::DiffVector`] deltas (the
///   tids each extension dropped) instead of whole vectors, cutting memo
///   memory on dense data where almost every tid survives. Each memo node
///   adaptively keeps whichever of tidset/diffset is smaller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Trie-guided horizontal database scans (reference backend).
    #[default]
    Horizontal,
    /// Columnar tid-list intersection (U-Eclat style).
    Vertical,
    /// Columnar delta-memo intersection (dEclat style, memory-optimized).
    Diffset,
}

impl EngineKind {
    /// Every backend, in presentation order.
    pub const ALL: [EngineKind; 3] = [
        EngineKind::Horizontal,
        EngineKind::Vertical,
        EngineKind::Diffset,
    ];

    /// Stable lower-case name (used by CLIs and reports).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Horizontal => "horizontal",
            EngineKind::Vertical => "vertical",
            EngineKind::Diffset => "diffset",
        }
    }

    /// Parses a case-insensitive backend name.
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s.to_ascii_lowercase().as_str() {
            "horizontal" | "h" | "scan" => Some(EngineKind::Horizontal),
            "vertical" | "v" | "tidlist" | "eclat" => Some(EngineKind::Vertical),
            "diffset" | "d" | "diff" | "declat" => Some(EngineKind::Diffset),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which *frequentness measure* judges whether a candidate itemset is
/// frequent — the first axis of the paper's taxonomy (Definition 2 vs.
/// Definition 4, exactly or approximately).
///
/// This enum is the cheap *selector*; the judgment logic itself lives behind
/// the `FrequentnessMeasure` trait in the miners crate. Crossing a selector
/// with a [`TraversalKind`] and an [`EngineKind`] names one cell of the
/// measure × traversal × engine matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// Definition 2: `esup(X) ≥ N · min_sup` (UApriori, UFP-growth, UH-Mine).
    #[default]
    ExpectedSupport,
    /// Poisson (Le Cam) approximation of Definition 4, folded into an
    /// expected-support threshold `λ*` (PDUApriori). Membership only — no
    /// frequent probabilities are reported.
    Poisson,
    /// Normal (CLT) approximation of Definition 4 from `(esup, Var)`
    /// (NDUApriori, NDUH-Mine).
    Normal,
    /// Exact Definition 4 via `O(N·msup)` dynamic programming (DP miners).
    ExactDp,
    /// Exact Definition 4 via divide-and-conquer + FFT (DC miners).
    ExactDc,
}

impl MeasureKind {
    /// Every measure, in presentation order (paper §3.1 → §3.2 → §3.3).
    pub const ALL: [MeasureKind; 5] = [
        MeasureKind::ExpectedSupport,
        MeasureKind::Poisson,
        MeasureKind::Normal,
        MeasureKind::ExactDp,
        MeasureKind::ExactDc,
    ];

    /// Stable lower-case name (used by CLIs and reports).
    pub fn name(self) -> &'static str {
        match self {
            MeasureKind::ExpectedSupport => "esup",
            MeasureKind::Poisson => "poisson",
            MeasureKind::Normal => "normal",
            MeasureKind::ExactDp => "exact-dp",
            MeasureKind::ExactDc => "exact-dc",
        }
    }

    /// True for the exact Definition 4 measures.
    pub fn is_exact(self) -> bool {
        matches!(self, MeasureKind::ExactDp | MeasureKind::ExactDc)
    }

    /// Parses a case-insensitive measure name.
    pub fn parse(s: &str) -> Option<MeasureKind> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        Some(match norm.as_str() {
            "esup" | "expectedsupport" | "expected" => MeasureKind::ExpectedSupport,
            "poisson" => MeasureKind::Poisson,
            "normal" => MeasureKind::Normal,
            "exactdp" | "dp" => MeasureKind::ExactDp,
            "exactdc" | "dc" => MeasureKind::ExactDc,
            _ => return None,
        })
    }
}

impl std::fmt::Display for MeasureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which *exploration strategy* enumerates the itemset lattice — the second
/// axis of the paper's taxonomy (level-wise generate-and-test vs. depth-first
/// pattern growth).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TraversalKind {
    /// Breadth-first Apriori scaffold over a pluggable [`EngineKind`]
    /// support backend (UApriori framework).
    #[default]
    LevelWise,
    /// Depth-first walk over the UH-Struct pointer arena + head tables
    /// (UH-Mine framework). Supplies per-transaction probability vectors,
    /// so every measure runs on it.
    HyperStructure,
    /// Depth-first divide-and-conquer over a UFP-tree (UFP-growth
    /// framework). Tree nodes aggregate transactions, so only measures that
    /// judge from `(esup, Var, count)` run on it — not the exact ones.
    TreeGrowth,
}

impl TraversalKind {
    /// Every traversal, in presentation order.
    pub const ALL: [TraversalKind; 3] = [
        TraversalKind::LevelWise,
        TraversalKind::HyperStructure,
        TraversalKind::TreeGrowth,
    ];

    /// Stable lower-case name (used by CLIs and reports).
    pub fn name(self) -> &'static str {
        match self {
            TraversalKind::LevelWise => "level-wise",
            TraversalKind::HyperStructure => "hyper",
            TraversalKind::TreeGrowth => "tree",
        }
    }

    /// Parses a case-insensitive traversal name.
    pub fn parse(s: &str) -> Option<TraversalKind> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        Some(match norm.as_str() {
            "levelwise" | "apriori" | "bfs" => TraversalKind::LevelWise,
            "hyper" | "hyperstructure" | "uhmine" | "uhstruct" => TraversalKind::HyperStructure,
            "tree" | "treegrowth" | "ufptree" | "fpgrowth" => TraversalKind::TreeGrowth,
            _ => return None,
        })
    }
}

impl std::fmt::Display for TraversalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A ratio in the half-open interval `(0, 1]`.
///
/// `0` is excluded: a zero minimum support would declare every itemset
/// frequent, including the 2^|I| lattice — a configuration error, not a
/// mining problem.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Ratio(f64);

impl Ratio {
    /// Validates `value ∈ (0, 1]`.
    pub fn new(name: &'static str, value: f64) -> Result<Self, CoreError> {
        if value > 0.0 && value <= 1.0 {
            Ok(Ratio(value))
        } else {
            Err(CoreError::InvalidRatio { name, value })
        }
    }

    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Scales by a transaction count: `⌈N · ratio⌉`, the integer threshold
    /// used by both definitions ("appears at least `N·min_sup` times").
    /// Always at least 1 for a non-empty database.
    #[inline]
    pub fn threshold_count(self, n: usize) -> usize {
        (self.0 * n as f64).ceil() as usize
    }

    /// Scales by a transaction count without rounding: `N · ratio`, the
    /// real-valued expected-support threshold of Definition 2.
    #[inline]
    pub fn threshold_real(self, n: usize) -> f64 {
        self.0 * n as f64
    }
}

/// Parameters for probabilistic frequent itemset mining (Definitions 3–4):
/// the support ratio `min_sup` and the probability threshold `pft`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MiningParams {
    /// Minimum support ratio (`min_sup`).
    pub min_sup: Ratio,
    /// Probabilistic frequent threshold (`pft`): an itemset is frequent iff
    /// `Pr{sup(X) ≥ msup} > pft`.
    pub pft: Ratio,
    /// Support-computation backend to run on (defaults to
    /// [`EngineKind::Horizontal`], the reference backend).
    pub engine: EngineKind,
    /// Frequentness-measure override for matrix-aware entry points (the
    /// miners crate's `MatrixMiner`); the paper's named miners carry their
    /// measure in their identity and ignore this field.
    pub measure: Option<MeasureKind>,
    /// Traversal override for matrix-aware entry points; ignored by the
    /// paper's named miners, like [`MiningParams::measure`].
    pub traversal: Option<TraversalKind>,
}

impl MiningParams {
    /// Validates and constructs (with the default backend).
    pub fn new(min_sup: f64, pft: f64) -> Result<Self, CoreError> {
        Ok(MiningParams {
            min_sup: Ratio::new("min_sup", min_sup)?,
            pft: Ratio::new("pft", pft)?,
            engine: EngineKind::default(),
            measure: None,
            traversal: None,
        })
    }

    /// Selects the support-computation backend.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the frequentness measure for matrix-aware entry points.
    pub fn with_measure(mut self, measure: MeasureKind) -> Self {
        self.measure = Some(measure);
        self
    }

    /// Selects the traversal for matrix-aware entry points.
    pub fn with_traversal(mut self, traversal: TraversalKind) -> Self {
        self.traversal = Some(traversal);
        self
    }

    /// The integer support threshold `msup = ⌈N·min_sup⌉` for a database of
    /// `n` transactions.
    #[inline]
    pub fn msup(&self, n: usize) -> usize {
        self.min_sup.threshold_count(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_range() {
        assert!(Ratio::new("r", 1e-9).is_ok());
        assert!(Ratio::new("r", 0.5).is_ok());
        assert!(Ratio::new("r", 1.0).is_ok());
    }

    #[test]
    fn rejects_invalid() {
        assert!(Ratio::new("r", 0.0).is_err());
        assert!(Ratio::new("r", -0.3).is_err());
        assert!(Ratio::new("r", 1.0001).is_err());
        assert!(Ratio::new("r", f64::NAN).is_err());
        match Ratio::new("min_sup", 2.0) {
            Err(CoreError::InvalidRatio { name, value }) => {
                assert_eq!(name, "min_sup");
                assert_eq!(value, 2.0);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn threshold_count_is_ceiling() {
        let r = Ratio::new("r", 0.5).unwrap();
        assert_eq!(r.threshold_count(4), 2);
        assert_eq!(r.threshold_count(5), 3);
        let r = Ratio::new("r", 0.0005).unwrap();
        assert_eq!(r.threshold_count(1000), 1);
        assert_eq!(r.threshold_count(990_002), 496);
    }

    #[test]
    fn threshold_real_is_exact() {
        let r = Ratio::new("r", 0.25).unwrap();
        assert_eq!(r.threshold_real(4), 1.0);
        assert_eq!(r.threshold_real(6), 1.5);
    }

    #[test]
    fn mining_params_bundle() {
        let p = MiningParams::new(0.5, 0.9).unwrap();
        assert_eq!(p.msup(4), 2);
        assert_eq!(p.min_sup.get(), 0.5);
        assert_eq!(p.pft.get(), 0.9);
        assert_eq!(p.engine, EngineKind::Horizontal);
        assert!(MiningParams::new(0.0, 0.9).is_err());
        assert!(MiningParams::new(0.5, 1.5).is_err());
    }

    #[test]
    fn measure_and_traversal_selectors_roundtrip() {
        for m in MeasureKind::ALL {
            assert_eq!(MeasureKind::parse(m.name()), Some(m), "{m}");
            assert_eq!(format!("{m}"), m.name());
        }
        for t in TraversalKind::ALL {
            assert_eq!(TraversalKind::parse(t.name()), Some(t), "{t}");
            assert_eq!(format!("{t}"), t.name());
        }
        assert_eq!(MeasureKind::parse("DP"), Some(MeasureKind::ExactDp));
        assert_eq!(
            MeasureKind::parse("Expected-Support"),
            Some(MeasureKind::ExpectedSupport)
        );
        assert_eq!(MeasureKind::parse("nonsense"), None);
        assert_eq!(
            TraversalKind::parse("Apriori"),
            Some(TraversalKind::LevelWise)
        );
        assert_eq!(
            TraversalKind::parse("UH-Mine"),
            Some(TraversalKind::HyperStructure)
        );
        assert_eq!(TraversalKind::parse("nonsense"), None);
        assert!(MeasureKind::ExactDc.is_exact());
        assert!(!MeasureKind::Normal.is_exact());

        let p = MiningParams::new(0.5, 0.9)
            .unwrap()
            .with_measure(MeasureKind::Poisson)
            .with_traversal(TraversalKind::TreeGrowth);
        assert_eq!(p.measure, Some(MeasureKind::Poisson));
        assert_eq!(p.traversal, Some(TraversalKind::TreeGrowth));
        let q = MiningParams::new(0.5, 0.9).unwrap();
        assert_eq!(q.measure, None);
        assert_eq!(q.traversal, None);
    }

    #[test]
    fn engine_selection() {
        let p = MiningParams::new(0.5, 0.9)
            .unwrap()
            .with_engine(EngineKind::Vertical);
        assert_eq!(p.engine, EngineKind::Vertical);
        assert_eq!(EngineKind::parse("VERTICAL"), Some(EngineKind::Vertical));
        assert_eq!(EngineKind::parse("h"), Some(EngineKind::Horizontal));
        assert_eq!(EngineKind::parse("dEclat"), Some(EngineKind::Diffset));
        assert_eq!(EngineKind::parse("Diffset"), Some(EngineKind::Diffset));
        assert_eq!(EngineKind::parse("nope"), None);
        assert_eq!(EngineKind::ALL.len(), 3);
        for e in EngineKind::ALL {
            assert_eq!(EngineKind::parse(e.name()), Some(e));
            assert_eq!(format!("{e}"), e.name());
        }
    }
}
