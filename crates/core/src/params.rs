//! Validated mining parameters.
//!
//! All three thresholds of the paper — `min_esup` (Definition 2), `min_sup`
//! (Definition 3) and `pft` (Definition 4) — are ratios in `(0, 1]`.
//! [`Ratio`] enforces that once, at the API boundary, so the miners never
//! re-validate. [`MiningParams`] bundles the probabilistic pair and
//! precomputes the integer support threshold `msup = ⌈N · min_sup⌉`.

use crate::error::CoreError;

/// A ratio in the half-open interval `(0, 1]`.
///
/// `0` is excluded: a zero minimum support would declare every itemset
/// frequent, including the 2^|I| lattice — a configuration error, not a
/// mining problem.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Ratio(f64);

impl Ratio {
    /// Validates `value ∈ (0, 1]`.
    pub fn new(name: &'static str, value: f64) -> Result<Self, CoreError> {
        if value > 0.0 && value <= 1.0 {
            Ok(Ratio(value))
        } else {
            Err(CoreError::InvalidRatio { name, value })
        }
    }

    /// The raw value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Scales by a transaction count: `⌈N · ratio⌉`, the integer threshold
    /// used by both definitions ("appears at least `N·min_sup` times").
    /// Always at least 1 for a non-empty database.
    #[inline]
    pub fn threshold_count(self, n: usize) -> usize {
        (self.0 * n as f64).ceil() as usize
    }

    /// Scales by a transaction count without rounding: `N · ratio`, the
    /// real-valued expected-support threshold of Definition 2.
    #[inline]
    pub fn threshold_real(self, n: usize) -> f64 {
        self.0 * n as f64
    }
}

/// Parameters for probabilistic frequent itemset mining (Definitions 3–4):
/// the support ratio `min_sup` and the probability threshold `pft`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MiningParams {
    /// Minimum support ratio (`min_sup`).
    pub min_sup: Ratio,
    /// Probabilistic frequent threshold (`pft`): an itemset is frequent iff
    /// `Pr{sup(X) ≥ msup} > pft`.
    pub pft: Ratio,
}

impl MiningParams {
    /// Validates and constructs.
    pub fn new(min_sup: f64, pft: f64) -> Result<Self, CoreError> {
        Ok(MiningParams {
            min_sup: Ratio::new("min_sup", min_sup)?,
            pft: Ratio::new("pft", pft)?,
        })
    }

    /// The integer support threshold `msup = ⌈N·min_sup⌉` for a database of
    /// `n` transactions.
    #[inline]
    pub fn msup(&self, n: usize) -> usize {
        self.min_sup.threshold_count(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_range() {
        assert!(Ratio::new("r", 1e-9).is_ok());
        assert!(Ratio::new("r", 0.5).is_ok());
        assert!(Ratio::new("r", 1.0).is_ok());
    }

    #[test]
    fn rejects_invalid() {
        assert!(Ratio::new("r", 0.0).is_err());
        assert!(Ratio::new("r", -0.3).is_err());
        assert!(Ratio::new("r", 1.0001).is_err());
        assert!(Ratio::new("r", f64::NAN).is_err());
        match Ratio::new("min_sup", 2.0) {
            Err(CoreError::InvalidRatio { name, value }) => {
                assert_eq!(name, "min_sup");
                assert_eq!(value, 2.0);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn threshold_count_is_ceiling() {
        let r = Ratio::new("r", 0.5).unwrap();
        assert_eq!(r.threshold_count(4), 2);
        assert_eq!(r.threshold_count(5), 3);
        let r = Ratio::new("r", 0.0005).unwrap();
        assert_eq!(r.threshold_count(1000), 1);
        assert_eq!(r.threshold_count(990_002), 496);
    }

    #[test]
    fn threshold_real_is_exact() {
        let r = Ratio::new("r", 0.25).unwrap();
        assert_eq!(r.threshold_real(4), 1.0);
        assert_eq!(r.threshold_real(6), 1.5);
    }

    #[test]
    fn mining_params_bundle() {
        let p = MiningParams::new(0.5, 0.9).unwrap();
        assert_eq!(p.msup(4), 2);
        assert_eq!(p.min_sup.get(), 0.5);
        assert_eq!(p.pft.get(), 0.9);
        assert!(MiningParams::new(0.0, 0.9).is_err());
        assert!(MiningParams::new(0.5, 1.5).is_err());
    }
}
