//! Data-parallel primitives over the persistent [`workpool`]
//! work-stealing pool.
//!
//! The sanctioned dependency set has no rayon, so the miners parallelize
//! through this module instead. Two layers of API:
//!
//! * [`par_map`] / [`par_map_with`] — level-wise fan-out: map a slice in
//!   parallel, results in input order (the support engines' shape);
//! * [`scope`] + [`Scope::spawn`] + [`OrderedSink`] — **nested** fan-out:
//!   a recursive traversal spawns child subtrees from *inside* running
//!   tasks, so a single dominant subtree (deep skew) no longer serializes
//!   on one worker the way a one-level decomposition forces it to.
//!
//! Both run on one process-global pool of persistent workers
//! (`vendor/workpool`: lazily-spawned threads, per-worker Chase-Lev-style
//! deques plus a shared injector). Worker threads are started on demand
//! and kept — the pool grows to the high-water mark of requested
//! parallelism and is partitioned per call by an admission cap, instead
//! of re-spawning OS threads per call as the old `std::thread::scope`
//! fan-out did.
//!
//! ## Determinism
//!
//! Everything observable is bit-for-bit identical whatever `UFIM_THREADS`
//! says — a pool of 1 and a pool of 64 produce the same floating-point
//! records and the same statistics. The argument has three legs:
//!
//! 1. **Ordered maps.** [`par_map`] workers claim fixed-size chunks (at
//!    most [`PAR_CHUNK`] items) from an atomic queue and results are
//!    reassembled in **input order**; chunk boundaries are a pure
//!    function of the input length, never of the pool, so scheduling
//!    granularity cannot leak into results. Callers that reduce across
//!    blocks of work (the horizontal scan's per-chunk partial sums) make
//!    each block an item with their own fixed block size.
//! 2. **Pure-function decomposition.** Nested spawns are gated by
//!    size/depth cutoffs computed from the *input* (plus the binary "is
//!    this run parallel at all" — every pool size > 1 spawns the same
//!    task tree, and pool size 1 runs everything inline). Every float is
//!    computed within exactly one task either way, and merged counters
//!    are integer sums and maxes, so even the inline/spawned split cannot
//!    change a bit.
//! 3. **Keyed collection.** Tasks push results into an [`OrderedSink`]
//!    under structural keys assigned in spawn order ([`SpawnKey`]), and
//!    the sink merges by key — never by completion order.
//!
//! ## Threading policy
//!
//! Threading is opt-out: `UFIM_THREADS=1` forces sequential execution,
//! any other value caps the per-call thread budget, and the default is
//! [`std::thread::available_parallelism`]. Tests and benches that need a
//! specific budget without touching the (process-global, racy) `env` use
//! the scoped [`with_thread_override`]. The budget is captured **once per
//! call** (at [`scope`]/[`par_map`] entry, on the calling thread) into the
//! scope's admission cap; tasks consult [`Scope::threads`] — never the
//! worker thread's own environment — so cutoff decisions inside tasks
//! agree with the owner's. Overriding can therefore never change *what*
//! is computed, only how many workers participate; the persistent pool
//! grows to serve the largest budget ever requested and never shrinks.
//!
//! Callers are expected to gate small inputs themselves (see
//! [`par_map_min_len`] and the miners' spawn cutoffs) — fanning out a
//! four-transaction database costs more than it saves.
//!
//! ## Per-worker state
//!
//! [`par_map_with`] threads a mutable per-worker state value through every
//! item a worker claims — the seam for reusable scratch buffers
//! ([`crate::vertical::ScratchSpace`]): each worker allocates its buffers
//! once and every intersection after the high-water mark is
//! allocation-free. The state must never influence results (it is scratch,
//! not an accumulator); the determinism contract above still holds because
//! outputs remain a pure function of the item.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use workpool::Scope;

/// Default work-size gate for [`par_map_min_len`] callers: below this many
/// units of work, fanning out costs more than it saves. Shared by the
/// support engines so all backends fan out at the same scale.
pub const DEFAULT_MIN_WORK: usize = 1 << 15;

/// Upper bound on items per scheduling chunk. The effective chunk size
/// shrinks (down to 1) when there are fewer than `PAR_CHUNK × threads`
/// items, so a handful of heavy items — e.g. the horizontal scan's
/// 4096-transaction blocks — still fans out across the whole pool. Chunk
/// granularity affects scheduling only, never results (see the module
/// docs). Small enough to load-balance skewed per-item costs; large
/// enough that the one atomic claim per chunk is noise.
pub const PAR_CHUNK: usize = 8;

thread_local! {
    /// Scoped override installed by [`with_thread_override`]; consulted
    /// before the environment so tests can pin pool sizes without the
    /// process-global races of `std::env::set_var`.
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Per-call thread budget: a [`with_thread_override`] scope when active,
/// else the `UFIM_THREADS` environment variable when set to a positive
/// integer, else the machine's available parallelism. Captured once at
/// every [`scope`]/[`par_map`] entry on the calling thread.
pub fn max_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.get() {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("UFIM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` with [`max_threads`] pinned to `threads` **on the calling
/// thread** (every [`scope`] or [`par_map`] entered from inside `f`
/// captures the pinned budget). Scoped and panic-safe: the previous
/// override is restored when `f` returns or unwinds, and other threads —
/// including concurrently running tests — are unaffected.
///
/// Interaction with the persistent pool: the override does **not** spawn
/// or kill workers by itself. It sets the admission cap of scopes created
/// under it; the pool then grows (lazily, monotonically) to serve the
/// largest cap ever requested and is partitioned between concurrent
/// scopes by those caps. This is how the cross-thread-count determinism
/// suites sweep pool sizes; results must be bit-identical for every
/// pinned value, so overriding can never change what `f` computes.
pub fn with_thread_override<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.set(self.0);
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.replace(Some(threads.max(1))));
    f()
}

/// Opens a work-stealing [`Scope`] with the current [`max_threads`]
/// budget as its admission cap and returns once `f` **and every task
/// transitively spawned inside** have completed. With a budget of 1,
/// [`Scope::spawn`] runs tasks inline and execution is genuinely
/// sequential. Panics from tasks are re-thrown here after the scope
/// drains (see `vendor/workpool`).
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    workpool::scope(max_threads(), f)
}

/// A structural task key assigned in **spawn order**: a child's key is
/// its parent task's key extended by the parent's running spawn ordinal.
/// Because every task's spawn sequence is a pure function of the input
/// (see the module docs), keys are identical across runs and pool sizes,
/// and sorting them lexicographically reproduces the sequential
/// depth-first spawn order — the deterministic merge order for
/// [`OrderedSink`].
pub type SpawnKey = Vec<u32>;

/// Extends `parent` by the next ordinal from `seq` (incrementing it) —
/// the one way task keys are minted, so uniqueness is structural.
pub fn child_key(parent: &[u32], seq: &mut u32) -> SpawnKey {
    let mut key = Vec::with_capacity(parent.len() + 1);
    key.extend_from_slice(parent);
    key.push(*seq);
    *seq += 1;
    key
}

/// A concurrency-safe collector merging per-task results in key order.
///
/// Tasks [`push`](OrderedSink::push) their local result under their
/// [`SpawnKey`]; after the scope drains,
/// [`into_sorted_values`](OrderedSink::into_sorted_values) yields the
/// results sorted by key — i.e. in spawn order, independent of completion
/// order. Keys must be unique (structural minting via [`child_key`]
/// guarantees it).
#[derive(Debug, Default)]
pub struct OrderedSink<R> {
    results: Mutex<Vec<(SpawnKey, R)>>,
}

impl<R> OrderedSink<R> {
    /// An empty sink.
    pub fn new() -> Self {
        OrderedSink {
            results: Mutex::new(Vec::new()),
        }
    }

    /// Records one task's result under its spawn key.
    pub fn push(&self, key: SpawnKey, value: R) {
        self.results.lock().unwrap().push((key, value));
    }

    /// All recorded results, sorted by spawn key.
    pub fn into_sorted_values(self) -> Vec<R> {
        let mut results = self.results.into_inner().unwrap();
        results.sort_by(|a, b| a.0.cmp(&b.0));
        results.into_iter().map(|(_, value)| value).collect()
    }
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Worker loops claim chunks of at most [`PAR_CHUNK`] items from an
/// atomic queue (see the module docs on determinism). With one item, one
/// thread, or an empty slice the map runs inline on the caller's thread —
/// producing, like every other pool size, exactly the sequential result.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(items, max_threads(), f)
}

/// [`par_map`] with a mutable **per-worker state** threaded through every
/// item a worker claims — the scratch-buffer seam (see the module docs).
/// `init` runs once per worker loop (once total when sequential); `f`
/// receives the worker's state and the item. The state must not influence
/// results: outputs stay a pure function of the item, so the determinism
/// contract is unchanged.
pub fn par_map_with<S, T, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    par_map_with_threads(items, max_threads(), init, f)
}

/// [`par_map`] with an explicit thread cap — the testable core. Results
/// must not depend on `threads`; the determinism tests pin this.
fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with_threads(items, threads, || (), |(), item| f(item))
}

/// [`par_map_with`] with an explicit thread cap — the shared engine under
/// both map flavors. `threads − 1` worker loops are spawned as pool tasks
/// and the calling thread runs one more, so at most `threads` states are
/// ever built, exactly as when each call spawned its own OS threads.
fn par_map_with_threads<S, T, R, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    // Shrink the chunk when items are few so every thread gets work: a
    // 5-item map over heavy items must not collapse onto one thread. The
    // chunk size affects scheduling only — per-item outputs reassembled in
    // input order are identical whatever the granularity.
    let chunk_size = PAR_CHUNK.min(items.len().div_ceil(threads)).max(1);
    let num_chunks = items.len().div_ceil(chunk_size);
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(num_chunks));
    let run_loop = |collected: &Mutex<Vec<(usize, Vec<R>)>>| {
        let mut state = init();
        let mut got: Vec<(usize, Vec<R>)> = Vec::new();
        loop {
            let chunk = next.fetch_add(1, Ordering::Relaxed);
            let start = chunk * chunk_size;
            if start >= items.len() {
                break;
            }
            let end = (start + chunk_size).min(items.len());
            got.push((
                chunk,
                items[start..end]
                    .iter()
                    .map(|item| f(&mut state, item))
                    .collect(),
            ));
        }
        collected.lock().unwrap().extend(got);
    };
    workpool::scope(threads, |s| {
        for _ in 0..threads - 1 {
            s.spawn(|_| run_loop(&collected));
        }
        run_loop(&collected);
    });
    // Reassemble in input order: chunk index → slot.
    let mut slots: Vec<Option<Vec<R>>> = (0..num_chunks).map(|_| None).collect();
    for (chunk, results) in collected.into_inner().unwrap() {
        slots[chunk] = Some(results);
    }
    let mut out = Vec::with_capacity(items.len());
    for s in slots {
        out.extend(s.expect("every chunk claimed exactly once"));
    }
    out
}

/// [`par_map`] gated on input size: runs sequentially unless `items.len() *
/// weight` reaches `min_work`. `weight` lets callers fold per-item cost
/// (e.g. transactions per candidate) into the threshold.
pub fn par_map_min_len<T, R, F>(items: &[T], weight: usize, min_work: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len().saturating_mul(weight.max(1)) < min_work {
        items.iter().map(f).collect()
    } else {
        par_map(items, f)
    }
}

/// [`par_map_with`] gated on input size like [`par_map_min_len`]. The
/// sequential path still builds one state and threads it through every
/// item, so scratch reuse works at every scale.
pub fn par_map_min_len_with<S, T, R, I, F>(
    items: &[T],
    weight: usize,
    min_work: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    if items.len().saturating_mul(weight.max(1)) < min_work {
        let mut state = init();
        items.iter().map(|item| f(&mut state, item)).collect()
    } else {
        par_map_with(items, init, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out.len(), items.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(par_map(&[] as &[u32], |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn min_len_gate_runs_sequentially_but_identically() {
        let items: Vec<u32> = (0..100).collect();
        let seq = par_map_min_len(&items, 1, usize::MAX, |&x| x + 1);
        let par = par_map(&items, |&x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn threads_env_is_respected() {
        // max_threads is ≥ 1 whatever the environment says.
        assert!(max_threads() >= 1);
    }

    /// The determinism contract: a floating-point reduction over the
    /// ordered results is bit-identical for every pool size, including
    /// awkward ones that don't divide the chunk count.
    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let items: Vec<f64> = (0..1000).map(|i| 0.1 + (i % 97) as f64 / 96.0).collect();
        let f = |&x: &f64| x * 1.000000001 + x * x;
        let reference: Vec<f64> = items.iter().map(f).collect();
        let ref_sum: f64 = reference.iter().sum();
        for threads in [1usize, 2, 3, 4, 7, 16, 64] {
            let out = par_map_threads(&items, threads, f);
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
            let sum: f64 = out.iter().sum();
            assert_eq!(sum.to_bits(), ref_sum.to_bits(), "threads={threads}");
        }
    }

    /// Per-worker state is created once per worker loop and threaded
    /// through all its items, and results stay order-preserving whatever
    /// the state does internally.
    #[test]
    fn stateful_map_reuses_worker_state() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u64> = (0..5_000).collect();
        let inits = AtomicUsize::new(0);
        for threads in [1usize, 3, 8] {
            inits.store(0, Ordering::Relaxed);
            let out = par_map_with_threads(
                &items,
                threads,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u64>::new() // a scratch buffer
                },
                |scratch, &x| {
                    scratch.clear();
                    scratch.extend([x, x + 1]);
                    scratch.iter().sum::<u64>()
                },
            );
            assert!(inits.load(Ordering::Relaxed) <= threads);
            assert!(inits.load(Ordering::Relaxed) >= 1);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, 2 * i as u64 + 1, "threads={threads}");
            }
        }
        // The gated variant builds exactly one state when sequential.
        inits.store(0, Ordering::Relaxed);
        let _ = par_map_min_len_with(
            &items,
            1,
            usize::MAX,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, &x| x,
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }

    /// `with_thread_override` pins `max_threads` on the calling thread,
    /// nests, and restores on exit and unwind.
    #[test]
    fn thread_override_is_scoped() {
        let outside = max_threads();
        let seen = with_thread_override(3, || {
            assert_eq!(max_threads(), 3);
            with_thread_override(7, max_threads)
        });
        assert_eq!(seen, 7);
        assert_eq!(max_threads(), outside);
        // 0 is clamped to 1 (a pool always has one worker: the caller).
        assert_eq!(with_thread_override(0, max_threads), 1);
        // Restored even when the closure panics.
        let _ = std::panic::catch_unwind(|| with_thread_override(5, || panic!("boom")));
        assert_eq!(max_threads(), outside);
    }

    /// Every chunk is claimed exactly once even when the item count is not
    /// a multiple of the chunk size.
    #[test]
    fn ragged_tail_is_covered() {
        for n in [
            0usize,
            1,
            PAR_CHUNK - 1,
            PAR_CHUNK,
            PAR_CHUNK + 1,
            5 * PAR_CHUNK + 3,
        ] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map_threads(&items, 3, |&x| x);
            assert_eq!(out, items, "n={n}");
        }
    }

    /// The override flows into [`scope`]'s admission cap: tasks observe
    /// the budget through [`Scope::threads`], and a budget of 1 runs
    /// spawns inline on the calling thread.
    #[test]
    fn override_reaches_scope_budget() {
        with_thread_override(5, || {
            scope(|s| {
                assert_eq!(s.threads(), 5);
                s.spawn(|s| assert_eq!(s.threads(), 5));
            });
        });
        let caller = std::thread::current().id();
        with_thread_override(1, || {
            scope(|s| {
                s.spawn(move |_| assert_eq!(std::thread::current().id(), caller));
            });
        });
    }

    /// Nested spawns (depth ≥ 4) with spawn-order keys: the sink's merged
    /// output is identical for every pool size, whatever the completion
    /// order was.
    #[test]
    fn ordered_sink_merges_in_spawn_order_across_pool_sizes() {
        fn grow<'env>(
            s: &Scope<'env>,
            sink: &'env OrderedSink<u64>,
            key: &[u32],
            depth: u32,
            value: u64,
        ) {
            let mut seq = 0;
            if depth < 4 {
                for child in 0..3u64 {
                    let child_value = value * 10 + child;
                    let child_key = child_key(key, &mut seq);
                    s.spawn(move |s| {
                        grow(s, sink, &child_key, depth + 1, child_value);
                        sink.push(child_key.clone(), child_value);
                    });
                }
            }
        }
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 8] {
            let sink = OrderedSink::new();
            with_thread_override(threads, || {
                scope(|s| grow(s, &sink, &[], 0, 1));
            });
            let values = sink.into_sorted_values();
            assert_eq!(values.len(), 3 + 9 + 27 + 81, "threads={threads}");
            match &reference {
                None => reference = Some(values),
                Some(expected) => assert_eq!(&values, expected, "threads={threads}"),
            }
        }
    }

    /// A panic inside a deeply nested task surfaces from [`scope`] on the
    /// owner's thread.
    #[test]
    fn nested_task_panic_propagates_to_scope_owner() {
        let result = std::panic::catch_unwind(|| {
            with_thread_override(4, || {
                scope(|s| {
                    s.spawn(|s| {
                        s.spawn(|s| {
                            s.spawn(|_| panic!("deep failure"));
                        });
                    });
                });
            })
        });
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "deep failure");
    }
}
