//! Minimal data-parallel primitives on `std::thread::scope`.
//!
//! The sanctioned dependency set has no rayon, so the support engines
//! parallelize through this module instead: [`par_map`] fans a slice out
//! over a bounded number of scoped threads and returns results **in input
//! order**, which keeps every floating-point reduction performed by callers
//! deterministic for a fixed chunking.
//!
//! Threading is opt-out: `UFIM_THREADS=1` forces sequential execution, any
//! other value caps the pool, and the default is
//! [`std::thread::available_parallelism`]. Callers are expected to gate
//! small inputs themselves (see [`par_map_min_len`]) — spawning threads for
//! a four-transaction database costs more than it saves.

use std::num::NonZeroUsize;

/// Default work-size gate for [`par_map_min_len`] callers: below this many
/// units of work, fanning out costs more than it saves. Shared by the
/// support engines so both backends fan out at the same scale.
pub const DEFAULT_MIN_WORK: usize = 1 << 15;

/// Upper bound on worker threads: the `UFIM_THREADS` environment variable
/// when set to a positive integer, else the machine's available parallelism.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("UFIM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// The slice is split into at most [`max_threads`] contiguous chunks, one
/// scoped thread each. With one item, one thread, or an empty slice the map
/// runs inline on the caller's thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("par_map worker panicked"));
        }
        out
    })
}

/// [`par_map`] gated on input size: runs sequentially unless `items.len() *
/// weight` reaches `min_work`. `weight` lets callers fold per-item cost
/// (e.g. transactions per candidate) into the threshold.
pub fn par_map_min_len<T, R, F>(items: &[T], weight: usize, min_work: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len().saturating_mul(weight.max(1)) < min_work {
        items.iter().map(f).collect()
    } else {
        par_map(items, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out.len(), items.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(par_map(&[] as &[u32], |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn min_len_gate_runs_sequentially_but_identically() {
        let items: Vec<u32> = (0..100).collect();
        let seq = par_map_min_len(&items, 1, usize::MAX, |&x| x + 1);
        let par = par_map(&items, |&x| x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn threads_env_is_respected() {
        // max_threads is ≥ 1 whatever the environment says.
        assert!(max_threads() >= 1);
    }
}
