//! Uncertain transactions: items paired with existence probabilities.

use crate::error::CoreError;
use crate::itemset::ItemId;

/// One uncertain transaction `<tid, {y₁(p₁), …, y_m(p_m)}>` (paper §2).
///
/// Items are stored sorted ascending by id in one array with a parallel
/// probability array — struct-of-arrays keeps the common "walk the items"
/// loops cache-friendly and lets miners binary-search items without touching
/// probability bytes.
///
/// Invariants (enforced by the constructors):
/// * items strictly ascending (no duplicates),
/// * every probability in `(0, 1]` — a zero-probability unit is the same as
///   absence and is rejected rather than stored.
#[derive(Clone, Debug, PartialEq)]
pub struct Transaction {
    items: Vec<ItemId>,
    probs: Vec<f64>,
}

impl Transaction {
    /// Builds a transaction from `(item, probability)` units in any order.
    ///
    /// # Errors
    /// [`CoreError::DuplicateItem`] if an item occurs twice,
    /// [`CoreError::InvalidProbability`] if a probability is outside `(0,1]`.
    pub fn new<I: IntoIterator<Item = (ItemId, f64)>>(units: I) -> Result<Self, CoreError> {
        let mut pairs: Vec<(ItemId, f64)> = units.into_iter().collect();
        for &(_, p) in &pairs {
            if !(p > 0.0 && p <= 1.0) {
                return Err(CoreError::InvalidProbability { value: p });
            }
        }
        pairs.sort_unstable_by_key(|&(i, _)| i);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(CoreError::DuplicateItem { item: w[0].0 });
            }
        }
        let mut items = Vec::with_capacity(pairs.len());
        let mut probs = Vec::with_capacity(pairs.len());
        for (i, p) in pairs {
            items.push(i);
            probs.push(p);
        }
        Ok(Transaction { items, probs })
    }

    /// Builds from pre-sorted parallel arrays the caller has validated.
    /// Invariants are checked in debug builds only; use [`Transaction::new`]
    /// for untrusted input.
    pub fn from_sorted_unchecked(items: Vec<ItemId>, probs: Vec<f64>) -> Self {
        debug_assert_eq!(items.len(), probs.len());
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(probs.iter().all(|&p| p > 0.0 && p <= 1.0));
        Transaction { items, probs }
    }

    /// A certain (deterministic) transaction: every probability is 1.
    pub fn certain<I: IntoIterator<Item = ItemId>>(items: I) -> Self {
        let mut v: Vec<ItemId> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        let probs = vec![1.0; v.len()];
        Transaction { items: v, probs }
    }

    /// Item ids, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Existence probabilities, parallel to [`Transaction::items`].
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of units in the transaction.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the transaction holds no units.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Probability that `item` appears in this transaction
    /// (0 when the item is not listed).
    #[inline]
    pub fn prob_of(&self, item: ItemId) -> f64 {
        match self.items.binary_search(&item) {
            Ok(pos) => self.probs[pos],
            Err(_) => 0.0,
        }
    }

    /// `P_t(X) = Π_{x ∈ X} p_t(x)` — the probability this transaction
    /// contains the whole (sorted) itemset; 0 if any member is absent.
    /// Under the paper's independence assumption this is the Bernoulli
    /// parameter contributed to `sup(X)`.
    pub fn itemset_prob(&self, itemset: &[ItemId]) -> f64 {
        let mut prod = 1.0;
        let mut j = 0usize;
        'outer: for &x in itemset {
            while j < self.items.len() {
                match self.items[j].cmp(&x) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        prod *= self.probs[j];
                        j += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return 0.0,
                }
            }
            return 0.0;
        }
        prod
    }

    /// Iterates over `(item, probability)` units in item order.
    pub fn units(&self) -> impl Iterator<Item = (ItemId, f64)> + '_ {
        self.items.iter().copied().zip(self.probs.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_units() {
        let t = Transaction::new([(3, 0.5), (1, 0.9)]).unwrap();
        assert_eq!(t.items(), &[1, 3]);
        assert_eq!(t.probs(), &[0.9, 0.5]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn rejects_bad_probabilities() {
        assert_eq!(
            Transaction::new([(1, 0.0)]),
            Err(CoreError::InvalidProbability { value: 0.0 })
        );
        assert_eq!(
            Transaction::new([(1, 1.5)]),
            Err(CoreError::InvalidProbability { value: 1.5 })
        );
        assert!(Transaction::new([(1, f64::NAN)]).is_err());
        assert!(Transaction::new([(1, -0.1)]).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            Transaction::new([(2, 0.5), (2, 0.7)]),
            Err(CoreError::DuplicateItem { item: 2 })
        );
    }

    #[test]
    fn certain_transaction() {
        let t = Transaction::certain([4, 2, 4]);
        assert_eq!(t.items(), &[2, 4]);
        assert_eq!(t.probs(), &[1.0, 1.0]);
    }

    #[test]
    fn prob_of_lookup() {
        let t = Transaction::new([(1, 0.8), (5, 0.2)]).unwrap();
        assert_eq!(t.prob_of(1), 0.8);
        assert_eq!(t.prob_of(5), 0.2);
        assert_eq!(t.prob_of(3), 0.0);
    }

    #[test]
    fn itemset_prob_is_product() {
        // T1 of the paper's Table 1.
        let t1 = Transaction::new([(0, 0.8), (1, 0.2), (2, 0.9), (3, 0.7), (5, 0.8)]).unwrap();
        assert!((t1.itemset_prob(&[0]) - 0.8).abs() < 1e-12);
        assert!((t1.itemset_prob(&[0, 2]) - 0.72).abs() < 1e-12);
        assert_eq!(t1.itemset_prob(&[0, 4]), 0.0); // E absent from T1
        assert_eq!(t1.itemset_prob(&[]), 1.0); // empty product
    }

    #[test]
    fn units_iterate_in_order() {
        let t = Transaction::new([(9, 0.1), (3, 0.4)]).unwrap();
        let units: Vec<_> = t.units().collect();
        assert_eq!(units, vec![(3, 0.4), (9, 0.1)]);
    }
}
