//! Itemsets: sorted, duplicate-free sets of item identifiers.

use std::fmt;

/// Item identifier. Items are dense small integers assigned by the dataset
/// layer; `u32` comfortably covers the largest benchmark vocabulary in the
/// paper (Kosarak, 41 270 items) while keeping candidate structures compact.
pub type ItemId = u32;

/// A non-empty-or-empty set of items, stored sorted ascending without
/// duplicates.
///
/// The sorted representation makes subset tests, joins and prefix comparisons
/// (the work-horses of Apriori-style candidate generation) linear merges, and
/// gives a canonical form suitable for hashing.
///
/// ```
/// use ufim_core::Itemset;
/// let x = Itemset::from_items([3, 1, 2]);
/// assert_eq!(x.items(), &[1, 2, 3]);
/// assert!(x.is_subset_of_sorted(&[0, 1, 2, 3, 9]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Itemset {
    items: Vec<ItemId>,
}

impl Itemset {
    /// The empty itemset.
    pub fn empty() -> Self {
        Itemset { items: Vec::new() }
    }

    /// A singleton itemset.
    pub fn singleton(item: ItemId) -> Self {
        Itemset { items: vec![item] }
    }

    /// Builds an itemset from arbitrary items; sorts and deduplicates.
    pub fn from_items<I: IntoIterator<Item = ItemId>>(items: I) -> Self {
        let mut v: Vec<ItemId> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Itemset { items: v }
    }

    /// Builds from a vector the caller guarantees is sorted ascending and
    /// duplicate-free. Checked in debug builds only.
    pub fn from_sorted_vec(items: Vec<ItemId>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
        Itemset { items }
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Number of items (the paper's `l` of an `l-itemset`).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Returns a new itemset with `item` added (no-op if already present).
    pub fn with_item(&self, item: ItemId) -> Self {
        match self.items.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = Vec::with_capacity(self.items.len() + 1);
                v.extend_from_slice(&self.items[..pos]);
                v.push(item);
                v.extend_from_slice(&self.items[pos..]);
                Itemset { items: v }
            }
        }
    }

    /// Set union.
    pub fn union(&self, other: &Itemset) -> Self {
        let mut v = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    v.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    v.push(other.items[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    v.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        v.extend_from_slice(&self.items[i..]);
        v.extend_from_slice(&other.items[j..]);
        Itemset { items: v }
    }

    /// True iff `self ⊆ other` where `other` is any sorted ascending slice
    /// (for example a transaction's item array). Linear merge.
    pub fn is_subset_of_sorted(&self, other: &[ItemId]) -> bool {
        let mut j = 0;
        'outer: for &x in &self.items {
            while j < other.len() {
                match other[j].cmp(&x) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Iterates over all subsets of size `len - 1` (the "prune" step of
    /// Apriori candidate generation checks each of these).
    pub fn subsets_dropping_one(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.items.len()).map(move |skip| {
            let mut v = Vec::with_capacity(self.items.len() - 1);
            for (i, &it) in self.items.iter().enumerate() {
                if i != skip {
                    v.push(it);
                }
            }
            Itemset { items: v }
        })
    }

    /// Apriori join: if `self` and `other` are k-itemsets sharing the first
    /// k-1 items and `self < other` on the last item, returns the joined
    /// (k+1)-itemset, else `None`.
    pub fn apriori_join(&self, other: &Itemset) -> Option<Itemset> {
        let k = self.items.len();
        if k == 0 || other.items.len() != k {
            return None;
        }
        if self.items[..k - 1] != other.items[..k - 1] {
            return None;
        }
        if self.items[k - 1] >= other.items[k - 1] {
            return None;
        }
        let mut v = self.items.clone();
        v.push(other.items[k - 1]);
        Some(Itemset { items: v })
    }
}

fn fmt_itemset(items: &[ItemId], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{{")?;
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{item}")?;
    }
    write!(f, "}}")
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_itemset(&self.items, f)
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_itemset(&self.items, f)
    }
}

impl From<Vec<ItemId>> for Itemset {
    fn from(v: Vec<ItemId>) -> Self {
        Itemset::from_items(v)
    }
}

impl<const N: usize> From<[ItemId; N]> for Itemset {
    fn from(v: [ItemId; N]) -> Self {
        Itemset::from_items(v)
    }
}

impl FromIterator<ItemId> for Itemset {
    fn from_iter<T: IntoIterator<Item = ItemId>>(iter: T) -> Self {
        Itemset::from_items(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let x = Itemset::from_items([5, 1, 5, 3]);
        assert_eq!(x.items(), &[1, 3, 5]);
        assert_eq!(x.len(), 3);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Itemset::empty().is_empty());
        let s = Itemset::singleton(4);
        assert_eq!(s.items(), &[4]);
        assert!(!s.is_empty());
    }

    #[test]
    fn contains_and_with_item() {
        let x = Itemset::from_items([1, 3]);
        assert!(x.contains(3));
        assert!(!x.contains(2));
        assert_eq!(x.with_item(2).items(), &[1, 2, 3]);
        assert_eq!(x.with_item(3).items(), &[1, 3]);
    }

    #[test]
    fn union_merges() {
        let a = Itemset::from_items([1, 3, 5]);
        let b = Itemset::from_items([2, 3, 6]);
        assert_eq!(a.union(&b).items(), &[1, 2, 3, 5, 6]);
        assert_eq!(a.union(&Itemset::empty()).items(), a.items());
    }

    #[test]
    fn subset_of_sorted() {
        let x = Itemset::from_items([2, 4]);
        assert!(x.is_subset_of_sorted(&[1, 2, 3, 4]));
        assert!(!x.is_subset_of_sorted(&[1, 2, 3]));
        assert!(Itemset::empty().is_subset_of_sorted(&[]));
        assert!(!x.is_subset_of_sorted(&[]));
    }

    #[test]
    fn drop_one_subsets() {
        let x = Itemset::from_items([1, 2, 3]);
        let subs: Vec<_> = x.subsets_dropping_one().collect();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&Itemset::from_items([2, 3])));
        assert!(subs.contains(&Itemset::from_items([1, 3])));
        assert!(subs.contains(&Itemset::from_items([1, 2])));
    }

    #[test]
    fn apriori_join_rules() {
        let ab = Itemset::from_items([1, 2]);
        let ac = Itemset::from_items([1, 3]);
        let bc = Itemset::from_items([2, 3]);
        assert_eq!(ab.apriori_join(&ac), Some(Itemset::from_items([1, 2, 3])));
        // Reverse order refuses (avoids generating each candidate twice).
        assert_eq!(ac.apriori_join(&ab), None);
        // Different prefix refuses.
        assert_eq!(ab.apriori_join(&bc), None);
        // Length mismatch refuses.
        assert_eq!(ab.apriori_join(&Itemset::singleton(9)), None);
        // Singletons join on empty prefix.
        let a = Itemset::singleton(1);
        let b = Itemset::singleton(2);
        assert_eq!(a.apriori_join(&b), Some(Itemset::from_items([1, 2])));
    }

    #[test]
    fn display_format() {
        assert_eq!(Itemset::from_items([2, 1]).to_string(), "{1, 2}");
        assert_eq!(Itemset::empty().to_string(), "{}");
    }
}
