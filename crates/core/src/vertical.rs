//! Vertical (columnar) layout of an uncertain database: per-item tid-lists
//! with existence probabilities.
//!
//! The horizontal layout ([`UncertainDatabase`]) answers "which items does
//! transaction `t` contain?"; the vertical layout answers the converse —
//! "which transactions contain item `i`, and with what probability?" — which
//! is the question every support computation actually asks. A
//! [`VerticalIndex`] is built in **one** database pass; afterwards, the
//! nonzero containment-probability vector of a `k`-itemset is the
//! intersection of its `(k−1)`-prefix's vector with the last item's
//! postings (the U-Eclat recurrence):
//!
//! ```text
//! vec(X ∪ {i})[t] = vec(X)[t] · P_t(i)      for t in tids(X) ∩ tids(i)
//! ```
//!
//! Expected support, support variance, the nonzero-transaction count and
//! the exact miners' DP/DC input all fall out of that one intersection —
//! no re-scan of the database is ever needed.
//!
//! ## Adaptive representation
//!
//! A [`ProbVector`] stores its `(tid, prob)` pairs **sparsely** (two
//! parallel sorted arrays) when few transactions are involved, and
//! **densely** (one `f64` per transaction, `0.0` = absent) when at least
//! [`DENSE_CUTOFF_DIVISOR`]⁻¹ of the database contains the itemset — the
//! uncertain-data analog of bitset Eclat. Dense × dense intersections are
//! branchless elementwise multiplies; sparse × dense are `O(nnz)` gathers;
//! sparse × sparse fall back to a sorted merge. On dense benchmark-style
//! databases this representation is what lets the vertical engine beat the
//! trie-guided horizontal scan.
//!
//! Whatever the representation, probabilities are multiplied in ascending
//! item order and enumerated in ascending transaction order, so results are
//! bit-for-bit identical to a horizontal scan's. Products that underflow to
//! exactly `0.0` (possible for deep itemsets of tiny probabilities) are
//! dropped by every materializing path, keeping the sparse nonzero
//! invariant and the `len()` / [`ProbVector::intersect_stats`] agreement.
//!
//! ## Delta representation
//!
//! [`DiffVector`] is the uncertain-data analog of a dEclat diffset: it
//! records only the prefix tids an extension *dropped*, because the
//! survivors' probabilities are recomputable from the appended item's
//! postings. [`ProbVector::diff_extend`] produces the delta plus the
//! child's `(esup, var, count)` in one pass; [`ProbVector::apply_diff`]
//! reconstructs the full child vector. The diffset support engine builds
//! its low-memory prefix memo out of these.
//!
//! ## Zero-allocation kernels
//!
//! Every allocating kernel has an `*_into` twin writing into a reusable
//! [`ScratchSpace`] (or, for [`ProbVector::apply_diff_into`], a
//! caller-owned vector) whose buffers retain their capacity across calls:
//! [`ProbVector::intersect_into`] and [`ProbVector::diff_extend_into`]
//! additionally fuse the statistics pass, returning `(esup, var, count)`
//! bit-identical to [`ProbVector::intersect_stats`]. Support engines keep
//! one `ScratchSpace` per worker thread
//! (`ufim_core::parallel::par_map_with`), so steady-state candidate
//! evaluation performs **no** intersection allocations — a candidate only
//! pays an (exactly-sized) allocation when it survives pruning and its
//! result is exported into a memo.

use crate::database::UncertainDatabase;
use crate::itemset::ItemId;

/// A vector whose nonzero count is at least `num_transactions /
/// DENSE_CUTOFF_DIVISOR` is stored densely.
pub const DENSE_CUTOFF_DIVISOR: usize = 4;

#[derive(Clone, Debug)]
enum Repr {
    /// Parallel arrays sorted by tid; probs are all nonzero.
    Sparse { tids: Vec<u32>, probs: Vec<f64> },
    /// `probs[tid]` for every transaction (`0.0` = absent); `nnz` nonzeros.
    Dense { probs: Vec<f64>, nnz: usize },
}

/// The nonzero containment probabilities of an itemset over a database,
/// in an adaptive sparse/dense representation (see the module docs).
///
/// For a single item this is exactly the item's postings list, so the same
/// type serves both as the column of a [`VerticalIndex`] and as the
/// intersection state threaded through a mining run.
#[derive(Clone, Debug)]
pub struct ProbVector {
    repr: Repr,
}

impl Default for ProbVector {
    fn default() -> Self {
        ProbVector {
            repr: Repr::Sparse {
                tids: Vec::new(),
                probs: Vec::new(),
            },
        }
    }
}

impl ProbVector {
    /// An empty vector (an itemset contained in no transaction).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sparse vector from parallel arrays. `tids` must be strictly
    /// increasing and `probs` entries nonzero; checked in debug builds only.
    pub fn from_parts(tids: Vec<u32>, probs: Vec<f64>) -> Self {
        debug_assert_eq!(tids.len(), probs.len());
        debug_assert!(tids.windows(2).all(|w| w[0] < w[1]), "tids not sorted");
        debug_assert!(probs.iter().all(|&p| p > 0.0), "zero-prob entry");
        ProbVector {
            repr: Repr::Sparse { tids, probs },
        }
    }

    /// Number of transactions with nonzero containment probability.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse { tids, .. } => tids.len(),
            Repr::Dense { nnz, .. } => *nnz,
        }
    }

    /// True when no transaction can contain the itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when stored densely.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// `f64` slots occupied in memory (diagnostic: `nnz` when sparse, the
    /// database size when dense).
    pub fn mem_units(&self) -> usize {
        match &self.repr {
            Repr::Sparse { tids, .. } => tids.len(),
            Repr::Dense { probs, .. } => probs.len(),
        }
    }

    /// Heap bytes occupied by the payload arrays: `nnz × (4 + 8)` when
    /// sparse (tid + prob), `N × 8` when dense. The memory-accounting
    /// counterpart of [`ProbVector::mem_units`], comparable with
    /// [`DiffVector::mem_bytes`].
    pub fn mem_bytes(&self) -> usize {
        match &self.repr {
            Repr::Sparse { tids, .. } => {
                tids.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<f64>())
            }
            Repr::Dense { probs, .. } => probs.len() * std::mem::size_of::<f64>(),
        }
    }

    /// The nonzero `(tid, prob)` pairs in ascending tid order.
    pub fn nonzero(&self) -> Vec<(u32, f64)> {
        match &self.repr {
            Repr::Sparse { tids, probs } => {
                tids.iter().copied().zip(probs.iter().copied()).collect()
            }
            Repr::Dense { probs, nnz } => {
                let mut out = Vec::with_capacity(*nnz);
                for (tid, &q) in probs.iter().enumerate() {
                    if q > 0.0 {
                        out.push((tid as u32, q));
                    }
                }
                out
            }
        }
    }

    /// The nonzero probabilities in ascending tid order — exactly the input
    /// the exact DP / divide-and-conquer kernels take.
    pub fn nonzero_probs(&self) -> Vec<f64> {
        match &self.repr {
            Repr::Sparse { probs, .. } => probs.clone(),
            Repr::Dense { probs, nnz } => {
                let mut out = Vec::with_capacity(*nnz);
                out.extend(probs.iter().copied().filter(|&q| q > 0.0));
                out
            }
        }
    }

    /// Expected support: `Σ_t q_t`. Accumulated in ascending tid order
    /// (dense zeros contribute exactly `0.0`), matching a horizontal scan
    /// bit for bit.
    pub fn esup(&self) -> f64 {
        match &self.repr {
            Repr::Sparse { probs, .. } => probs.iter().sum(),
            Repr::Dense { probs, .. } => probs.iter().sum(),
        }
    }

    /// Expected support and variance of `sup(X)` (`Σ q_t (1 − q_t)`), in
    /// ascending tid order.
    pub fn moments(&self) -> (f64, f64) {
        let probs: &[f64] = match &self.repr {
            Repr::Sparse { probs, .. } => probs,
            Repr::Dense { probs, .. } => probs,
        };
        let mut esup = 0.0;
        let mut var = 0.0;
        for &q in probs {
            esup += q;
            var += q * (1.0 - q);
        }
        (esup, var)
    }

    /// Appends one entry (sparse representation only). `tid` must exceed
    /// the current maximum.
    #[inline]
    pub fn push(&mut self, tid: u32, prob: f64) {
        debug_assert!(prob > 0.0);
        match &mut self.repr {
            Repr::Sparse { tids, probs } => {
                debug_assert!(tids.last().is_none_or(|&last| last < tid));
                tids.push(tid);
                probs.push(prob);
            }
            Repr::Dense { .. } => unreachable!("push on dense ProbVector"),
        }
    }

    /// Releases excess capacity (intersection outputs reserve for the
    /// worst case; long-lived memoized vectors should not keep it).
    pub fn shrink_to_fit(&mut self) {
        if let Repr::Sparse { tids, probs } = &mut self.repr {
            tids.shrink_to_fit();
            probs.shrink_to_fit();
        }
    }

    /// Converts to the dense representation over `n` transactions when the
    /// vector qualifies (nonzero count ≥ `n / DENSE_CUTOFF_DIVISOR`);
    /// otherwise leaves it sparse.
    pub fn maybe_densify(&mut self, n: usize) {
        let Repr::Sparse { tids, probs } = &self.repr else {
            return;
        };
        if n == 0 || tids.len() * DENSE_CUTOFF_DIVISOR < n {
            return;
        }
        let mut dense = vec![0.0f64; n];
        for (&tid, &q) in tids.iter().zip(probs.iter()) {
            dense[tid as usize] = q;
        }
        self.repr = Repr::Dense {
            nnz: tids.len(),
            probs: dense,
        };
    }

    /// The statistics of [`ProbVector::intersect`]'s result —
    /// `(esup, variance, nonzero count)` — computed **without
    /// materializing** the result: no allocation, no stores. Support
    /// engines use this for candidates a pushdown threshold may rule out;
    /// the values are bit-identical to `self.intersect(other).moments()`
    /// (zero products contribute exactly `0.0` to either accumulator).
    pub fn intersect_stats(&self, other: &ProbVector) -> (f64, f64, usize) {
        let mut esup = 0.0f64;
        let mut var = 0.0f64;
        let mut count = 0usize;
        let mut add = |q: f64| {
            esup += q;
            var += q * (1.0 - q);
            count += (q > 0.0) as usize;
        };
        match (&self.repr, &other.repr) {
            (
                Repr::Sparse {
                    tids: ta,
                    probs: pa,
                },
                Repr::Sparse {
                    tids: tb,
                    probs: pb,
                },
            ) => {
                let (mut i, mut j) = (0usize, 0usize);
                while i < ta.len() && j < tb.len() {
                    match ta[i].cmp(&tb[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            add(pa[i] * pb[j]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            (Repr::Sparse { tids, probs }, Repr::Dense { probs: dense, .. })
            | (Repr::Dense { probs: dense, .. }, Repr::Sparse { tids, probs }) => {
                for (&tid, &p) in tids.iter().zip(probs.iter()) {
                    add(p * dense[tid as usize]);
                }
            }
            (Repr::Dense { probs: da, .. }, Repr::Dense { probs: db, .. }) => {
                for (&a, &b) in da.iter().zip(db.iter()) {
                    add(a * b);
                }
            }
        }
        (esup, var, count)
    }

    /// The U-Eclat step: intersects with another vector, multiplying
    /// probabilities on matching tids (`self` is the prefix, `other` the
    /// appended item's postings — multiplication order is prefix × item).
    /// Representation of the result is chosen adaptively.
    pub fn intersect(&self, other: &ProbVector) -> ProbVector {
        match (&self.repr, &other.repr) {
            (
                Repr::Sparse {
                    tids: ta,
                    probs: pa,
                },
                Repr::Sparse {
                    tids: tb,
                    probs: pb,
                },
            ) => intersect_sparse_sparse(ta, pa, tb, pb),
            // f64 multiplication is bitwise commutative, so the gather can
            // run over whichever side is sparse without breaking the
            // bit-for-bit match with horizontal scans.
            (Repr::Sparse { tids, probs }, Repr::Dense { probs: dense, .. })
            | (Repr::Dense { probs: dense, .. }, Repr::Sparse { tids, probs }) => {
                intersect_sparse_dense(tids, probs, dense)
            }
            (Repr::Dense { probs: da, .. }, Repr::Dense { probs: db, .. }) => {
                intersect_dense_dense(da, db)
            }
        }
    }
}

impl PartialEq for ProbVector {
    /// Semantic equality: same nonzero `(tid, prob)` pairs, regardless of
    /// representation.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.nonzero() == other.nonzero()
    }
}

/// Which representation the last [`ProbVector::intersect_into`] left in a
/// [`ScratchSpace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum ScratchKind {
    /// Result lives in the sparse `(tids, probs)` buffers.
    #[default]
    Sparse,
    /// Result lives in the dense buffer.
    Dense,
}

/// Reusable, capacity-retaining buffers backing the zero-allocation
/// `*_into` kernels ([`ProbVector::intersect_into`],
/// [`ProbVector::diff_extend_into`]).
///
/// One `ScratchSpace` belongs to one worker thread (they are `Send` but
/// deliberately not shared): the buffers grow to the run's high-water mark
/// once, and every kernel call after that reuses them without touching the
/// allocator. Results are read back either in place
/// ([`ScratchSpace::dropped`]) or exported as exactly-sized owned values
/// ([`ScratchSpace::export`], [`ScratchSpace::export_diff`]) when they
/// must outlive the next kernel call — e.g. when a support engine memoizes
/// a surviving candidate. Scratch contents never influence results: each
/// kernel overwrites the buffers it uses in full.
#[derive(Clone, Debug, Default)]
pub struct ScratchSpace {
    /// Sparse result tids (valid for `ScratchKind::Sparse`).
    tids: Vec<u32>,
    /// Sparse result probs, parallel to `tids`.
    probs: Vec<f64>,
    /// Dense result probs (valid for `ScratchKind::Dense`).
    dense: Vec<f64>,
    /// Nonzero count of the dense result.
    dense_nnz: usize,
    /// Dropped tids of the last [`ProbVector::diff_extend_into`].
    dropped: Vec<u32>,
    /// Which buffers the last `intersect_into` filled.
    kind: ScratchKind,
}

impl ScratchSpace {
    /// Fresh scratch with empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Nonzero count of the last [`ProbVector::intersect_into`] result.
    pub fn len(&self) -> usize {
        match self.kind {
            ScratchKind::Sparse => self.tids.len(),
            ScratchKind::Dense => self.dense_nnz,
        }
    }

    /// True when the last intersection came out empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dropped tids of the last [`ProbVector::diff_extend_into`],
    /// ascending — readable in place, e.g. to measure a delta
    /// ([`DiffVector::mem_bytes`]-style) before deciding to export it.
    pub fn dropped(&self) -> &[u32] {
        &self.dropped
    }

    /// Exports the last [`ProbVector::intersect_into`] result as an owned,
    /// exactly-sized [`ProbVector`] — bit-for-bit the vector
    /// [`ProbVector::intersect`] would have returned, with no excess
    /// capacity to shrink.
    pub fn export(&self) -> ProbVector {
        match self.kind {
            ScratchKind::Sparse => ProbVector {
                repr: Repr::Sparse {
                    tids: self.tids.clone(),
                    probs: self.probs.clone(),
                },
            },
            ScratchKind::Dense => ProbVector {
                repr: Repr::Dense {
                    probs: self.dense.clone(),
                    nnz: self.dense_nnz,
                },
            },
        }
    }

    /// Exports the last [`ProbVector::diff_extend_into`] delta as an
    /// owned, exactly-sized [`DiffVector`].
    pub fn export_diff(&self) -> DiffVector {
        DiffVector {
            dropped: self.dropped.clone(),
        }
    }
}

impl ProbVector {
    /// [`ProbVector::intersect`] fused with [`ProbVector::intersect_stats`],
    /// writing the result into `scratch` instead of allocating: returns the
    /// result's `(esup, variance, nonzero count)` — bit-identical to both
    /// `intersect_stats` and `intersect(..).moments()` — and leaves the
    /// result vector (same adaptive representation `intersect` would pick)
    /// in the scratch buffers for [`ScratchSpace::export`]. Candidates a
    /// threshold rules out therefore cost no allocation at all.
    pub fn intersect_into(
        &self,
        other: &ProbVector,
        scratch: &mut ScratchSpace,
    ) -> (f64, f64, usize) {
        let mut esup = 0.0f64;
        let mut var = 0.0f64;
        match (&self.repr, &other.repr) {
            (
                Repr::Sparse {
                    tids: ta,
                    probs: pa,
                },
                Repr::Sparse {
                    tids: tb,
                    probs: pb,
                },
            ) => {
                scratch.kind = ScratchKind::Sparse;
                scratch.tids.clear();
                scratch.probs.clear();
                let cap = ta.len().min(tb.len());
                scratch.tids.reserve(cap);
                scratch.probs.reserve(cap);
                let (mut i, mut j) = (0usize, 0usize);
                while i < ta.len() && j < tb.len() {
                    match ta[i].cmp(&tb[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let q = pa[i] * pb[j];
                            esup += q;
                            var += q * (1.0 - q);
                            if q > 0.0 {
                                scratch.tids.push(ta[i]);
                                scratch.probs.push(q);
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            (Repr::Sparse { tids, probs }, Repr::Dense { probs: dense, .. })
            | (Repr::Dense { probs: dense, .. }, Repr::Sparse { tids, probs }) => {
                scratch.kind = ScratchKind::Sparse;
                let n = tids.len();
                scratch.tids.clear();
                scratch.probs.clear();
                scratch.tids.resize(n, 0);
                scratch.probs.resize(n, 0.0);
                // Branchless survivor cursor, as in the allocating twin.
                let mut k = 0usize;
                for i in 0..n {
                    let tid = tids[i];
                    let q = probs[i] * dense[tid as usize];
                    esup += q;
                    var += q * (1.0 - q);
                    scratch.tids[k] = tid;
                    scratch.probs[k] = q;
                    k += (q > 0.0) as usize;
                }
                scratch.tids.truncate(k);
                scratch.probs.truncate(k);
            }
            (Repr::Dense { probs: da, .. }, Repr::Dense { probs: db, .. }) => {
                debug_assert_eq!(da.len(), db.len());
                let n = da.len();
                scratch.dense.clear();
                scratch.dense.reserve(n);
                let mut nnz = 0usize;
                for (&a, &b) in da.iter().zip(db.iter()) {
                    let q = a * b;
                    esup += q;
                    var += q * (1.0 - q);
                    nnz += (q > 0.0) as usize;
                    scratch.dense.push(q);
                }
                if nnz * DENSE_CUTOFF_DIVISOR >= n {
                    scratch.kind = ScratchKind::Dense;
                    scratch.dense_nnz = nnz;
                } else {
                    // Too sparse to stay dense: extract, exactly like the
                    // allocating twin (branchless cursor).
                    scratch.kind = ScratchKind::Sparse;
                    scratch.tids.clear();
                    scratch.probs.clear();
                    scratch.tids.resize(nnz, 0);
                    scratch.probs.resize(nnz, 0.0);
                    let mut k = 0usize;
                    for (tid, &q) in scratch.dense.iter().enumerate() {
                        if k < nnz {
                            scratch.tids[k] = tid as u32;
                            scratch.probs[k] = q;
                        }
                        k += (q > 0.0) as usize;
                    }
                }
            }
        }
        (esup, var, scratch.len())
    }
}

/// The uncertain-data analog of a dEclat **diffset**: the delta of an
/// itemset's prob-vector against its own prefix's.
///
/// Extending a prefix `X` by an item `i` keeps a tid `t` iff
/// `vec(X)[t] · P_t(i) > 0`; the survivors' probabilities are reproducible
/// by gathering `P_t(i)` from the item's postings, so the only information
/// the extension *destroys* is which tids were dropped. A `DiffVector`
/// stores exactly that — the dropped tids — at 4 bytes each, versus 12
/// bytes per *kept* entry for a sparse [`ProbVector`] (or `8 · N` dense).
/// On dense data, where almost every tid survives every extension, the
/// delta is a small fraction of the tidset.
///
/// Produced by [`ProbVector::diff_extend`]; the full child vector is
/// recovered (bit-for-bit equal to [`ProbVector::intersect`]) with
/// [`ProbVector::apply_diff`] given the same prefix vector and postings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiffVector {
    /// Prefix tids that do not survive the extension, ascending.
    dropped: Vec<u32>,
}

impl DiffVector {
    /// The dropped tids, ascending.
    pub fn dropped(&self) -> &[u32] {
        &self.dropped
    }

    /// Number of prefix tids the extension dropped.
    pub fn len(&self) -> usize {
        self.dropped.len()
    }

    /// True when every prefix tid survived the extension.
    pub fn is_empty(&self) -> bool {
        self.dropped.is_empty()
    }

    /// Heap bytes of the delta (4 per dropped tid) — comparable with
    /// [`ProbVector::mem_bytes`] when choosing the smaller representation
    /// per memo node, as dEclat does.
    pub fn mem_bytes(&self) -> usize {
        self.dropped.len() * std::mem::size_of::<u32>()
    }

    /// Releases excess capacity (the delta is push-grown; long-lived
    /// memoized deltas should hold exactly the bytes
    /// [`DiffVector::mem_bytes`] reports).
    pub fn shrink_to_fit(&mut self) {
        self.dropped.shrink_to_fit();
    }
}

impl ProbVector {
    /// The dEclat-style extension step: computes, in **one** pass and
    /// without materializing the child vector, the child's statistics
    /// `(esup, variance, nonzero count)` — bit-identical to
    /// `self.intersect(other).moments()` and to
    /// [`ProbVector::intersect_stats`] — plus the [`DiffVector`] of prefix
    /// tids that did not survive (`other` absent, or the product
    /// underflowed to zero).
    pub fn diff_extend(&self, other: &ProbVector) -> (DiffVector, f64, f64, usize) {
        let mut dropped: Vec<u32> = Vec::new();
        let (esup, var, count) = self.diff_extend_core(other, |tid| dropped.push(tid));
        (DiffVector { dropped }, esup, var, count)
    }

    /// [`ProbVector::diff_extend`] writing the dropped tids into
    /// `scratch.dropped` (read back via [`ScratchSpace::dropped`], export
    /// via [`ScratchSpace::export_diff`]) instead of allocating a fresh
    /// delta. Returns the child's `(esup, variance, nonzero count)`,
    /// bit-identical to the allocating twin.
    pub fn diff_extend_into(
        &self,
        other: &ProbVector,
        scratch: &mut ScratchSpace,
    ) -> (f64, f64, usize) {
        scratch.dropped.clear();
        let dropped = &mut scratch.dropped;
        self.diff_extend_core(other, |tid| dropped.push(tid))
    }

    /// Shared engine of [`ProbVector::diff_extend`] /
    /// [`ProbVector::diff_extend_into`]: one pass over the prefix, calling
    /// `drop` for every tid that does not survive the extension.
    fn diff_extend_core<F: FnMut(u32)>(
        &self,
        other: &ProbVector,
        mut drop: F,
    ) -> (f64, f64, usize) {
        let mut esup = 0.0f64;
        let mut var = 0.0f64;
        let mut count = 0usize;
        // Visits every nonzero prefix entry in ascending tid order with the
        // paired item probability (0.0 = absent). Accumulation order and
        // multiplication order (prefix × item) match `intersect_stats`
        // exactly; products of 0.0 contribute exactly 0.0 to either
        // accumulator, so the sums are bit-identical.
        let mut visit = |tid: u32, p: f64, q: f64| {
            let prod = p * q;
            if prod > 0.0 {
                esup += prod;
                var += prod * (1.0 - prod);
                count += 1;
            } else {
                drop(tid);
            }
        };
        match (&self.repr, &other.repr) {
            (
                Repr::Sparse {
                    tids: ta,
                    probs: pa,
                },
                Repr::Sparse {
                    tids: tb,
                    probs: pb,
                },
            ) => {
                let mut j = 0usize;
                for (i, &tid) in ta.iter().enumerate() {
                    while j < tb.len() && tb[j] < tid {
                        j += 1;
                    }
                    let q = if j < tb.len() && tb[j] == tid {
                        pb[j]
                    } else {
                        0.0
                    };
                    visit(tid, pa[i], q);
                }
            }
            (Repr::Sparse { tids, probs }, Repr::Dense { probs: dense, .. }) => {
                for (&tid, &p) in tids.iter().zip(probs.iter()) {
                    visit(tid, p, dense[tid as usize]);
                }
            }
            (
                Repr::Dense { probs: da, .. },
                Repr::Sparse {
                    tids: tb,
                    probs: pb,
                },
            ) => {
                let mut j = 0usize;
                for (t, &p) in da.iter().enumerate() {
                    if p > 0.0 {
                        let tid = t as u32;
                        while j < tb.len() && tb[j] < tid {
                            j += 1;
                        }
                        let q = if j < tb.len() && tb[j] == tid {
                            pb[j]
                        } else {
                            0.0
                        };
                        visit(tid, p, q);
                    }
                }
            }
            (Repr::Dense { probs: da, .. }, Repr::Dense { probs: db, .. }) => {
                for (t, (&p, &q)) in da.iter().zip(db.iter()).enumerate() {
                    if p > 0.0 {
                        visit(t as u32, p, q);
                    }
                }
            }
        }
        (esup, var, count)
    }

    /// Reconstructs the child vector a [`ProbVector::diff_extend`] call
    /// summarized: `self` must be the same prefix vector and `other` the
    /// same appended item's postings. The result is bit-for-bit equal to
    /// `self.intersect(other)` (sparse representation; callers densify via
    /// [`ProbVector::maybe_densify`] when appropriate).
    pub fn apply_diff(&self, diff: &DiffVector, other: &ProbVector) -> ProbVector {
        self.apply_dropped(&diff.dropped, other)
    }

    /// [`ProbVector::apply_diff`] writing into a caller-owned vector whose
    /// sparse buffers are reused (cleared, capacity retained) — the
    /// zero-allocation twin for transient reconstructions that do not
    /// outlive the next kernel call.
    pub fn apply_diff_into(&self, diff: &DiffVector, other: &ProbVector, out: &mut ProbVector) {
        // Reuse `out`'s sparse buffers when it has them; a dense `out`
        // falls back to fresh sparse buffers (the result is always sparse).
        let taken = std::mem::replace(
            &mut out.repr,
            Repr::Sparse {
                tids: Vec::new(),
                probs: Vec::new(),
            },
        );
        let (mut tids, mut probs) = match taken {
            Repr::Sparse { tids, probs } => (tids, probs),
            Repr::Dense { .. } => (Vec::new(), Vec::new()),
        };
        tids.clear();
        probs.clear();
        self.apply_dropped_core(&diff.dropped, other, &mut tids, &mut probs);
        out.repr = Repr::Sparse { tids, probs };
    }

    /// [`ProbVector::apply_diff`] over a raw dropped-tid slice — lets
    /// callers holding a delta in scratch ([`ScratchSpace::dropped`])
    /// materialize the child without first exporting a [`DiffVector`].
    pub fn apply_dropped(&self, dropped: &[u32], other: &ProbVector) -> ProbVector {
        let survivors = self.len().saturating_sub(dropped.len());
        let mut tids = Vec::with_capacity(survivors);
        let mut probs = Vec::with_capacity(survivors);
        self.apply_dropped_core(dropped, other, &mut tids, &mut probs);
        ProbVector {
            repr: Repr::Sparse { tids, probs },
        }
    }

    /// Shared engine of the `apply_*` reconstructions: pushes the
    /// surviving `(tid, prob)` pairs into the provided buffers.
    fn apply_dropped_core(
        &self,
        dropped: &[u32],
        other: &ProbVector,
        tids: &mut Vec<u32>,
        probs: &mut Vec<f64>,
    ) {
        let survivors = self.len().saturating_sub(dropped.len());
        tids.reserve(survivors);
        probs.reserve(survivors);
        let mut d = 0usize;
        let mut j = 0usize; // cursor when `other` is sparse
        let mut visit = |tid: u32, p: f64, other: &ProbVector| {
            if d < dropped.len() && dropped[d] == tid {
                d += 1;
                return;
            }
            let q = match &other.repr {
                Repr::Dense { probs, .. } => probs[tid as usize],
                Repr::Sparse {
                    tids: tb,
                    probs: pb,
                } => {
                    while j < tb.len() && tb[j] < tid {
                        j += 1;
                    }
                    if j < tb.len() && tb[j] == tid {
                        pb[j]
                    } else {
                        0.0
                    }
                }
            };
            let prod = p * q;
            debug_assert!(prod > 0.0, "surviving tid {tid} has a zero product");
            tids.push(tid);
            probs.push(prod);
        };
        match &self.repr {
            Repr::Sparse {
                tids: ta,
                probs: pa,
            } => {
                for (&tid, &p) in ta.iter().zip(pa.iter()) {
                    visit(tid, p, other);
                }
            }
            Repr::Dense { probs: da, .. } => {
                for (t, &p) in da.iter().enumerate() {
                    if p > 0.0 {
                        visit(t as u32, p, other);
                    }
                }
            }
        }
        debug_assert_eq!(d, dropped.len(), "dropped tid absent from prefix");
    }
}

fn intersect_sparse_sparse(ta: &[u32], pa: &[f64], tb: &[u32], pb: &[f64]) -> ProbVector {
    let cap = ta.len().min(tb.len());
    let mut tids = Vec::with_capacity(cap);
    let mut probs = Vec::with_capacity(cap);
    let (mut i, mut j) = (0usize, 0usize);
    while i < ta.len() && j < tb.len() {
        match ta[i].cmp(&tb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Deep itemsets can underflow the product to exactly 0.0;
                // keeping such an entry would violate the sparse nonzero
                // invariant and make `len()` disagree with `intersect_stats`
                // (which counts products, not items).
                let q = pa[i] * pb[j];
                if q > 0.0 {
                    tids.push(ta[i]);
                    probs.push(q);
                }
                i += 1;
                j += 1;
            }
        }
    }
    ProbVector {
        repr: Repr::Sparse { tids, probs },
    }
}

/// Gathers the sparse side through the dense side: `O(nnz)` lookups.
///
/// The survivor cursor `k` advances branchlessly — on the candidate-heavy
/// last levels of a dense mining run (mostly misses) branch mispredictions
/// would otherwise dominate the loop.
fn intersect_sparse_dense(tids: &[u32], probs: &[f64], dense: &[f64]) -> ProbVector {
    let n = tids.len();
    let mut out_tids = vec![0u32; n];
    let mut out_probs = vec![0.0f64; n];
    let mut k = 0usize;
    for i in 0..n {
        let tid = tids[i];
        let q = probs[i] * dense[tid as usize];
        out_tids[k] = tid;
        out_probs[k] = q;
        // The cursor advances on the *product*, not the item probability: a
        // product that underflows to 0.0 must be dropped like a miss, or the
        // nonzero invariant breaks and `len()` diverges from
        // `intersect_stats`'s count.
        k += (q > 0.0) as usize;
    }
    out_tids.truncate(k);
    out_probs.truncate(k);
    ProbVector {
        repr: Repr::Sparse {
            tids: out_tids,
            probs: out_probs,
        },
    }
}

fn intersect_dense_dense(da: &[f64], db: &[f64]) -> ProbVector {
    debug_assert_eq!(da.len(), db.len());
    let n = da.len();
    // Two branchless, autovectorizable passes: multiply, then count.
    let probs: Vec<f64> = da.iter().zip(db.iter()).map(|(&a, &b)| a * b).collect();
    let nnz = probs.iter().filter(|&&q| q > 0.0).count();
    if nnz * DENSE_CUTOFF_DIVISOR >= n {
        return ProbVector {
            repr: Repr::Dense { probs, nnz },
        };
    }
    // Too sparse to stay dense: extract (branchless cursor again).
    let mut tids = vec![0u32; nnz];
    let mut sparse = vec![0.0f64; nnz];
    let mut k = 0usize;
    for (tid, &q) in probs.iter().enumerate() {
        if k < nnz {
            tids[k] = tid as u32;
            sparse[k] = q;
        }
        k += (q > 0.0) as usize;
    }
    ProbVector {
        repr: Repr::Sparse {
            tids,
            probs: sparse,
        },
    }
}

/// One-pass columnar index over an [`UncertainDatabase`]: for every item, the
/// sorted postings of `(tid, prob)` pairs in which it occurs, each stored
/// sparsely or densely by the [`DENSE_CUTOFF_DIVISOR`] rule.
#[derive(Clone, Debug, Default)]
pub struct VerticalIndex {
    postings: Vec<ProbVector>,
    num_transactions: usize,
}

impl VerticalIndex {
    /// Builds the index in a single pass over the database.
    pub fn build(db: &UncertainDatabase) -> Self {
        let n = db.num_transactions();
        let mut postings = vec![ProbVector::new(); db.num_items() as usize];
        for (tid, t) in db.transactions().iter().enumerate() {
            for (item, p) in t.units() {
                postings[item as usize].push(tid as u32, p);
            }
        }
        for v in &mut postings {
            v.maybe_densify(n);
        }
        VerticalIndex {
            postings,
            num_transactions: n,
        }
    }

    /// Number of transactions in the indexed database.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Vocabulary size.
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.postings.len() as u32
    }

    /// The postings of one item (its singleton prob-vector).
    #[inline]
    pub fn postings(&self, item: ItemId) -> &ProbVector {
        &self.postings[item as usize]
    }

    /// Total nonzero `(tid, prob)` units — equals the database's total
    /// units.
    pub fn total_units(&self) -> usize {
        self.postings.iter().map(ProbVector::len).sum()
    }

    /// Mean nonzero units per posting (0 for an empty vocabulary) — the
    /// per-candidate work estimate the support engines share when gating
    /// their parallel fan-out.
    pub fn mean_posting_units(&self) -> usize {
        self.total_units()
            .checked_div(self.num_items().max(1) as usize)
            .unwrap_or(0)
    }

    /// Computes an arbitrary itemset's prob-vector from scratch by folding
    /// postings left to right — `O(Σ |postings|)`. Miners avoid this via
    /// prefix memoization; it anchors tests and serves cold lookups.
    pub fn prob_vector(&self, itemset: &[ItemId]) -> ProbVector {
        let Some((&first, rest)) = itemset.split_first() else {
            return ProbVector::new();
        };
        let mut acc = self.postings(first).clone();
        for &item in rest {
            if acc.is_empty() {
                break;
            }
            acc = acc.intersect(self.postings(item));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_table1;
    use crate::transaction::Transaction;

    #[test]
    fn index_matches_horizontal_reference() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        assert_eq!(idx.num_transactions(), 4);
        assert_eq!(idx.num_items(), 6);
        assert_eq!(idx.total_units(), db.stats().total_units);
        for item in 0..6u32 {
            let esup = idx.postings(item).esup();
            let want = db.item_expected_supports()[item as usize];
            assert!((esup - want).abs() < 1e-12, "item {item}");
        }
        // D appears in T1 (0.7) and T4 (0.5) only.
        assert_eq!(idx.postings(3).nonzero(), vec![(0, 0.7), (3, 0.5)]);
    }

    #[test]
    fn intersection_reproduces_itemset_prob_vectors() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        for a in 0..6u32 {
            for b in a + 1..6u32 {
                let vec2 = idx.postings(a).intersect(idx.postings(b));
                let want = db.itemset_prob_vector(&[a, b]);
                assert_eq!(vec2.nonzero_probs(), want, "{{{a},{b}}}");
                let (esup, var) = vec2.moments();
                let (we, wv) = db.support_moments(&[a, b]);
                assert!((esup - we).abs() < 1e-12);
                assert!((var - wv).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn prefix_recurrence_equals_scratch_fold() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        // {A, C, E}: prefix {A, C} extended by E.
        let prefix = idx.postings(0).intersect(idx.postings(2));
        let via_recurrence = prefix.intersect(idx.postings(4));
        assert_eq!(via_recurrence, idx.prob_vector(&[0, 2, 4]));
        assert_eq!(
            via_recurrence.nonzero_probs(),
            db.itemset_prob_vector(&[0, 2, 4])
        );
    }

    #[test]
    fn empty_cases() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        assert!(idx.prob_vector(&[]).is_empty());
        // D and E never co-occur.
        assert!(idx.prob_vector(&[3, 4]).is_empty());
        assert_eq!(idx.prob_vector(&[3, 4]).esup(), 0.0);

        let empty = UncertainDatabase::from_transactions(vec![]);
        let idx = VerticalIndex::build(&empty);
        assert_eq!(idx.num_items(), 0);
        assert_eq!(idx.total_units(), 0);
    }

    #[test]
    fn intersect_is_commutative_here() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        let ab = idx.postings(0).intersect(idx.postings(1));
        let ba = idx.postings(1).intersect(idx.postings(0));
        assert_eq!(ab, ba);
    }

    /// Exercises all four representation pairings of `intersect` against
    /// the horizontal reference on a database whose items span the
    /// dense/sparse cutoff.
    #[test]
    fn mixed_representations_agree_with_reference() {
        // Item 0: every transaction (dense). Item 1: every other (dense).
        // Item 2: every 10th (sparse). Item 3: every 16th (sparse).
        let transactions: Vec<Transaction> = (0..320)
            .map(|i| {
                let mut units = vec![(0u32, 0.9)];
                if i % 2 == 0 {
                    units.push((1, 0.8));
                }
                if i % 10 == 0 {
                    units.push((2, 0.7));
                }
                if i % 16 == 0 {
                    units.push((3, 0.6));
                }
                Transaction::new(units).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 4);
        let idx = VerticalIndex::build(&db);
        assert!(idx.postings(0).is_dense());
        assert!(idx.postings(1).is_dense());
        assert!(!idx.postings(2).is_dense());
        assert!(!idx.postings(3).is_dense());
        for a in 0..4u32 {
            for b in a + 1..4u32 {
                let got = idx.postings(a).intersect(idx.postings(b));
                let want = db.itemset_prob_vector(&[a, b]);
                assert_eq!(got.nonzero_probs(), want, "{{{a},{b}}}");
                assert_eq!(got.len(), want.len());
            }
        }
        // Dense × dense that comes out sparse: {1, 2} hits every 10th-and-
        // even transaction (1/10 < 1/4 of the database).
        let v12 = idx.postings(1).intersect(idx.postings(2));
        assert!(!v12.is_dense());
        // Triple through the recurrence, mixing all reprs.
        let v012 = idx.prob_vector(&[0, 1, 2]);
        assert_eq!(v012.nonzero_probs(), db.itemset_prob_vector(&[0, 1, 2]));
    }

    /// Builds a sparse or (force-)dense vector for the representation
    /// sweep tests below.
    fn vector(pairs: &[(u32, f64)], dense_over: Option<usize>) -> ProbVector {
        let (tids, probs): (Vec<u32>, Vec<f64>) = pairs.iter().copied().unzip();
        let mut v = ProbVector::from_parts(tids, probs);
        if let Some(n) = dense_over {
            v.maybe_densify(n);
            assert!(v.is_dense(), "fixture must cross the dense cutoff");
        }
        v
    }

    /// f64 underflow regime: products of these hit exact 0.0 (1e-200 ×
    /// 1e-200 = 1e-400 < the smallest subnormal) or the subnormal range.
    const TINY: f64 = 1e-200;
    const SUBNORMAL_EDGE: f64 = 1e-160; // squared → 1e-320, subnormal

    /// All four representation pairings must drop zero products from the
    /// materialized result, and `len()`/`moments()` must agree with
    /// `intersect_stats` bit for bit — the invariant the `WITH_COUNT`
    /// pushdown path relies on.
    #[test]
    fn underflow_products_are_dropped_consistently() {
        let pairs_a = [(0u32, TINY), (1, 0.5), (2, SUBNORMAL_EDGE), (3, 0.9)];
        let pairs_b = [(0u32, TINY), (1, 0.5), (2, SUBNORMAL_EDGE), (3, 1e-320)];
        for a_dense in [None, Some(8)] {
            for b_dense in [None, Some(8)] {
                let a = vector(&pairs_a, a_dense);
                let b = vector(&pairs_b, b_dense);
                let got = a.intersect(&b);
                let (esup, var, count) = a.intersect_stats(&b);
                // tid 0: 1e-400 → 0.0, dropped. tid 1: 0.25 kept. tid 2:
                // subnormal 1e-320 > 0 kept. tid 3: 0.9·1e-320 kept.
                assert_eq!(got.len(), 3, "{a_dense:?}×{b_dense:?}");
                assert_eq!(count, got.len(), "{a_dense:?}×{b_dense:?}");
                let (ge, gv) = got.moments();
                assert_eq!(ge.to_bits(), esup.to_bits(), "{a_dense:?}×{b_dense:?}");
                assert_eq!(gv.to_bits(), var.to_bits(), "{a_dense:?}×{b_dense:?}");
                // The nonzero invariant holds on the materialized vector.
                assert!(got.nonzero().iter().all(|&(_, q)| q > 0.0));
            }
        }
    }

    /// A fully-underflowing intersection materializes as empty and reports
    /// zero stats — `len()`, `moments()` and `intersect_stats` all agree.
    #[test]
    fn total_underflow_yields_empty_vector() {
        let a = vector(&[(0, TINY), (5, TINY)], None);
        let b = vector(&[(0, TINY), (5, TINY)], None);
        let got = a.intersect(&b);
        assert!(got.is_empty());
        let (esup, var, count) = a.intersect_stats(&b);
        assert_eq!((esup, var, count), (0.0, 0.0, 0));
        assert_eq!(got.moments(), (0.0, 0.0));
    }

    /// Chains deep enough that products underflow step by step: the
    /// recurrence must keep dropping newly-zero entries at every level.
    #[test]
    fn deep_chain_underflow() {
        // 8 items all present in the same 3 transactions with tiny probs:
        // products vanish after ⌈300/200⌉ = 2 steps for the 1e-200 tids.
        let transactions: Vec<Transaction> = (0..3)
            .map(|t| {
                let p = if t == 0 { 0.5 } else { TINY };
                Transaction::new((0..8u32).map(|i| (i, p)).collect::<Vec<_>>()).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 8);
        let idx = VerticalIndex::build(&db);
        let items: Vec<u32> = (0..8).collect();
        let mut acc = idx.postings(items[0]).clone();
        for &i in &items[1..] {
            let (esup, var, count) = acc.intersect_stats(idx.postings(i));
            acc = acc.intersect(idx.postings(i));
            assert_eq!(acc.len(), count);
            let (ge, gv) = acc.moments();
            assert_eq!(ge.to_bits(), esup.to_bits());
            assert_eq!(gv.to_bits(), var.to_bits());
            assert!(acc.nonzero().iter().all(|&(_, q)| q > 0.0));
        }
        // Only the p=0.5 transaction survives all 8 items (0.5^8).
        assert_eq!(acc.nonzero(), vec![(0, 0.5f64.powi(8))]);
    }

    /// `diff_extend` + `apply_diff` reproduce `intersect`/`intersect_stats`
    /// exactly, across all representation pairings — including dropped
    /// entries caused by underflow, not just by absence.
    #[test]
    fn diff_roundtrip_matches_intersect() {
        let pairs_a = [(0u32, 0.9), (1, TINY), (3, 0.5), (5, 0.7), (7, 0.2)];
        let pairs_b = [(0u32, 0.8), (1, TINY), (2, 0.4), (5, 0.6), (7, 0.1)];
        for a_dense in [None, Some(12)] {
            for b_dense in [None, Some(12)] {
                let a = vector(&pairs_a, a_dense);
                let b = vector(&pairs_b, b_dense);
                let (diff, esup, var, count) = a.diff_extend(&b);
                let want = a.intersect(&b);
                let (we, wv, wc) = a.intersect_stats(&b);
                assert_eq!(esup.to_bits(), we.to_bits());
                assert_eq!(var.to_bits(), wv.to_bits());
                assert_eq!(count, wc);
                // Dropped: tid 1 (underflow) and tid 3 (absent from b).
                assert_eq!(diff.dropped(), &[1, 3], "{a_dense:?}×{b_dense:?}");
                let rebuilt = a.apply_diff(&diff, &b);
                assert_eq!(rebuilt, want, "{a_dense:?}×{b_dense:?}");
                assert_eq!(rebuilt.len(), count);
            }
        }
    }

    /// Delta chains over the Table 1 example equal the scratch fold.
    #[test]
    fn diff_chain_reconstruction() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        // Chain {A} → {A,C} → {A,C,E} entirely through deltas.
        let a = idx.postings(0);
        let (d_ac, ..) = a.diff_extend(idx.postings(2));
        let ac = a.apply_diff(&d_ac, idx.postings(2));
        let (d_ace, esup, _, count) = ac.diff_extend(idx.postings(4));
        let ace = ac.apply_diff(&d_ace, idx.postings(4));
        assert_eq!(ace, idx.prob_vector(&[0, 2, 4]));
        assert_eq!(ace.len(), count);
        assert!((esup - db.expected_support(&[0, 2, 4])).abs() < 1e-12);
        // Memory accounting: deltas are 4 bytes per dropped tid.
        assert_eq!(d_ac.mem_bytes(), d_ac.len() * 4);
        assert_eq!(ac.mem_bytes(), ac.len() * 12);
    }

    /// `intersect_into` must reproduce `intersect` exactly — same values,
    /// same adaptive representation choice, same stats bits — across all
    /// four representation pairings, with one scratch reused (dirty)
    /// between calls.
    #[test]
    fn intersect_into_matches_intersect_across_representations() {
        let pairs_a = [(0u32, TINY), (1, 0.5), (2, SUBNORMAL_EDGE), (3, 0.9)];
        let pairs_b = [(0u32, TINY), (1, 0.5), (2, SUBNORMAL_EDGE), (3, 1e-320)];
        let mut scratch = ScratchSpace::new();
        for a_dense in [None, Some(8)] {
            for b_dense in [None, Some(8)] {
                let a = vector(&pairs_a, a_dense);
                let b = vector(&pairs_b, b_dense);
                let want = a.intersect(&b);
                let (we, wv, wc) = a.intersect_stats(&b);
                let (esup, var, count) = a.intersect_into(&b, &mut scratch);
                assert_eq!(esup.to_bits(), we.to_bits(), "{a_dense:?}×{b_dense:?}");
                assert_eq!(var.to_bits(), wv.to_bits(), "{a_dense:?}×{b_dense:?}");
                assert_eq!(count, wc);
                assert_eq!(scratch.len(), want.len());
                let exported = scratch.export();
                assert_eq!(exported, want, "{a_dense:?}×{b_dense:?}");
                assert_eq!(exported.is_dense(), want.is_dense());
                assert_eq!(
                    exported.mem_bytes(),
                    want.len() * 12 * usize::from(!want.is_dense())
                        + want.mem_units() * 8 * usize::from(want.is_dense())
                );
            }
        }
    }

    /// A dense × dense intersection that stays dense round-trips through
    /// scratch, and a later sparse result on the same scratch is unharmed
    /// by the leftover dense buffer.
    #[test]
    fn scratch_reuse_across_representation_switches() {
        // 8 tids over n=8: dense stays dense.
        let all: Vec<(u32, f64)> = (0..8).map(|t| (t, 0.9)).collect();
        let a = vector(&all, Some(8));
        let b = vector(&all, Some(8));
        let mut scratch = ScratchSpace::new();
        let (esup, ..) = a.intersect_into(&b, &mut scratch);
        assert!(scratch.export().is_dense());
        assert!((esup - 8.0 * 0.81).abs() < 1e-12);
        // Now a tiny sparse × sparse on the same scratch.
        let c = vector(&[(1, 0.5), (5, 0.25)], None);
        let d = vector(&[(5, 0.5)], None);
        let (esup, _, count) = c.intersect_into(&d, &mut scratch);
        assert_eq!(count, 1);
        assert_eq!(scratch.export().nonzero(), vec![(5, 0.125)]);
        assert!((esup - 0.125).abs() < 1e-15);
    }

    /// `diff_extend_into` + `export_diff` ≡ `diff_extend`, and
    /// `apply_diff_into` / `apply_dropped` ≡ `apply_diff`, with buffer
    /// reuse across calls.
    #[test]
    fn scratch_diff_kernels_match_allocating_twins() {
        let pairs_a = [(0u32, 0.9), (1, TINY), (3, 0.5), (5, 0.7), (7, 0.2)];
        let pairs_b = [(0u32, 0.8), (1, TINY), (2, 0.4), (5, 0.6), (7, 0.1)];
        let mut scratch = ScratchSpace::new();
        let mut out = ProbVector::new();
        for a_dense in [None, Some(12)] {
            for b_dense in [None, Some(12)] {
                let a = vector(&pairs_a, a_dense);
                let b = vector(&pairs_b, b_dense);
                let (want_diff, we, wv, wc) = a.diff_extend(&b);
                let (esup, var, count) = a.diff_extend_into(&b, &mut scratch);
                assert_eq!(esup.to_bits(), we.to_bits());
                assert_eq!(var.to_bits(), wv.to_bits());
                assert_eq!(count, wc);
                assert_eq!(scratch.dropped(), want_diff.dropped());
                assert_eq!(scratch.export_diff(), want_diff);
                let want = a.apply_diff(&want_diff, &b);
                assert_eq!(a.apply_dropped(scratch.dropped(), &b), want);
                a.apply_diff_into(&want_diff, &b, &mut out);
                assert_eq!(out, want, "{a_dense:?}×{b_dense:?}");
            }
        }
    }

    #[test]
    fn densify_rules() {
        let mut v = ProbVector::from_parts(vec![0, 2], vec![0.5, 0.5]);
        v.maybe_densify(100); // 2/100 < 1/4: stays sparse
        assert!(!v.is_dense());
        v.maybe_densify(8); // 2/8 ≥ 1/4: densifies
        assert!(v.is_dense());
        assert_eq!(v.len(), 2);
        assert_eq!(v.mem_units(), 8);
        assert_eq!(v.nonzero(), vec![(0, 0.5), (2, 0.5)]);
    }
}
