//! Vertical (columnar) layout of an uncertain database: per-item tid-lists
//! with existence probabilities, stored as fixed-width 64-tid chunks.
//!
//! The horizontal layout ([`UncertainDatabase`]) answers "which items does
//! transaction `t` contain?"; the vertical layout answers the converse —
//! "which transactions contain item `i`, and with what probability?" — which
//! is the question every support computation actually asks. A
//! [`VerticalIndex`] is built in **one** database pass; afterwards, the
//! nonzero containment-probability vector of a `k`-itemset is the
//! intersection of its `(k−1)`-prefix's vector with the last item's
//! postings (the U-Eclat recurrence):
//!
//! ```text
//! vec(X ∪ {i})[t] = vec(X)[t] · P_t(i)      for t in tids(X) ∩ tids(i)
//! ```
//!
//! Expected support, support variance, the nonzero-transaction count and
//! the exact miners' DP/DC input all fall out of that one intersection —
//! no re-scan of the database is ever needed.
//!
//! ## Chunked representation
//!
//! A [`ProbVector`] is a Roaring-style sequence of **64-tid chunks**. Each
//! nonempty chunk contributes one entry to four parallel arrays: its chunk
//! key (`tid >> 6`, ascending), a `u64` presence bitmask, an end offset
//! into a shared probability-lane array, and the lanes themselves. A chunk
//! stores its lanes in one of two ways, decided **per chunk**:
//!
//! * **packed** — `popcount(mask)` probabilities in ascending tid order
//!   (the sparse regime: under [`CHUNK_LANES`]` / `[`DENSE_CUTOFF_DIVISOR`]
//!   = 16 nonzeros);
//! * **positional** — all 64 lanes, `0.0` = absent (the dense regime:
//!   ≥ 16 of the chunk's 64 tids present), so a lane is addressed directly
//!   by its tid's low bits with no rank computation.
//!
//! The decision is re-made wherever a chunk is (re)built — [`ProbVector::
//! from_parts`], [`ProbVector::push`], and every materializing kernel
//! ([`ProbVector::intersect`], [`ProbVector::intersect_into`],
//! [`ProbVector::apply_diff_into`], …) — so a vector's layout is a pure
//! function of its contents, never of its construction history.
//!
//! Intersection works the chunk directory first — `mask_a & mask_b`
//! discards absent tids 64 at a time — then visits only the surviving bits,
//! reading each side's lane by position (dense chunk) or by mask rank
//! (packed chunk). When one side's chunk directory is more than
//! [`GALLOP_RATIO`]× longer than the other's (the Kosarak/zipf skewed-pair
//! regime), the merge-join over chunk keys switches to **galloping**:
//! exponential probe then binary search over the longer side, `O(short ·
//! log long)` instead of `O(short + long)`. Balanced pairs keep the scalar
//! merge-join.
//!
//! ## Determinism
//!
//! Results are bit-for-bit reproducible across representations, backends
//! and thread counts. The argument:
//!
//! * probabilities are multiplied in ascending item order and visited in
//!   ascending tid order, exactly as a horizontal scan visits them;
//! * every statistics accumulation in the workspace — these kernels, the
//!   horizontal backend's chunked scan reduction — uses the same **fixed
//!   summation shape**: [`SUM_STRIPES`] partial sums per
//!   [`SUM_BLOCK_TIDS`]-aligned tid block (4096 tids = 64 chunks), each tid
//!   contributing to stripe `tid % 8`, stripes folded in ascending stripe
//!   order and blocks in ascending block order (the striping breaks the
//!   accumulator dependency chain that would otherwise serialize one add
//!   per ~4 cycles);
//! * skipped tids never contribute: a tid absent from either side adds
//!   exactly `0.0` under IEEE-754 (`x + 0.0 == x` for the nonnegative
//!   values that occur here), so visiting *only* the common nonzero tids
//!   yields the same bits as a full scan — that skip, not reordering, is
//!   where the chunked layout's speed comes from.
//!
//! Products that underflow to exactly `0.0` (possible for deep itemsets of
//! tiny probabilities) are dropped by every materializing path, keeping the
//! nonzero invariant and the `len()` / [`ProbVector::intersect_stats`]
//! agreement.
//!
//! ## Delta representation
//!
//! [`DiffVector`] is the uncertain-data analog of a dEclat diffset: it
//! records only the prefix tids an extension *dropped*, because the
//! survivors' probabilities are recomputable from the appended item's
//! postings. [`ProbVector::diff_extend`] produces the delta plus the
//! child's `(esup, var, count)` in one pass; [`ProbVector::apply_diff`]
//! reconstructs the full child vector. The diffset support engine builds
//! its low-memory prefix memo out of these.
//!
//! ## Zero-allocation kernels
//!
//! Every allocating kernel has an `*_into` twin writing into a reusable
//! [`ScratchSpace`] (or, for [`ProbVector::apply_diff_into`], a
//! caller-owned vector) whose buffers retain their capacity across calls:
//! [`ProbVector::intersect_into`] and [`ProbVector::diff_extend_into`]
//! additionally fuse the statistics pass, returning `(esup, var, count)`
//! bit-identical to [`ProbVector::intersect_stats`]. Support engines keep
//! one `ScratchSpace` per worker thread
//! (`ufim_core::parallel::par_map_with`), so steady-state candidate
//! evaluation performs **no** intersection allocations — a candidate only
//! pays an (exactly-sized) allocation when it survives pruning and its
//! result is exported into a memo.
//!
//! ## Bounded (early-exit) kernels
//!
//! [`ProbVector::intersect_stats_bounded`] and
//! [`ProbVector::intersect_into_bounded`] accept the prefix's own mass and
//! a support threshold and may stop at a summation-block boundary once the
//! folded partial plus the unconsumed prefix mass proves the result below
//! the threshold. Until a bail fires the computation is *identical* to the
//! unbounded kernels, and bail points are a pure function of the operands
//! — never of thread count or evaluation order — so the determinism
//! guarantee survives the pushdown: results are decision-equivalent below
//! the threshold and bit-identical at or above it.

use crate::database::UncertainDatabase;
use crate::itemset::ItemId;

/// A chunk whose nonzero count is at least [`CHUNK_LANES`]` /
/// DENSE_CUTOFF_DIVISOR` (16 of its 64 tids) stores all 64 lanes
/// positionally; below the cutoff it packs only the present lanes.
pub const DENSE_CUTOFF_DIVISOR: usize = 4;

/// Tids covered by one chunk: a `u64` presence bitmask plus probability
/// lanes.
pub const CHUNK_LANES: usize = 64;

/// `tid >> CHUNK_BITS` is a tid's chunk key; `tid & 63` its bit.
const CHUNK_BITS: u32 = 6;

/// Nonzeros at which a chunk crosses from packed to positional lanes.
const POSITIONAL_MIN: usize = CHUNK_LANES / DENSE_CUTOFF_DIVISOR;

/// When one side of a kernel has over `GALLOP_RATIO×` more chunks than the
/// other, the chunk-key merge-join switches to galloping (exponential probe
/// + binary search) over the longer side.
pub const GALLOP_RATIO: usize = 16;

/// Fixed summation-block width in tids, shared by every statistics
/// accumulation in the workspace (these kernels *and* the horizontal
/// backend's scan reduction): [`SUM_STRIPES`] striped partial sums are
/// formed per aligned 4096-tid block (a tid lands in stripe `tid % 8`) and
/// folded in ascending stripe then block order, so `esup`/`var` come out
/// bit-identical no matter which backend, representation or thread count
/// produced them.
pub const SUM_BLOCK_TIDS: usize = 4096;

/// Striped partial sums per summation block: tid `t` contributes to stripe
/// `t & (SUM_STRIPES − 1)`. Eight independent accumulators break the
/// floating-point add dependency chain (≈ 4 cycles per serialized add)
/// while keeping the reduction shape a pure function of which nonzero
/// products exist.
pub const SUM_STRIPES: usize = 8;

/// `chunk key >> SUM_BLOCK_KEY_SHIFT` is the chunk's summation block.
const SUM_BLOCK_KEY_SHIFT: u32 = 6; // log2(SUM_BLOCK_TIDS) − CHUNK_BITS

/// The fixed-shape `(esup, var, count)` accumulator: [`SUM_STRIPES`]
/// striped partial sums per [`SUM_BLOCK_TIDS`]-aligned block, folded in
/// ascending stripe order on block exit and blocks in ascending order.
/// Folding an untouched (all-zero) stripe is an IEEE-754 no-op, so blocks
/// with no contributions may be entered or skipped freely — the final bits
/// depend only on which nonzero products exist, in tid order.
struct MomentAcc {
    esup: f64,
    var: f64,
    blk_esup: [f64; SUM_STRIPES],
    blk_var: [f64; SUM_STRIPES],
    blk: u32,
    count: usize,
}

impl MomentAcc {
    #[inline(always)]
    fn new() -> Self {
        MomentAcc {
            esup: 0.0,
            var: 0.0,
            blk_esup: [0.0; SUM_STRIPES],
            blk_var: [0.0; SUM_STRIPES],
            blk: 0,
            count: 0,
        }
    }

    /// Declares that subsequent [`MomentAcc::add`]s belong to chunk `key`.
    /// Must be called with ascending keys; calling it again for the same
    /// key is a no-op. Returns whether a block boundary was crossed (the
    /// stripes were just folded, so `self.esup` is momentarily exact —
    /// what the bounded kernel's bail check reads).
    #[inline(always)]
    fn enter_chunk(&mut self, key: u32) -> bool {
        let b = key >> SUM_BLOCK_KEY_SHIFT;
        if b != self.blk {
            self.fold();
            self.blk = b;
            return true;
        }
        false
    }

    /// Adds the product for the tid whose position within its chunk is
    /// `lane` (`tid & 63`; only `lane % SUM_STRIPES` — which equals
    /// `tid % SUM_STRIPES` — selects the stripe).
    #[inline(always)]
    fn add(&mut self, lane: u32, q: f64) {
        let s = (lane as usize) & (SUM_STRIPES - 1);
        self.blk_esup[s] += q;
        self.blk_var[s] += q * (1.0 - q);
        self.count += (q > 0.0) as usize;
    }

    #[inline(always)]
    fn fold(&mut self) {
        for s in 0..SUM_STRIPES {
            self.esup += self.blk_esup[s];
            self.blk_esup[s] = 0.0;
        }
        for s in 0..SUM_STRIPES {
            self.var += self.blk_var[s];
            self.blk_var[s] = 0.0;
        }
    }

    #[inline(always)]
    fn finish(mut self) -> (f64, f64, usize) {
        self.fold();
        (self.esup, self.var, self.count)
    }
}

/// Destination of a fixed-shape statistics accumulation: either the plain
/// folding [`MomentAcc`] or a [`BlockRecorder`] that additionally retains
/// the per-block striped partials for a memo. Both receive the exact same
/// `(chunk, lane, product)` sequence, so whichever sink a kernel runs with,
/// the folded `(esup, var, count)` come out bit-identical.
trait StatSink {
    fn enter_chunk(&mut self, key: u32) -> bool;
    fn add(&mut self, lane: u32, q: f64);
}

impl StatSink for MomentAcc {
    #[inline(always)]
    fn enter_chunk(&mut self, key: u32) -> bool {
        MomentAcc::enter_chunk(self, key)
    }

    #[inline(always)]
    fn add(&mut self, lane: u32, q: f64) {
        MomentAcc::add(self, lane, q)
    }
}

/// One summation block's retained partial sums: the [`SUM_STRIPES`] striped
/// `esup` / `var` accumulators exactly as [`MomentAcc`] held them the
/// moment the block folded, plus the block's nonzero count. Retaining
/// these (instead of only the folded scalars) is what makes point updates
/// bit-exact: a window step recomputes *whole touched blocks* from the
/// patched vector — reproducing the identical left-fold per stripe — and
/// replays the same block-ascending, stripe-ascending fold, so the result
/// is indistinguishable from a cold re-fold.
#[derive(Clone, Copy, Debug, PartialEq)]
struct BlockPartial {
    /// Summation-block key (`tid >> 12`).
    key: u32,
    esup: [f64; SUM_STRIPES],
    var: [f64; SUM_STRIPES],
    /// Nonzero entries in the block.
    count: u32,
}

impl BlockPartial {
    fn zero(key: u32) -> Self {
        BlockPartial {
            key,
            esup: [0.0; SUM_STRIPES],
            var: [0.0; SUM_STRIPES],
            count: 0,
        }
    }

    #[inline(always)]
    fn add(&mut self, lane: u32, q: f64) {
        let s = (lane as usize) & (SUM_STRIPES - 1);
        self.esup[s] += q;
        self.var[s] += q * (1.0 - q);
        self.count += (q > 0.0) as u32;
    }
}

/// Per-[`SUM_BLOCK_TIDS`]-block striped partial sums of a memoized
/// prob-vector — the fold state a support engine retains alongside a
/// vector so cached `(esup, var, count)` moments survive point updates.
///
/// [`BlockMoments::fold`] replays `MomentAcc`'s exact reduction (blocks
/// ascending; within a block, the eight esup stripes then the eight var
/// stripes) over the retained partials, so it is bit-identical to
/// [`ProbVector::moments`] of the vector the partials describe — and stays
/// so after any sequence of [`BlockMoments::refresh`] calls, because a
/// refresh recomputes each touched block's stripes with the same
/// tid-ascending left fold the cold accumulation used. Untouched blocks
/// keep their bits; only `O(touched blocks)` of work is redone per window
/// step, never `O(window)`.
///
/// Only blocks with at least one nonzero entry are stored (an all-zero
/// block folds as an IEEE-754 no-op, exactly as `MomentAcc` skipping
/// it), so equal vectors always yield structurally equal `BlockMoments`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockMoments {
    /// Nonempty blocks, ascending by key.
    blocks: Vec<BlockPartial>,
}

impl BlockMoments {
    /// The summation block containing `tid`.
    #[inline]
    pub fn block_of_tid(tid: u32) -> u32 {
        tid / SUM_BLOCK_TIDS as u32
    }

    /// Builds the retained partials of `v` from scratch — one pass, same
    /// cost shape as [`ProbVector::moments`].
    pub fn of(v: &ProbVector) -> Self {
        let mut blocks = Vec::new();
        let mut i = 0usize;
        while i < v.keys.len() {
            let bkey = v.keys[i] >> SUM_BLOCK_KEY_SHIFT;
            let mut j = i;
            while j < v.keys.len() && v.keys[j] >> SUM_BLOCK_KEY_SHIFT == bkey {
                j += 1;
            }
            let b = block_partial_of(v, bkey, i, j);
            if b.count > 0 {
                blocks.push(b);
            }
            i = j;
        }
        BlockMoments { blocks }
    }

    /// Recomputes the listed blocks' partials from `v` (strictly ascending
    /// block keys; `v` must hold the described vector's chunks for those
    /// blocks — the full vector, or a fragment restricted to them). Blocks
    /// not listed keep their retained bits untouched; a listed block that
    /// came out empty leaves the directory. After the call,
    /// [`BlockMoments::fold`] equals a cold [`BlockMoments::of`] of the
    /// patched vector, bit for bit.
    pub fn refresh(&mut self, v: &ProbVector, block_keys: &[u32]) {
        debug_assert!(
            block_keys.windows(2).all(|w| w[0] < w[1]),
            "block keys not strictly ascending"
        );
        for &bkey in block_keys {
            let lo = v
                .keys
                .partition_point(|&k| (k >> SUM_BLOCK_KEY_SHIFT) < bkey);
            let hi = v
                .keys
                .partition_point(|&k| (k >> SUM_BLOCK_KEY_SHIFT) <= bkey);
            let fresh = (lo < hi)
                .then(|| block_partial_of(v, bkey, lo, hi))
                .filter(|b| b.count > 0);
            match self.blocks.binary_search_by_key(&bkey, |b| b.key) {
                Ok(p) => match fresh {
                    Some(b) => self.blocks[p] = b,
                    None => {
                        self.blocks.remove(p);
                    }
                },
                Err(p) => {
                    if let Some(b) = fresh {
                        self.blocks.insert(p, b);
                    }
                }
            }
        }
    }

    /// Folds the retained partials into `(esup, var, count)` — bit-identical
    /// to [`ProbVector::moments`] (plus the nonzero count) of the vector
    /// the partials describe.
    pub fn fold(&self) -> (f64, f64, usize) {
        debug_assert!(
            self.blocks.windows(2).all(|w| w[0].key < w[1].key),
            "blocks out of order"
        );
        let (mut esup, mut var, mut count) = (0.0f64, 0.0f64, 0usize);
        for b in &self.blocks {
            for s in 0..SUM_STRIPES {
                esup += b.esup[s];
            }
            for s in 0..SUM_STRIPES {
                var += b.var[s];
            }
            count += b.count as usize;
        }
        (esup, var, count)
    }

    /// Heap bytes of the retained partials — counted into a memo's
    /// `peak_memo_bytes` contribution alongside the vector it describes.
    pub fn mem_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<BlockPartial>()
    }
}

/// One block's stripes accumulated from `v`'s chunk range `[i, j)` (all
/// chunks of block `key`), in the exact tid-ascending visit order of
/// [`ProbVector::moments`].
fn block_partial_of(v: &ProbVector, key: u32, i: usize, j: usize) -> BlockPartial {
    let mut b = BlockPartial::zero(key);
    for c in i..j {
        let lanes = &v.lanes[v.start(c)..v.end(c)];
        if lanes.len() == CHUNK_LANES {
            // Positional zeros contribute exactly 0.0 — a no-op.
            for (t, &q) in lanes.iter().enumerate() {
                b.add(t as u32, q);
            }
        } else {
            let mut m = v.masks[c];
            let mut idx = 0usize;
            while m != 0 {
                let t = m.trailing_zeros();
                m &= m - 1;
                b.add(t, lanes[idx]);
                idx += 1;
            }
        }
    }
    b
}

/// [`StatSink`] that retains every block's striped partials as it folds —
/// how the diffset engine obtains a child's [`BlockMoments`] from one
/// [`ProbVector::diff_extend_blocks_into`] pass without materializing the
/// child vector. The recorded partials are bit-identical to
/// [`BlockMoments::of`] of the materialized child: the kernel's visit
/// order within each block is tid-ascending and zero products are stripe
/// no-ops, exactly as in the from-vector accumulation.
struct BlockRecorder {
    blocks: Vec<BlockPartial>,
    cur: BlockPartial,
}

impl BlockRecorder {
    fn new() -> Self {
        BlockRecorder {
            blocks: Vec::new(),
            cur: BlockPartial::zero(0),
        }
    }

    #[inline(always)]
    fn flush(&mut self) {
        if self.cur.count > 0 {
            self.blocks.push(self.cur);
        }
    }

    fn finish(mut self) -> BlockMoments {
        self.flush();
        BlockMoments {
            blocks: self.blocks,
        }
    }
}

impl StatSink for BlockRecorder {
    #[inline(always)]
    fn enter_chunk(&mut self, key: u32) -> bool {
        let b = key >> SUM_BLOCK_KEY_SHIFT;
        if b != self.cur.key {
            self.flush();
            self.cur = BlockPartial::zero(b);
            return true;
        }
        false
    }

    #[inline(always)]
    fn add(&mut self, lane: u32, q: f64) {
        self.cur.add(lane, q);
    }
}

/// Number of set bits of `mask` strictly below bit `t` — a packed chunk's
/// lane index for tid bit `t`.
#[inline(always)]
fn rank(mask: u64, t: u32) -> usize {
    (mask & ((1u64 << t) - 1)).count_ones() as usize
}

/// First index `≥ from` with `keys[idx] ≥ target` (or `keys.len()`), by
/// exponential probe then binary search — the galloping step: `O(log gap)`
/// rather than the merge-join's `O(gap)`.
fn gallop_to(keys: &[u32], from: usize, target: u32) -> usize {
    let n = keys.len();
    let mut lo = from;
    if lo >= n || keys[lo] >= target {
        return lo;
    }
    // Invariant below: keys[lo] < target.
    let mut step = 1usize;
    let hi = loop {
        match lo.checked_add(step) {
            Some(h) if h < n => {
                if keys[h] >= target {
                    break h;
                }
                lo = h;
                step <<= 1;
            }
            _ => break n,
        }
    };
    // First index in (lo, hi] with keys[idx] ≥ target.
    let mut l = lo + 1;
    let mut r = hi;
    while l < r {
        let mid = l + (r - l) / 2;
        if keys[mid] < target {
            l = mid + 1;
        } else {
            r = mid;
        }
    }
    l
}

/// The nonzero containment probabilities of an itemset over a database, in
/// the adaptive per-chunk representation (see the module docs).
///
/// For a single item this is exactly the item's postings list, so the same
/// type serves both as the column of a [`VerticalIndex`] and as the
/// intersection state threaded through a mining run.
#[derive(Clone, Debug, Default)]
pub struct ProbVector {
    /// Chunk keys (`tid >> 6`), strictly ascending, nonempty chunks only.
    keys: Vec<u32>,
    /// Presence bitmask per chunk (bit `t` = tid `key·64 + t`).
    masks: Vec<u64>,
    /// End offset of each chunk's lanes (`ends[i]` closes chunk `i`;
    /// chunk `i` starts where chunk `i−1` ended).
    ends: Vec<u32>,
    /// Probability lanes: `popcount(mask)` packed values per sparse chunk,
    /// all 64 (0.0 = absent) per dense chunk.
    lanes: Vec<f64>,
    /// Total nonzero entries across all chunks.
    nnz: usize,
}

impl ProbVector {
    /// An empty vector (an itemset contained in no transaction).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector from parallel arrays. `tids` must be strictly
    /// increasing and `probs` entries nonzero; checked in debug builds
    /// only. Each chunk's packed/positional layout is decided as it is
    /// assembled.
    pub fn from_parts(tids: Vec<u32>, probs: Vec<f64>) -> Self {
        debug_assert_eq!(tids.len(), probs.len());
        debug_assert!(tids.windows(2).all(|w| w[0] < w[1]), "tids not sorted");
        debug_assert!(probs.iter().all(|&p| p > 0.0), "zero-prob entry");
        let mut v = ProbVector::default();
        v.lanes.reserve(tids.len());
        let mut vals = [0.0f64; CHUNK_LANES];
        let mut i = 0usize;
        while i < tids.len() {
            let key = tids[i] >> CHUNK_BITS;
            let mut mask = 0u64;
            let mut k = 0usize;
            while i < tids.len() && tids[i] >> CHUNK_BITS == key {
                mask |= 1u64 << (tids[i] & (CHUNK_LANES as u32 - 1));
                vals[k] = probs[i];
                k += 1;
                i += 1;
            }
            v.commit_chunk(key, mask, &vals);
        }
        v
    }

    /// Number of transactions with nonzero containment probability.
    #[inline]
    pub fn len(&self) -> usize {
        self.nnz
    }

    /// True when no transaction can contain the itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nnz == 0
    }

    /// Number of (nonempty) chunks — the vector's directory length.
    pub fn num_chunks(&self) -> usize {
        self.keys.len()
    }

    /// Number of chunks stored positionally (the dense per-chunk regime).
    pub fn dense_chunks(&self) -> usize {
        (0..self.keys.len())
            .filter(|&i| self.end(i) - self.start(i) == CHUNK_LANES)
            .count()
    }

    /// `f64` lanes occupied in memory (diagnostic: `popcount` per packed
    /// chunk, 64 per positional chunk).
    pub fn mem_units(&self) -> usize {
        self.lanes.len()
    }

    /// Heap bytes occupied by the payload: 8 per lane plus 16 per chunk of
    /// directory metadata (key 4 + mask 8 + end offset 4). The
    /// memory-accounting counterpart of [`ProbVector::mem_units`],
    /// comparable with [`DiffVector::mem_bytes`].
    pub fn mem_bytes(&self) -> usize {
        self.lanes.len() * std::mem::size_of::<f64>()
            + self.keys.len()
                * (std::mem::size_of::<u32>()      // key
                    + std::mem::size_of::<u64>()   // mask
                    + std::mem::size_of::<u32>()) // end offset
    }

    /// Predicted [`ProbVector::mem_bytes`] of a vector with `count`
    /// nonzeros over `num_transactions` tids, assuming an even spread —
    /// the estimate memo policies use before materializing (e.g. the
    /// diffset engine's per-node tidset-vs-delta choice).
    pub fn estimate_mem_bytes(count: usize, num_transactions: usize) -> usize {
        if count == 0 {
            return 0;
        }
        let chunks = count.min(num_transactions.div_ceil(CHUNK_LANES)).max(1);
        let lanes = if (count / chunks) * DENSE_CUTOFF_DIVISOR >= CHUNK_LANES {
            chunks * CHUNK_LANES
        } else {
            count
        };
        lanes * std::mem::size_of::<f64>() + chunks * 16
    }

    /// Lane start of chunk `i`.
    #[inline(always)]
    fn start(&self, i: usize) -> usize {
        if i == 0 {
            0
        } else {
            self.ends[i - 1] as usize
        }
    }

    /// Lane end of chunk `i`.
    #[inline(always)]
    fn end(&self, i: usize) -> usize {
        self.ends[i] as usize
    }

    /// Drops all chunks, retaining capacity.
    fn clear(&mut self) {
        self.keys.clear();
        self.masks.clear();
        self.ends.clear();
        self.lanes.clear();
        self.nnz = 0;
    }

    /// Appends one finished chunk, deciding its layout by the per-chunk
    /// cutoff rule. `vals` holds the `popcount(mask)` nonzero
    /// probabilities in ascending tid order; an empty mask is skipped.
    #[inline]
    fn commit_chunk(&mut self, key: u32, mask: u64, vals: &[f64; CHUNK_LANES]) {
        let n = mask.count_ones() as usize;
        if n == 0 {
            return;
        }
        debug_assert!(self.keys.last().is_none_or(|&k| k < key));
        self.keys.push(key);
        self.masks.push(mask);
        if n * DENSE_CUTOFF_DIVISOR >= CHUNK_LANES && n < CHUNK_LANES {
            // Positional: scatter the packed values to their bit positions.
            let start = self.lanes.len();
            self.lanes.resize(start + CHUNK_LANES, 0.0);
            let mut m = mask;
            let mut i = 0usize;
            while m != 0 {
                let t = m.trailing_zeros() as usize;
                m &= m - 1;
                self.lanes[start + t] = vals[i];
                i += 1;
            }
        } else {
            // Packed — or a full chunk, where packed and positional
            // coincide.
            self.lanes.extend_from_slice(&vals[..n]);
        }
        self.ends.push(self.lanes.len() as u32);
        self.nnz += n;
    }

    /// The nonzero `(tid, prob)` pairs in ascending tid order.
    pub fn nonzero(&self) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(self.nnz);
        self.for_each_nonzero(|tid, q| out.push((tid, q)));
        out
    }

    /// The nonzero probabilities in ascending tid order — exactly the input
    /// the exact DP / divide-and-conquer kernels take.
    pub fn nonzero_probs(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.nnz);
        self.for_each_nonzero(|_, q| out.push(q));
        out
    }

    /// Visits every nonzero `(tid, prob)` in ascending tid order.
    #[inline]
    fn for_each_nonzero<F: FnMut(u32, f64)>(&self, mut f: F) {
        for i in 0..self.keys.len() {
            let base = self.keys[i] << CHUNK_BITS;
            let mask = self.masks[i];
            let s = self.start(i);
            let mut m = mask;
            if self.end(i) - s == CHUNK_LANES {
                while m != 0 {
                    let t = m.trailing_zeros();
                    m &= m - 1;
                    f(base | t, self.lanes[s + t as usize]);
                }
            } else {
                let mut idx = s;
                while m != 0 {
                    let t = m.trailing_zeros();
                    m &= m - 1;
                    f(base | t, self.lanes[idx]);
                    idx += 1;
                }
            }
        }
    }

    /// Expected support: `Σ_t q_t`, in the workspace-wide fixed summation
    /// shape — bit-identical to `self.moments().0` and to a horizontal
    /// scan's accumulation.
    pub fn esup(&self) -> f64 {
        self.moments().0
    }

    /// Expected support and variance of `sup(X)` (`Σ q_t (1 − q_t)`),
    /// accumulated in ascending tid order per [`SUM_BLOCK_TIDS`] block.
    pub fn moments(&self) -> (f64, f64) {
        let mut acc = MomentAcc::new();
        for i in 0..self.keys.len() {
            acc.enter_chunk(self.keys[i]);
            let lanes = &self.lanes[self.start(i)..self.end(i)];
            if lanes.len() == CHUNK_LANES {
                // Positional zeros contribute exactly 0.0 — a no-op.
                for (t, &q) in lanes.iter().enumerate() {
                    acc.add(t as u32, q);
                }
            } else {
                let mut m = self.masks[i];
                let mut idx = 0usize;
                while m != 0 {
                    let t = m.trailing_zeros();
                    m &= m - 1;
                    acc.add(t, lanes[idx]);
                    idx += 1;
                }
            }
        }
        let (esup, var, _) = acc.finish();
        (esup, var)
    }

    /// Appends one entry. `tid` must exceed the current maximum. The
    /// containing chunk converts packed → positional the moment it crosses
    /// the per-chunk cutoff, so a push-grown vector's layout matches
    /// [`ProbVector::from_parts`] of the same contents.
    #[inline]
    pub fn push(&mut self, tid: u32, prob: f64) {
        debug_assert!(prob > 0.0, "zero-prob entry");
        let key = tid >> CHUNK_BITS;
        let bit = tid & (CHUNK_LANES as u32 - 1);
        if let Some(&last_key) = self.keys.last() {
            if last_key == key {
                let last = self.keys.len() - 1;
                let mask = self.masks[last];
                debug_assert!(mask >> bit == 0, "tid not strictly increasing");
                self.masks[last] = mask | (1u64 << bit);
                let start = if last == 0 {
                    0
                } else {
                    self.ends[last - 1] as usize
                };
                if self.lanes.len() - start == CHUNK_LANES {
                    // Already positional.
                    self.lanes[start + bit as usize] = prob;
                } else if (mask.count_ones() as usize + 1) >= POSITIONAL_MIN {
                    // Crossed the cutoff: scatter packed lanes to positions.
                    let mut tmp = [0.0f64; CHUNK_LANES];
                    let mut m = mask;
                    let mut idx = start;
                    while m != 0 {
                        let t = m.trailing_zeros() as usize;
                        m &= m - 1;
                        tmp[t] = self.lanes[idx];
                        idx += 1;
                    }
                    tmp[bit as usize] = prob;
                    self.lanes.truncate(start);
                    self.lanes.extend_from_slice(&tmp);
                } else {
                    self.lanes.push(prob);
                }
                self.ends[last] = self.lanes.len() as u32;
                self.nnz += 1;
                return;
            }
            debug_assert!(last_key < key, "tid not strictly increasing");
        }
        self.keys.push(key);
        self.masks.push(1u64 << bit);
        self.lanes.push(prob);
        self.ends.push(self.lanes.len() as u32);
        self.nnz += 1;
    }

    /// Point lookup: the stored probability at `tid`, or `0.0` when the
    /// tid is absent. `O(log chunks)`.
    pub fn get(&self, tid: u32) -> f64 {
        let key = tid >> CHUNK_BITS;
        let bit = tid & (CHUNK_LANES as u32 - 1);
        let Ok(i) = self.keys.binary_search(&key) else {
            return 0.0;
        };
        if self.masks[i] >> bit & 1 == 0 {
            return 0.0;
        }
        let s = self.start(i);
        if self.end(i) - s == CHUNK_LANES {
            self.lanes[s + bit as usize]
        } else {
            self.lanes[s + rank(self.masks[i], bit)]
        }
    }

    /// Point upsert at an arbitrary tid — the delta-maintenance twin of
    /// [`ProbVector::push`]. The touched chunk is re-laid-out under the
    /// same per-chunk cutoff rule as [`ProbVector::from_parts`], so the
    /// layout stays a pure function of the contents: a point-updated
    /// vector is byte-identical to one rebuilt from scratch.
    pub fn insert(&mut self, tid: u32, prob: f64) {
        debug_assert!(prob > 0.0, "zero-prob entry");
        self.set_point(tid, Some(prob));
    }

    /// Point removal at an arbitrary tid; returns whether the tid was
    /// present. Same canonical-layout guarantee as [`ProbVector::insert`];
    /// a chunk whose last entry is removed leaves the directory entirely.
    pub fn remove(&mut self, tid: u32) -> bool {
        self.set_point(tid, None)
    }

    /// Shared splice of [`ProbVector::insert`] / [`ProbVector::remove`]:
    /// extracts the touched chunk to positional form, mutates one lane,
    /// and re-commits it under the canonical cutoff rule, shifting the
    /// directory suffix. `O(total lanes)` per call — window steps touch
    /// few tids, so this stays proportional to the delta times the
    /// posting length.
    fn set_point(&mut self, tid: u32, prob: Option<f64>) -> bool {
        let key = tid >> CHUNK_BITS;
        let bit = tid & (CHUNK_LANES as u32 - 1);
        let (pos, existed) = match self.keys.binary_search(&key) {
            Ok(i) => (i, true),
            Err(i) => (i, false),
        };
        let mut vals = [0.0f64; CHUNK_LANES];
        let mut mask = 0u64;
        let old_start = self.start(pos);
        let mut old_end = old_start;
        if existed {
            mask = self.masks[pos];
            old_end = self.end(pos);
            if old_end - old_start == CHUNK_LANES {
                vals.copy_from_slice(&self.lanes[old_start..old_end]);
            } else {
                let mut m = mask;
                let mut idx = old_start;
                while m != 0 {
                    let t = m.trailing_zeros() as usize;
                    m &= m - 1;
                    vals[t] = self.lanes[idx];
                    idx += 1;
                }
            }
        }
        let had = mask >> bit & 1 == 1;
        match prob {
            Some(p) => {
                vals[bit as usize] = p;
                mask |= 1u64 << bit;
                self.nnz += usize::from(!had);
            }
            None => {
                if !had {
                    return false;
                }
                vals[bit as usize] = 0.0;
                mask &= !(1u64 << bit);
                self.nnz -= 1;
            }
        }
        // Re-commit under the same layout rule as `commit_chunk`.
        let n = mask.count_ones() as usize;
        let mut new_lanes: Vec<f64> = Vec::with_capacity(if n > 0 { CHUNK_LANES } else { 0 });
        if n * DENSE_CUTOFF_DIVISOR >= CHUNK_LANES && n < CHUNK_LANES {
            new_lanes.extend_from_slice(&vals);
        } else {
            let mut m = mask;
            while m != 0 {
                let t = m.trailing_zeros() as usize;
                m &= m - 1;
                new_lanes.push(vals[t]);
            }
        }
        let delta = new_lanes.len() as isize - (old_end - old_start) as isize;
        if existed && n == 0 {
            self.keys.remove(pos);
            self.masks.remove(pos);
            self.ends.remove(pos);
        } else if existed {
            self.masks[pos] = mask;
        } else {
            debug_assert!(n > 0, "inserting produced an empty chunk");
            self.keys.insert(pos, key);
            self.masks.insert(pos, mask);
            // Placeholder; the suffix shift below lands it on the real end.
            self.ends.insert(pos, old_start as u32);
        }
        self.lanes.splice(old_start..old_end, new_lanes);
        for e in &mut self.ends[pos..] {
            *e = (*e as isize + delta) as u32;
        }
        true
    }

    /// Applies a batch of point updates in one pass — the window-step
    /// patch kernel for memoized vectors. `updates` holds `(tid, prob)`
    /// pairs with strictly ascending tids; `prob > 0.0` upserts the entry,
    /// `prob == 0.0` removes it (absent removals are no-ops). Untouched
    /// chunks are bulk-copied; each touched chunk is rebuilt and
    /// re-committed under the canonical cutoff rule, so the patched vector
    /// is **byte-identical** to [`ProbVector::from_parts`] of the updated
    /// contents. Cost is `O(chunks + lanes + updates)` for the whole
    /// batch, versus `O(total lanes)` *per point* for
    /// [`ProbVector::insert`] / [`ProbVector::remove`].
    pub fn apply_tid_delta(&mut self, updates: &[(u32, f64)]) {
        if updates.is_empty() {
            return;
        }
        debug_assert!(
            updates.windows(2).all(|w| w[0].0 < w[1].0),
            "update tids not strictly ascending"
        );
        let mut out = ProbVector::default();
        out.keys.reserve(self.keys.len() + updates.len());
        out.masks.reserve(self.keys.len() + updates.len());
        out.ends.reserve(self.keys.len() + updates.len());
        out.lanes.reserve(self.lanes.len() + updates.len());
        let mut u = 0usize;
        let mut i = 0usize;
        while i < self.keys.len() || u < updates.len() {
            let upd_key = updates.get(u).map(|&(t, _)| t >> CHUNK_BITS);
            if upd_key.is_none_or(|k| i < self.keys.len() && self.keys[i] < k) {
                // Bulk-copy the run of untouched chunks below the next
                // update's chunk (their canonical layouts carry over).
                let stop = upd_key.unwrap_or(u32::MAX);
                let mut j = i;
                while j < self.keys.len() && self.keys[j] < stop {
                    j += 1;
                }
                let base = self.start(i);
                let lane_base = out.lanes.len();
                out.keys.extend_from_slice(&self.keys[i..j]);
                out.masks.extend_from_slice(&self.masks[i..j]);
                out.lanes
                    .extend_from_slice(&self.lanes[base..self.end(j - 1)]);
                for c in i..j {
                    out.ends.push((self.end(c) - base + lane_base) as u32);
                    out.nnz += self.masks[c].count_ones() as usize;
                }
                i = j;
                continue;
            }
            // Rebuild the chunk at the next update key (existing or fresh).
            let key = upd_key.unwrap_or_default();
            let mut vals = [0.0f64; CHUNK_LANES];
            let mut mask = 0u64;
            if i < self.keys.len() && self.keys[i] == key {
                let (s, e) = (self.start(i), self.end(i));
                mask = self.masks[i];
                if e - s == CHUNK_LANES {
                    vals.copy_from_slice(&self.lanes[s..e]);
                } else {
                    let mut m = mask;
                    let mut idx = s;
                    while m != 0 {
                        let t = m.trailing_zeros() as usize;
                        m &= m - 1;
                        vals[t] = self.lanes[idx];
                        idx += 1;
                    }
                }
                i += 1;
            }
            while u < updates.len() && updates[u].0 >> CHUNK_BITS == key {
                let (tid, p) = updates[u];
                let bit = (tid & (CHUNK_LANES as u32 - 1)) as usize;
                if p > 0.0 {
                    vals[bit] = p;
                    mask |= 1u64 << bit;
                } else {
                    vals[bit] = 0.0;
                    mask &= !(1u64 << bit);
                }
                u += 1;
            }
            let n = mask.count_ones() as usize;
            if n > 0 {
                // `commit_chunk` takes the nonzeros packed ascending.
                let mut packed = [0.0f64; CHUNK_LANES];
                let mut m = mask;
                let mut k = 0usize;
                while m != 0 {
                    let t = m.trailing_zeros() as usize;
                    m &= m - 1;
                    packed[k] = vals[t];
                    k += 1;
                }
                out.commit_chunk(key, mask, &packed);
            }
        }
        *self = out;
    }

    /// Removes one tid from a memoized vector — the single-point twin of
    /// [`ProbVector::apply_tid_delta`] for expiry-only window steps.
    /// Returns whether the tid was present; same canonical-layout
    /// guarantee as [`ProbVector::remove`].
    pub fn retract_tid(&mut self, tid: u32) -> bool {
        self.remove(tid)
    }

    /// The vector restricted to the listed summation blocks (strictly
    /// ascending keys): the chunks whose tids fall in those blocks,
    /// bulk-copied with their global keys and canonical layouts. Feeds
    /// [`BlockMoments::refresh`] when the full child vector is not
    /// materialized (the diffset memo's stats patch).
    pub fn restrict_to_blocks(&self, block_keys: &[u32]) -> ProbVector {
        debug_assert!(
            block_keys.windows(2).all(|w| w[0] < w[1]),
            "block keys not strictly ascending"
        );
        let mut out = ProbVector::default();
        for &bkey in block_keys {
            let lo = self
                .keys
                .partition_point(|&k| (k >> SUM_BLOCK_KEY_SHIFT) < bkey);
            let hi = self
                .keys
                .partition_point(|&k| (k >> SUM_BLOCK_KEY_SHIFT) <= bkey);
            if lo == hi {
                continue;
            }
            let base = self.start(lo);
            let lane_base = out.lanes.len();
            out.keys.extend_from_slice(&self.keys[lo..hi]);
            out.masks.extend_from_slice(&self.masks[lo..hi]);
            out.lanes
                .extend_from_slice(&self.lanes[base..self.end(hi - 1)]);
            for c in lo..hi {
                out.ends.push((self.end(c) - base + lane_base) as u32);
                out.nnz += self.masks[c].count_ones() as usize;
            }
        }
        out
    }

    /// Releases excess capacity (intersection outputs reserve for the
    /// worst case; long-lived memoized vectors should not keep it).
    pub fn shrink_to_fit(&mut self) {
        self.keys.shrink_to_fit();
        self.masks.shrink_to_fit();
        self.ends.shrink_to_fit();
        self.lanes.shrink_to_fit();
    }

    /// An exactly-sized deep copy (clone allocates to length, not
    /// capacity) — what [`ScratchSpace::export`] hands to memos. Copies
    /// only the live lane prefix, excluding any scratch high-water slack
    /// a [`ChunkWriter`] left past `ends.last()`.
    fn clone_exact(&self) -> ProbVector {
        let live = self.ends.last().map_or(0, |&e| e as usize);
        ProbVector {
            keys: self.keys.clone(),
            masks: self.masks.clone(),
            ends: self.ends.clone(),
            lanes: self.lanes[..live].to_vec(),
            nnz: self.nnz,
        }
    }

    /// Drops the lane high-water slack a [`ChunkWriter`] may have left
    /// past `ends.last()` — called before a kernel-built vector escapes
    /// as an owned value.
    fn trim_lane_slack(&mut self) {
        let live = self.ends.last().map_or(0, |&e| e as usize);
        self.lanes.truncate(live);
    }

    /// The statistics of [`ProbVector::intersect`]'s result —
    /// `(esup, variance, nonzero count)` — computed **without
    /// materializing** the result: no allocation, no stores. Support
    /// engines use this for candidates a pushdown threshold may rule out;
    /// the values are bit-identical to `self.intersect(other).moments()`
    /// (zero products contribute exactly `0.0` to either accumulator), and
    /// the path is the same chunk-directory merge — galloping and bitmask
    /// fast paths included — as materialization.
    pub fn intersect_stats(&self, other: &ProbVector) -> (f64, f64, usize) {
        intersect_kernel::<true, false, false>(self, other, None, true, None)
    }

    /// [`ProbVector::intersect_stats`] that may stop early once the result
    /// is provably below `min_esup`. `self_mass` must be an upper bound on
    /// the sum of `self`'s probabilities (its own expected support — which
    /// support engines have on record for every memoized prefix). Because
    /// every probability of `other` is ≤ 1, the products not yet visited
    /// can add at most `self_mass − consumed`; at each summation-block
    /// boundary the kernel compares the folded partial plus that remainder
    /// (plus a rounding-slack margin) against the threshold and bails when
    /// the result cannot reach it.
    ///
    /// The return value is **decision-equivalent**, not value-equivalent:
    /// whenever the true esup is ≥ `min_esup` no bail can fire and the
    /// tuple is bit-identical to [`ProbVector::intersect_stats`]; when a
    /// bail fires the partial sums returned are themselves < `min_esup`,
    /// so a threshold screen reaches the same verdict. Bail points are a
    /// pure function of the operands — thread count and evaluation order
    /// never change them.
    pub fn intersect_stats_bounded(
        &self,
        other: &ProbVector,
        self_mass: f64,
        min_esup: f64,
    ) -> (f64, f64, usize) {
        intersect_kernel::<true, false, true>(self, other, None, true, Some((self_mass, min_esup)))
    }

    /// [`ProbVector::intersect_stats`] with the directory fast paths
    /// (direct indexing, galloping) disabled — the plain merge-join at any
    /// length ratio. Exists only so benchmarks can measure the fast-path
    /// cutoffs; results are identical.
    #[doc(hidden)]
    pub fn intersect_stats_merge_join(&self, other: &ProbVector) -> (f64, f64, usize) {
        intersect_kernel::<true, false, false>(self, other, None, false, None)
    }

    /// The U-Eclat step: intersects with another vector, multiplying
    /// probabilities on matching tids (`self` is the prefix, `other` the
    /// appended item's postings — multiplication order is prefix × item).
    /// Each output chunk's layout is chosen adaptively as it is committed.
    pub fn intersect(&self, other: &ProbVector) -> ProbVector {
        let mut out = ProbVector::default();
        intersect_kernel::<true, true, false>(self, other, Some(&mut out), true, None);
        out.trim_lane_slack();
        out
    }

    /// [`ProbVector::intersect`] fused with [`ProbVector::intersect_stats`],
    /// writing the result into `scratch` instead of allocating: returns the
    /// result's `(esup, variance, nonzero count)` — bit-identical to both
    /// `intersect_stats` and `intersect(..).moments()` — and leaves the
    /// result vector (same per-chunk layout `intersect` would pick) in the
    /// scratch buffers for [`ScratchSpace::export`]. Candidates a threshold
    /// rules out therefore cost no allocation at all.
    pub fn intersect_into(
        &self,
        other: &ProbVector,
        scratch: &mut ScratchSpace,
    ) -> (f64, f64, usize) {
        intersect_kernel::<true, true, false>(self, other, Some(&mut scratch.out), true, None)
    }

    /// [`ProbVector::intersect_into`] without the statistics: materializes
    /// the intersection into `scratch` (bit-identical vector, same adaptive
    /// per-chunk layout) but skips the moment accumulation entirely.
    ///
    /// This is the second half of the engines' pushdown protocol: a
    /// candidate's moments come from a stats-only pass
    /// ([`ProbVector::intersect_stats`] /
    /// [`ProbVector::intersect_stats_bounded`]), and only if those clear
    /// the threshold is the vector needed — re-accumulating the sums the
    /// caller already holds would be pure waste. Run immediately after the
    /// stats pass the operands are still cache-hot, so the materialization
    /// costs little more than the stores.
    pub fn intersect_materialize_into(&self, other: &ProbVector, scratch: &mut ScratchSpace) {
        intersect_kernel::<false, true, false>(self, other, Some(&mut scratch.out), true, None);
    }

    /// [`ProbVector::intersect_into`] that may stop early once the result
    /// is provably below `min_esup` — the materializing twin of
    /// [`ProbVector::intersect_stats_bounded`] and the engines' pushdown
    /// workhorse: one walk yields a candidate's moments *and* its vector,
    /// with hopeless candidates cut off at the first summation block that
    /// rules them out.
    ///
    /// Decision equivalence is exactly as for
    /// [`ProbVector::intersect_stats_bounded`]: whenever the true esup is
    /// ≥ `min_esup` no bail can fire, the returned tuple is bit-identical
    /// to [`ProbVector::intersect_into`]'s and the scratch holds the
    /// complete result vector. When a bail fires the returned partial sums
    /// are themselves < `min_esup` — the caller will discard the candidate
    /// — and the scratch contents are unspecified (a prefix of the result;
    /// callers must not export them).
    pub fn intersect_into_bounded(
        &self,
        other: &ProbVector,
        scratch: &mut ScratchSpace,
        self_mass: f64,
        min_esup: f64,
    ) -> (f64, f64, usize) {
        intersect_kernel::<true, true, true>(
            self,
            other,
            Some(&mut scratch.out),
            true,
            Some((self_mass, min_esup)),
        )
    }
}

impl PartialEq for ProbVector {
    /// Semantic equality: same nonzero `(tid, prob)` pairs. (The chunk
    /// layout is itself canonical — a pure function of the contents — but
    /// comparing pairs keeps the contract representation-agnostic.)
    fn eq(&self, other: &Self) -> bool {
        self.nnz == other.nnz && self.nonzero() == other.nonzero()
    }
}

/// One chunk-pair visit of the intersection kernel, specialized on each
/// side's layout (`DA`/`DB` positional) and on which outputs it must
/// produce (`STATS` moments, `MAT` a result chunk). Positional lanes hold
/// exactly `+0.0` for absent tids and `x + 0.0` is a bitwise no-op, so:
///
/// * positional × positional multiplies all 64 lane pairs straight through
///   and accumulates them in the striped shape as eight rows of
///   [`SUM_STRIPES`]-wide adds — stripe `s` receives lanes `≡ s (mod 8)` in
///   ascending order, exactly the scalar visit order, but the row loop is a
///   plain vertical vector add the compiler auto-vectorizes (the stripes
///   *are* the SIMD lanes);
/// * packed × positional iterates only the packed side's bits with a
///   *sequential* packed-lane cursor (no `rank` popcounts), reading the
///   positional side directly by bit position;
/// * packed × packed visits the bits of `mask_a & mask_b`, ranking both
///   sides.
///
/// Returns `true` when `vals` holds the result chunk in *lane* form (all 64
/// products, `0.0` = absent — the positional-×-positional fast path);
/// `false` when it holds the nonzero products packed in ascending tid
/// order. When materializing, `vals` is the [`ChunkWriter::window`] and
/// [`ChunkWriter::commit_in_place`] finalizes whichever form was produced.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn pair_chunk<const DA: bool, const DB: bool, const MAT: bool, const STATS: bool>(
    ma: u64,
    mb: u64,
    la: &[f64],
    lb: &[f64],
    acc: &mut MomentAcc,
    vals: &mut [f64; CHUNK_LANES],
    out_mask: &mut u64,
) -> bool {
    let mut k = 0usize;
    if DA && DB {
        // Both positional: products for all 64 lanes (absent lanes yield
        // exactly +0.0, which every accumulation below treats as a no-op).
        let (la, lb): (&[f64; CHUNK_LANES], &[f64; CHUNK_LANES]) =
            (la.try_into().unwrap(), lb.try_into().unwrap());
        for t in 0..CHUNK_LANES {
            vals[t] = la[t] * lb[t];
        }
        if STATS {
            for row in vals.chunks_exact(SUM_STRIPES) {
                for (s, &q) in row.iter().enumerate() {
                    acc.blk_esup[s] += q;
                    acc.blk_var[s] += q * (1.0 - q);
                }
            }
        }
        if STATS || MAT {
            let mut nonzero = 0usize;
            for &v in vals.iter() {
                nonzero += (v > 0.0) as usize;
            }
            if STATS {
                acc.count += nonzero;
            }
            if MAT {
                let both = ma & mb;
                *out_mask = if nonzero == both.count_ones() as usize {
                    // No product underflowed to zero — the common case.
                    both
                } else {
                    let mut m = 0u64;
                    for (t, &v) in vals.iter().enumerate() {
                        m |= ((v > 0.0) as u64) << t;
                    }
                    m
                };
            }
        }
        return true;
    }
    if DA {
        // `lb` holds exactly `popcount(mb)` values, one per bit of `mb` in
        // ascending order — driving the loop off the packed slice elides
        // its bounds check, and `t & 63` proves the positional index in
        // range.
        let la: &[f64; CHUNK_LANES] = la.try_into().unwrap();
        let mut m = mb;
        for &qb in lb {
            let t = m.trailing_zeros();
            m &= m - 1;
            let q = la[(t & 63) as usize] * qb;
            if STATS {
                acc.add(t, q);
            }
            if MAT && q > 0.0 {
                vals[k & (CHUNK_LANES - 1)] = q;
                k += 1;
                *out_mask |= 1u64 << t;
            }
        }
    } else if DB {
        let lb: &[f64; CHUNK_LANES] = lb.try_into().unwrap();
        let mut m = ma;
        for &qa in la {
            let t = m.trailing_zeros();
            m &= m - 1;
            let q = qa * lb[(t & 63) as usize];
            if STATS {
                acc.add(t, q);
            }
            if MAT && q > 0.0 {
                vals[k & (CHUNK_LANES - 1)] = q;
                k += 1;
                *out_mask |= 1u64 << t;
            }
        }
    } else {
        let mut m = ma & mb;
        while m != 0 {
            let t = m.trailing_zeros();
            m &= m - 1;
            let q = la[rank(ma, t)] * lb[rank(mb, t)];
            if STATS {
                acc.add(t, q);
            }
            if MAT && q > 0.0 {
                vals[k & (CHUNK_LANES - 1)] = q;
                k += 1;
                *out_mask |= 1u64 << t;
            }
        }
    }
    false
}

/// The first chunk key of `v` when its chunk directory is *contiguous*
/// (every key in `[first, first + num_chunks)` present) — the shape of any
/// vector over a database dense enough that each 64-tid window keeps at
/// least one nonzero, e.g. every vector of the dense UApriori anchor. A
/// contiguous side needs no directory merge at all: the partner's key
/// addresses its chunk index directly as `key − first`.
#[inline]
fn contiguous_span(v: &ProbVector) -> Option<u32> {
    let (Some(&first), Some(&last)) = (v.keys.first(), v.keys.last()) else {
        return None;
    };
    ((last - first) as usize + 1 == v.keys.len()).then_some(first)
}

/// Absolute slack on the early-exit bound of
/// [`ProbVector::intersect_stats_bounded`] and on the support engines'
/// zone-map shard prechecks: the prefix mass handed in and the partial
/// sums are rounded `f64` sums (error ≲ 1e-10 at this scale), so the bail
/// comparison keeps a margin several orders above that — a bail must never
/// fire for a candidate the exact sums would keep.
pub const BOUND_SLACK: f64 = 1e-6;

/// Index-addressed output cursor for the materializing kernels.
///
/// [`ProbVector::commit_chunk`]'s `Vec` pushes cost a capacity-check
/// branch per directory array per chunk plus a variable-length `memcpy`
/// call for the lane payload — at ~300 output chunks per candidate on the
/// dense anchor that machinery measured as expensive as the arithmetic.
/// The writer instead resizes the four output arrays *once* to their
/// upper bounds (chunks ≤ the shorter directory, lanes ≤ 64 per chunk —
/// scratch buffers retain the headroom across candidates, so steady-state
/// resizes are no-ops), writes through plain indexed stores, and
/// [`ChunkWriter::finish`] truncates down to what was actually written.
/// Stale content beyond the cursors is never observable: every commit
/// overwrites its slot before advancing, and `finish` restores the
/// length invariants.
struct ChunkWriter<'a> {
    o: &'a mut ProbVector,
    nk: usize,
    nl: usize,
    nnz: usize,
}

impl<'a> ChunkWriter<'a> {
    fn new(o: &'a mut ProbVector, kcap: usize) -> Self {
        if o.keys.len() < kcap {
            o.keys.resize(kcap, 0);
            o.masks.resize(kcap, 0);
            o.ends.resize(kcap, 0);
        }
        let lcap = kcap * CHUNK_LANES;
        if o.lanes.len() < lcap {
            o.lanes.resize(lcap, 0.0);
        }
        ChunkWriter {
            o,
            nk: 0,
            nl: 0,
            nnz: 0,
        }
    }

    /// Writes the shared directory entry; returns `n`, or 0 to skip.
    #[inline(always)]
    fn entry(&mut self, key: u32, mask: u64) -> usize {
        let n = mask.count_ones() as usize;
        if n == 0 {
            return 0;
        }
        self.o.keys[self.nk] = key;
        self.o.masks[self.nk] = mask;
        n
    }

    #[inline(always)]
    fn seal(&mut self, n: usize) {
        self.o.ends[self.nk] = self.nl as u32;
        self.nk += 1;
        self.nnz += n;
    }

    /// The next 64 lanes of the output array, handed to [`pair_chunk`] as
    /// its value buffer so products are stored *directly* at their final
    /// location — no intermediate stack buffer and no copy in the commit.
    /// Always in bounds: at most one output chunk is committed per matched
    /// directory pair, so before chunk `nk` commits `nl ≤ 64·nk <
    /// 64·kcap ≤ lanes.len()`.
    #[inline(always)]
    fn window(&mut self) -> &mut [f64; CHUNK_LANES] {
        (&mut self.o.lanes[self.nl..self.nl + CHUNK_LANES])
            .try_into()
            .unwrap()
    }

    /// Finalizes a chunk whose values [`pair_chunk`] produced directly in
    /// this writer's [`ChunkWriter::window`]. The kernels' two output forms
    /// already coincide with the two stored layouts — packed arms emit the
    /// nonzero products packed in ascending tid order, the
    /// positional × positional arm emits all 64 lanes — so when the
    /// adaptive layout rule (same as [`ProbVector::commit_chunk`]) picks
    /// the matching one, commit is just the directory stores and a cursor
    /// bump. The two mismatch cases reshape in place.
    #[inline(always)]
    fn commit_in_place(&mut self, key: u32, mask: u64, lanes_form: bool) {
        let n = self.entry(key, mask);
        if n == 0 {
            return;
        }
        let positional = n * DENSE_CUTOFF_DIVISOR >= CHUNK_LANES && n < CHUNK_LANES;
        let base = self.nl;
        match (lanes_form, positional) {
            (true, true) => self.nl += CHUNK_LANES,
            (false, false) => self.nl += n,
            (true, false) => {
                // Compact lane form down to packed. Moving the k-th set
                // bit's lane `t ≥ k` forward to slot `k` never reads a
                // slot an earlier step wrote, so the move is in-place-safe.
                let mut m = mask;
                for k in 0..n {
                    let t = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.o.lanes[base + k] = self.o.lanes[base + (t & (CHUNK_LANES - 1))];
                }
                self.nl += n;
            }
            (false, true) => {
                // Expand packed to positional: the scatter moves values
                // right and would collide in place, so stage through a
                // stack buffer. Only skew-kernel chunks dense enough for
                // the positional layout (n ≥ 16) take this copy.
                let mut tmp = [0.0f64; CHUNK_LANES];
                tmp[..n].copy_from_slice(&self.o.lanes[base..base + n]);
                let dst = &mut self.o.lanes[base..base + CHUNK_LANES];
                dst.fill(0.0);
                let mut m = mask;
                for &v in &tmp[..n] {
                    let t = m.trailing_zeros() as usize;
                    m &= m - 1;
                    dst[t & (CHUNK_LANES - 1)] = v;
                }
                self.nl += CHUNK_LANES;
            }
        }
        self.seal(n);
    }

    /// Truncates the directory down to the written prefix. The lane array
    /// deliberately keeps its high-water length: truncating it would make
    /// the next candidate's [`ChunkWriter::new`] re-zero the tail on every
    /// resize (~134 KB per candidate on the dense anchor). The trailing
    /// slack past `ends.last()` is never read — every consumer walks lanes
    /// through the `start(i)..end(i)` ranges — and
    /// [`ProbVector::clone_exact`] / [`ProbVector::trim_lane_slack`] cut it
    /// off before a vector escapes into a memo or the public API.
    fn finish(self) {
        self.o.keys.truncate(self.nk);
        self.o.masks.truncate(self.nk);
        self.o.ends.truncate(self.nk);
        debug_assert!(self.o.lanes.len() >= self.nl);
        self.o.nnz = self.nnz;
    }
}

/// One matched chunk pair of the intersection walk: dispatch to the
/// layout-specialized [`pair_chunk`], then commit the result chunk (in
/// whichever of the two value forms the kernel produced) when
/// materializing. Kept a free function marked `inline(always)` so each
/// directory walker gets a branch-predictable inlined copy — at ~10
/// nonzeros per packed chunk, per-chunk call overhead is as expensive as
/// the arithmetic itself.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn visit_chunk<const STATS: bool, const MAT: bool>(
    key: u32,
    ma: u64,
    mb: u64,
    la: &[f64],
    lb: &[f64],
    acc: &mut MomentAcc,
    w: &mut Option<ChunkWriter<'_>>,
    vals: &mut [f64; CHUNK_LANES],
) {
    if ma & mb == 0 {
        return;
    }
    if STATS {
        acc.enter_chunk(key);
    }
    let mut out_mask = 0u64;
    if MAT {
        let Some(w) = w.as_mut() else {
            debug_assert!(false, "materializing walk without a writer");
            return;
        };
        // Products land directly in the output lane array; commit then
        // only writes the directory entry (reshaping in the rare cases
        // where the kernel's output form loses the adaptive layout vote).
        let lanes_form =
            dispatch_pair::<MAT, STATS>(ma, mb, la, lb, acc, w.window(), &mut out_mask);
        w.commit_in_place(key, out_mask, lanes_form);
    } else {
        dispatch_pair::<MAT, STATS>(ma, mb, la, lb, acc, vals, &mut out_mask);
    }
}

/// Layout dispatch for one chunk pair: pick the [`pair_chunk`]
/// instantiation matching each side's stored form.
#[inline(always)]
fn dispatch_pair<const MAT: bool, const STATS: bool>(
    ma: u64,
    mb: u64,
    la: &[f64],
    lb: &[f64],
    acc: &mut MomentAcc,
    vals: &mut [f64; CHUNK_LANES],
    out_mask: &mut u64,
) -> bool {
    match (la.len() == CHUNK_LANES, lb.len() == CHUNK_LANES) {
        (true, true) => pair_chunk::<true, true, MAT, STATS>(ma, mb, la, lb, acc, vals, out_mask),
        (true, false) => pair_chunk::<true, false, MAT, STATS>(ma, mb, la, lb, acc, vals, out_mask),
        (false, true) => pair_chunk::<false, true, MAT, STATS>(ma, mb, la, lb, acc, vals, out_mask),
        (false, false) => {
            pair_chunk::<false, false, MAT, STATS>(ma, mb, la, lb, acc, vals, out_mask)
        }
    }
}

/// Shared engine of `intersect` / `intersect_into` / `intersect_stats`:
/// join the chunk directories (direct-indexed when one side is contiguous,
/// galloping when skewed, scalar merge otherwise), visit common bits, fuse
/// the stats, and — when `out` is given — commit adaptive output chunks.
///
/// `bound` is `Some((self_mass, min_esup))` for the bounded stats pass: at
/// each summation-block boundary (where the striped partials have just
/// folded, so `acc.esup` is exact), the kernel bails once the folded
/// partial plus `self_mass − consumed` — an upper bound on what the
/// remaining products can still add, since every `other` probability is
/// ≤ 1 — proves the result below `min_esup`. Until a bail fires the
/// computation is *identical* to the unbounded kernel, so results are
/// bit-equal whenever the true esup meets the threshold.
fn intersect_kernel<const STATS: bool, const MAT: bool, const BOUNDED: bool>(
    a: &ProbVector,
    b: &ProbVector,
    out: Option<&mut ProbVector>,
    allow_fast: bool,
    bound: Option<(f64, f64)>,
) -> (f64, f64, usize) {
    debug_assert!(STATS || !BOUNDED, "bounded runs need statistics");
    debug_assert_eq!(MAT, out.is_some());
    debug_assert_eq!(BOUNDED, bound.is_some());
    let kcap = a.keys.len().min(b.keys.len());
    let mut w: Option<ChunkWriter<'_>> = out.map(|o| ChunkWriter::new(o, kcap));
    let mut acc = MomentAcc::new();
    let mut vals = [0.0f64; CHUNK_LANES];
    // Mass of `a` (the prefix side) consumed so far — only maintained for
    // bounded runs. Chunks skipped because `b` has no partner are *not*
    // counted, which only weakens (never invalidates) the bail bound.
    let mut consumed = 0.0f64;
    let ka: &[u32] = &a.keys;
    let kb: &[u32] = &b.keys;
    let mut handle = |i: usize,
                      j: usize,
                      acc: &mut MomentAcc,
                      w: &mut Option<ChunkWriter<'_>>,
                      consumed: &mut f64| {
        if BOUNDED {
            *consumed += a.lanes[a.start(i)..a.end(i)].iter().sum::<f64>();
        }
        visit_chunk::<STATS, MAT>(
            ka[i],
            a.masks[i],
            b.masks[j],
            &a.lanes[a.start(i)..a.end(i)],
            &b.lanes[b.start(j)..b.end(j)],
            acc,
            w,
            &mut vals,
        );
    };
    // Bail check, run before a chunk is handled (and before its mass is
    // counted as consumed): entering its block folds the stripes (a
    // bitwise no-op for untouched blocks), after which `acc.esup` is the
    // exact partial. Returns true when the bounded run can stop.
    let check_bail = |key: u32, acc: &mut MomentAcc, consumed: f64| -> bool {
        if !BOUNDED {
            return false;
        }
        if let Some((mass, thr)) = bound {
            if acc.enter_chunk(key) && acc.esup + (mass - consumed) + BOUND_SLACK < thr {
                return true;
            }
        }
        false
    };
    let moments = 'walk: {
        if let (true, Some(a0), Some(b0)) = (allow_fast, contiguous_span(a), contiguous_span(b)) {
            // Both directories contiguous — the shape of every operand pair on
            // a dense database: the overlap of the two key ranges is walked
            // directly, chunk indices and lane cursors advancing in lockstep
            // with no directory loads, searches or merges at all.
            let lo = a0.max(b0);
            let hi = (a0 + ka.len() as u32).min(b0 + kb.len() as u32);
            if lo < hi {
                let (i0, j0) = ((lo - a0) as usize, (lo - b0) as usize);
                let mut la_s = a.start(i0);
                let mut lb_s = b.start(j0);
                for step in 0..(hi - lo) as usize {
                    let (i, j) = (i0 + step, j0 + step);
                    let key = lo + step as u32;
                    if check_bail(key, &mut acc, consumed) {
                        break 'walk acc.finish();
                    }
                    let (la_e, lb_e) = (a.ends[i] as usize, b.ends[j] as usize);
                    if BOUNDED {
                        consumed += a.lanes[la_s..la_e].iter().sum::<f64>();
                    }
                    visit_chunk::<STATS, MAT>(
                        key,
                        a.masks[i],
                        b.masks[j],
                        &a.lanes[la_s..la_e],
                        &b.lanes[lb_s..lb_e],
                        &mut acc,
                        &mut w,
                        &mut vals,
                    );
                    la_s = la_e;
                    lb_s = lb_e;
                }
            }
            break 'walk acc.finish();
        }
        if allow_fast && contiguous_span(b).is_some_and(|_| ka.len() <= kb.len() * GALLOP_RATIO) {
            // `b`'s directory is contiguous: walk `a` and address `b`'s chunk
            // index directly — no merge, no search.
            let k0 = contiguous_span(b).unwrap();
            let kend = k0 + kb.len() as u32;
            let start = ka.partition_point(|&k| k < k0);
            for (i, &key) in ka.iter().enumerate().skip(start) {
                if key >= kend {
                    break;
                }
                if check_bail(key, &mut acc, consumed) {
                    break 'walk acc.finish();
                }
                handle(i, (key - k0) as usize, &mut acc, &mut w, &mut consumed);
            }
        } else if allow_fast
            && contiguous_span(a).is_some_and(|_| kb.len() <= ka.len() * GALLOP_RATIO)
        {
            let k0 = contiguous_span(a).unwrap();
            let kend = k0 + ka.len() as u32;
            let start = kb.partition_point(|&k| k < k0);
            for (j, &key) in kb.iter().enumerate().skip(start) {
                if key >= kend {
                    break;
                }
                if check_bail(key, &mut acc, consumed) {
                    break 'walk acc.finish();
                }
                handle((key - k0) as usize, j, &mut acc, &mut w, &mut consumed);
            }
        } else if allow_fast && ka.len() * GALLOP_RATIO < kb.len() {
            // `a` is the short side: gallop `b` to each of `a`'s keys.
            let mut j = 0usize;
            for (i, &key) in ka.iter().enumerate() {
                j = gallop_to(kb, j, key);
                if j == kb.len() {
                    break;
                }
                if kb[j] == key {
                    if check_bail(key, &mut acc, consumed) {
                        break 'walk acc.finish();
                    }
                    handle(i, j, &mut acc, &mut w, &mut consumed);
                    j += 1;
                }
            }
        } else if allow_fast && kb.len() * GALLOP_RATIO < ka.len() {
            let mut i = 0usize;
            for (j, &key) in kb.iter().enumerate() {
                i = gallop_to(ka, i, key);
                if i == ka.len() {
                    break;
                }
                if ka[i] == key {
                    if check_bail(key, &mut acc, consumed) {
                        break 'walk acc.finish();
                    }
                    handle(i, j, &mut acc, &mut w, &mut consumed);
                    i += 1;
                }
            }
        } else {
            // Balanced: scalar merge-join over the chunk directories.
            let (mut i, mut j) = (0usize, 0usize);
            while i < ka.len() && j < kb.len() {
                let (x, y) = (ka[i], kb[j]);
                if x < y {
                    i += 1;
                } else if y < x {
                    j += 1;
                } else {
                    if check_bail(x, &mut acc, consumed) {
                        break 'walk acc.finish();
                    }
                    handle(i, j, &mut acc, &mut w, &mut consumed);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc.finish()
    };
    if let Some(w) = w {
        w.finish();
    }
    moments
}

/// Reusable, capacity-retaining buffers backing the zero-allocation
/// `*_into` kernels ([`ProbVector::intersect_into`],
/// [`ProbVector::diff_extend_into`]).
///
/// One `ScratchSpace` belongs to one worker thread (they are `Send` but
/// deliberately not shared): the buffers grow to the run's high-water mark
/// once, and every kernel call after that reuses them without touching the
/// allocator. Results are read back either in place
/// ([`ScratchSpace::dropped`]) or exported as exactly-sized owned values
/// ([`ScratchSpace::export`], [`ScratchSpace::export_diff`]) when they
/// must outlive the next kernel call — e.g. when a support engine memoizes
/// a surviving candidate. Scratch contents never influence results: each
/// kernel overwrites the buffers it uses in full.
#[derive(Clone, Debug, Default)]
pub struct ScratchSpace {
    /// The chunked result of the last [`ProbVector::intersect_into`].
    out: ProbVector,
    /// Dropped tids of the last [`ProbVector::diff_extend_into`].
    dropped: Vec<u32>,
}

impl ScratchSpace {
    /// Fresh scratch with empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Nonzero count of the last [`ProbVector::intersect_into`] result.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when the last intersection came out empty.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// The dropped tids of the last [`ProbVector::diff_extend_into`],
    /// ascending — readable in place, e.g. to measure a delta
    /// ([`DiffVector::mem_bytes`]-style) before deciding to export it.
    pub fn dropped(&self) -> &[u32] {
        &self.dropped
    }

    /// Exports the last [`ProbVector::intersect_into`] result as an owned,
    /// exactly-sized [`ProbVector`] — bit-for-bit the vector
    /// [`ProbVector::intersect`] would have returned, with no excess
    /// capacity to shrink.
    pub fn export(&self) -> ProbVector {
        self.out.clone_exact()
    }

    /// Exports the last [`ProbVector::diff_extend_into`] delta as an
    /// owned, exactly-sized [`DiffVector`].
    pub fn export_diff(&self) -> DiffVector {
        DiffVector {
            dropped: self.dropped.clone(),
        }
    }
}

/// The uncertain-data analog of a dEclat **diffset**: the delta of an
/// itemset's prob-vector against its own prefix's.
///
/// Extending a prefix `X` by an item `i` keeps a tid `t` iff
/// `vec(X)[t] · P_t(i) > 0`; the survivors' probabilities are reproducible
/// by gathering `P_t(i)` from the item's postings, so the only information
/// the extension *destroys* is which tids were dropped. A `DiffVector`
/// stores exactly that — the dropped tids — at 4 bytes each, versus the
/// kept entries' lanes-plus-directory cost for a [`ProbVector`]. On dense
/// data, where almost every tid survives every extension, the delta is a
/// small fraction of the tidset.
///
/// Produced by [`ProbVector::diff_extend`]; the full child vector is
/// recovered (bit-for-bit equal to [`ProbVector::intersect`]) with
/// [`ProbVector::apply_diff`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiffVector {
    /// Prefix tids that do not survive the extension, ascending.
    dropped: Vec<u32>,
}

impl DiffVector {
    /// The dropped tids, ascending.
    pub fn dropped(&self) -> &[u32] {
        &self.dropped
    }

    /// Number of prefix tids the extension dropped.
    pub fn len(&self) -> usize {
        self.dropped.len()
    }

    /// True when every prefix tid survived the extension.
    pub fn is_empty(&self) -> bool {
        self.dropped.is_empty()
    }

    /// Heap bytes of the delta (4 per dropped tid) — comparable with
    /// [`ProbVector::mem_bytes`] when choosing the smaller representation
    /// per memo node, as dEclat does.
    pub fn mem_bytes(&self) -> usize {
        self.dropped.len() * std::mem::size_of::<u32>()
    }

    /// Releases excess capacity (the delta is push-grown; long-lived
    /// memoized deltas should hold exactly the bytes
    /// [`DiffVector::mem_bytes`] reports).
    pub fn shrink_to_fit(&mut self) {
        self.dropped.shrink_to_fit();
    }

    /// Applies a batch of point updates to the dropped-tid set in one
    /// merge pass — the window-step patch for a memoized delta chain.
    /// `updates` holds `(tid, dropped)` pairs with strictly ascending
    /// tids: `true` ensures the tid is in the dropped set (the stepped
    /// transaction kills the extension at that slot), `false` ensures it
    /// is not (the tid now survives, or left the prefix entirely —
    /// dropped sets only ever list live prefix tids). Redundant updates
    /// are no-ops, so the result equals the delta a cold
    /// [`ProbVector::diff_extend`] over the stepped window would emit.
    pub fn apply_tid_delta(&mut self, updates: &[(u32, bool)]) {
        if updates.is_empty() {
            return;
        }
        debug_assert!(
            updates.windows(2).all(|w| w[0].0 < w[1].0),
            "update tids not strictly ascending"
        );
        let mut out = Vec::with_capacity(self.dropped.len() + updates.len());
        let mut u = 0usize;
        for &tid in &self.dropped {
            while u < updates.len() && updates[u].0 < tid {
                if updates[u].1 {
                    out.push(updates[u].0);
                }
                u += 1;
            }
            if u < updates.len() && updates[u].0 == tid {
                if updates[u].1 {
                    out.push(tid);
                }
                u += 1;
            } else {
                out.push(tid);
            }
        }
        while u < updates.len() {
            if updates[u].1 {
                out.push(updates[u].0);
            }
            u += 1;
        }
        self.dropped = out;
    }
}

impl ProbVector {
    /// The dEclat-style extension step: computes, in **one** pass and
    /// without materializing the child vector, the child's statistics
    /// `(esup, variance, nonzero count)` — bit-identical to
    /// `self.intersect(other).moments()` and to
    /// [`ProbVector::intersect_stats`] — plus the [`DiffVector`] of prefix
    /// tids that did not survive (`other` absent, or the product
    /// underflowed to zero).
    pub fn diff_extend(&self, other: &ProbVector) -> (DiffVector, f64, f64, usize) {
        let mut dropped: Vec<u32> = Vec::new();
        let mut acc = MomentAcc::new();
        self.diff_extend_core(other, &mut acc, |tid| dropped.push(tid));
        let (esup, var, count) = acc.finish();
        (DiffVector { dropped }, esup, var, count)
    }

    /// [`ProbVector::diff_extend`] writing the dropped tids into
    /// `scratch.dropped` (read back via [`ScratchSpace::dropped`], export
    /// via [`ScratchSpace::export_diff`]) instead of allocating a fresh
    /// delta. Returns the child's `(esup, variance, nonzero count)`,
    /// bit-identical to the allocating twin.
    pub fn diff_extend_into(
        &self,
        other: &ProbVector,
        scratch: &mut ScratchSpace,
    ) -> (f64, f64, usize) {
        scratch.dropped.clear();
        let dropped = &mut scratch.dropped;
        let mut acc = MomentAcc::new();
        self.diff_extend_core(other, &mut acc, |tid| dropped.push(tid));
        acc.finish()
    }

    /// [`ProbVector::diff_extend_into`] that additionally retains the
    /// child's per-block striped partials — the [`BlockMoments`] a
    /// streaming diffset memo keeps so a later window step can patch the
    /// cached stats instead of re-folding. One pass, no child
    /// materialization; the returned `(esup, var, count)` and the recorded
    /// partials are bit-identical to the plain twin's results and to
    /// [`BlockMoments::of`] of the materialized child, respectively.
    pub fn diff_extend_blocks_into(
        &self,
        other: &ProbVector,
        scratch: &mut ScratchSpace,
    ) -> (BlockMoments, f64, f64, usize) {
        scratch.dropped.clear();
        let dropped = &mut scratch.dropped;
        let mut rec = BlockRecorder::new();
        self.diff_extend_core(other, &mut rec, |tid| dropped.push(tid));
        let blocks = rec.finish();
        let (esup, var, count) = blocks.fold();
        (blocks, esup, var, count)
    }

    /// Shared engine of [`ProbVector::diff_extend`] /
    /// [`ProbVector::diff_extend_into`]: one pass over the prefix's
    /// chunks, pairing each against `other`'s chunk directory (galloping
    /// when `other` is `GALLOP_RATIO×` longer) and calling `drop` for
    /// every tid that does not survive the extension.
    ///
    /// Accumulation shape: contributions are grouped by the prefix's chunk
    /// blocks — the same [`SUM_BLOCK_TIDS`] shape as `intersect_stats`
    /// (whose extra zero-product adds are IEEE-754 no-ops), so the sums
    /// are bit-identical.
    fn diff_extend_core<S: StatSink, F: FnMut(u32)>(
        &self,
        other: &ProbVector,
        acc: &mut S,
        mut drop: F,
    ) {
        let kb: &[u32] = &other.keys;
        let gallop = self.keys.len() * GALLOP_RATIO < kb.len();
        let mut j = 0usize;
        for i in 0..self.keys.len() {
            let key = self.keys[i];
            acc.enter_chunk(key);
            if gallop {
                j = gallop_to(kb, j, key);
            } else {
                while j < kb.len() && kb[j] < key {
                    j += 1;
                }
            }
            let base = key << CHUNK_BITS;
            let ma = self.masks[i];
            let la = &self.lanes[self.start(i)..self.end(i)];
            let da = la.len() == CHUNK_LANES;
            if j < kb.len() && kb[j] == key {
                let mb = other.masks[j];
                let lb = &other.lanes[other.start(j)..other.end(j)];
                let db = lb.len() == CHUNK_LANES;
                let mut m = ma;
                let mut ia = 0usize;
                while m != 0 {
                    let t = m.trailing_zeros();
                    m &= m - 1;
                    // Iterating `ma` in bit order makes the packed-lane
                    // cursor sequential — no rank popcount on `self`.
                    let p = if da { la[t as usize] } else { la[ia] };
                    ia += 1;
                    let q = if db {
                        // Positional zeros stand in for absent tids.
                        lb[t as usize]
                    } else if (mb >> t) & 1 == 1 {
                        lb[rank(mb, t)]
                    } else {
                        0.0
                    };
                    let prod = p * q;
                    if prod > 0.0 {
                        acc.add(t, prod);
                    } else {
                        drop(base | t);
                    }
                }
            } else {
                // No postings chunk here: every prefix tid is dropped.
                let mut m = ma;
                while m != 0 {
                    let t = m.trailing_zeros();
                    m &= m - 1;
                    drop(base | t);
                }
            }
        }
    }

    /// Reconstructs the child vector a [`ProbVector::diff_extend`] call
    /// summarized: `self` must be the same prefix vector and `other` the
    /// same appended item's postings. The result is bit-for-bit equal to
    /// `self.intersect(other)`, each chunk's layout re-decided as it is
    /// rebuilt.
    pub fn apply_diff(&self, diff: &DiffVector, other: &ProbVector) -> ProbVector {
        self.apply_dropped(&diff.dropped, other)
    }

    /// [`ProbVector::apply_diff`] writing into a caller-owned vector whose
    /// buffers are reused (cleared, capacity retained) — the
    /// zero-allocation twin for transient reconstructions that do not
    /// outlive the next kernel call.
    pub fn apply_diff_into(&self, diff: &DiffVector, other: &ProbVector, out: &mut ProbVector) {
        self.apply_dropped_core(&diff.dropped, other, out);
    }

    /// [`ProbVector::apply_diff`] over a raw dropped-tid slice — lets
    /// callers holding a delta in scratch ([`ScratchSpace::dropped`])
    /// materialize the child without first exporting a [`DiffVector`].
    pub fn apply_dropped(&self, dropped: &[u32], other: &ProbVector) -> ProbVector {
        let mut out = ProbVector::default();
        out.keys.reserve(self.keys.len());
        out.masks.reserve(self.keys.len());
        out.ends.reserve(self.keys.len());
        out.lanes.reserve(self.nnz.saturating_sub(dropped.len()));
        self.apply_dropped_core(dropped, other, &mut out);
        out
    }

    /// Shared engine of the `apply_*` reconstructions: walks the prefix's
    /// chunks, skips the dropped tids, regathers the appended item's
    /// probability for each survivor, and commits adaptive output chunks.
    fn apply_dropped_core(&self, dropped: &[u32], other: &ProbVector, out: &mut ProbVector) {
        out.clear();
        let kb: &[u32] = &other.keys;
        let gallop = self.keys.len() * GALLOP_RATIO < kb.len();
        let mut d = 0usize;
        let mut j = 0usize;
        let mut vals = [0.0f64; CHUNK_LANES];
        for i in 0..self.keys.len() {
            let key = self.keys[i];
            if gallop {
                j = gallop_to(kb, j, key);
            } else {
                while j < kb.len() && kb[j] < key {
                    j += 1;
                }
            }
            let base = key << CHUNK_BITS;
            let ma = self.masks[i];
            let la = &self.lanes[self.start(i)..self.end(i)];
            let da = la.len() == CHUNK_LANES;
            let hit = j < kb.len() && kb[j] == key;
            let (mb, sb, db) = if hit {
                let lb_len = other.end(j) - other.start(j);
                (other.masks[j], other.start(j), lb_len == CHUNK_LANES)
            } else {
                (0u64, 0usize, false)
            };
            let mut out_mask = 0u64;
            let mut k = 0usize;
            let mut m = ma;
            let mut ia = 0usize;
            while m != 0 {
                let t = m.trailing_zeros();
                m &= m - 1;
                let tid = base | t;
                let lane_idx = ia;
                ia += 1;
                if d < dropped.len() && dropped[d] == tid {
                    d += 1;
                    continue;
                }
                let p = if da { la[t as usize] } else { la[lane_idx] };
                debug_assert!(
                    (mb >> t) & 1 == 1,
                    "surviving tid {tid} absent from postings"
                );
                let q = if db {
                    other.lanes[sb + t as usize]
                } else {
                    other.lanes[sb + rank(mb, t)]
                };
                let prod = p * q;
                debug_assert!(prod > 0.0, "surviving tid {tid} has a zero product");
                vals[k] = prod;
                k += 1;
                out_mask |= 1u64 << t;
            }
            out.commit_chunk(key, out_mask, &vals);
        }
        debug_assert_eq!(d, dropped.len(), "dropped tid absent from prefix");
    }
}

/// Default shard width in chunks: 1024 chunks = 65,536 tids per shard.
/// Databases at or under one shard width run entirely unsharded.
pub const DEFAULT_SHARD_WIDTH_CHUNKS: usize = 1024;

/// The fixed tid-range shard partition of a database: every shard covers
/// `width_chunks` consecutive 64-tid chunks (so shard boundaries always
/// fall on chunk boundaries, and — when the width is a multiple of 64
/// chunks — on [`SUM_BLOCK_TIDS`] summation-block boundaries too).
///
/// The width is a **pure function of the database size**
/// ([`ShardPlan::for_transactions`]), never of thread count or environment,
/// so shard-spawn decisions and per-shard counters are deterministic.
/// Tests and benches may force a width with
/// [`ShardPlan::with_width_chunks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    width_chunks: usize,
}

impl Default for ShardPlan {
    fn default() -> Self {
        ShardPlan {
            width_chunks: DEFAULT_SHARD_WIDTH_CHUNKS,
        }
    }
}

impl ShardPlan {
    /// The plan for a database of `num_transactions` tids — currently the
    /// fixed [`DEFAULT_SHARD_WIDTH_CHUNKS`] for every size (a pure function
    /// of N by construction; the constant keeps small databases, at or
    /// under 65,536 tids, on the single-shard unsharded path).
    pub fn for_transactions(_num_transactions: usize) -> Self {
        ShardPlan::default()
    }

    /// A plan with an explicit shard width (≥ 1 chunk) — for tests and
    /// width-sweep benches.
    pub fn with_width_chunks(width_chunks: usize) -> Self {
        assert!(width_chunks >= 1, "shard width must be at least one chunk");
        ShardPlan { width_chunks }
    }

    /// Shard width in 64-tid chunks.
    pub fn width_chunks(&self) -> usize {
        self.width_chunks
    }

    /// Shard width in tids.
    pub fn width_tids(&self) -> usize {
        self.width_chunks * CHUNK_LANES
    }

    /// Number of shards covering `num_transactions` tids (at least 1).
    pub fn num_shards(&self, num_transactions: usize) -> usize {
        num_transactions.div_ceil(self.width_tids()).max(1)
    }

    /// The shard containing chunk `key`.
    pub fn shard_of_key(&self, key: u32) -> usize {
        key as usize / self.width_chunks
    }

    /// Chunk-key range `[start, end)` of `shard`.
    pub fn key_range(&self, shard: usize) -> (u32, u32) {
        let start = shard * self.width_chunks;
        (start as u32, (start + self.width_chunks) as u32)
    }

    /// This plan with its width rounded **up** to a whole number of
    /// [`SUM_BLOCK_TIDS`] summation blocks (64 chunks). The horizontal
    /// backend's striped per-block partials merge exactly only at the
    /// block partition, so its shard seam normalizes widths through this.
    pub fn normalized_to_blocks(&self) -> ShardPlan {
        let block_chunks = SUM_BLOCK_TIDS / CHUNK_LANES;
        ShardPlan {
            width_chunks: self.width_chunks.div_ceil(block_chunks) * block_chunks,
        }
    }
}

/// One `(item, shard)` cell of a [`VerticalIndex`] zone map: summary
/// statistics of the item's postings restricted to the shard's tid range,
/// built once at index time. The support engines' shard precheck combines
/// these into sound upper bounds on a candidate's per-shard contribution —
/// `mass` and `max_prob · count` bound the expected support, `nonzero` the
/// nonzero-transaction count — so a whole shard (or a whole candidate) can
/// be skipped without touching a lane.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ZoneEntry {
    /// Exact sum of the shard fragment's probabilities (its expected
    /// support, zero-based — an upper bound on any intersection's mass in
    /// this shard).
    pub mass: f64,
    /// Largest probability in the fragment (0.0 for an empty fragment).
    pub max_prob: f64,
    /// Nonzero entries in the fragment.
    pub nonzero: u32,
}

impl ProbVector {
    /// Splits the vector into `num_shards` per-shard fragments at the
    /// plan's chunk-key boundaries. Fragments keep their **global** chunk
    /// keys and per-chunk layouts (layout is a pure function of per-chunk
    /// contents, and shard boundaries never split a chunk), so
    /// [`ProbVector::concat_fragments`] reproduces `self` exactly and the
    /// unmodified kernels run on fragment pairs of the same shard.
    fn split_by_plan(&self, plan: &ShardPlan, num_shards: usize) -> Vec<ProbVector> {
        let mut frags = vec![ProbVector::default(); num_shards];
        let mut i = 0usize;
        while i < self.keys.len() {
            let shard = plan.shard_of_key(self.keys[i]);
            let mut j = i;
            while j < self.keys.len() && plan.shard_of_key(self.keys[j]) == shard {
                j += 1;
            }
            let f = &mut frags[shard];
            f.keys.extend_from_slice(&self.keys[i..j]);
            f.masks.extend_from_slice(&self.masks[i..j]);
            let base = self.start(i);
            f.lanes
                .extend_from_slice(&self.lanes[base..self.end(j - 1)]);
            for c in i..j {
                f.ends.push((self.end(c) - base) as u32);
                f.nnz += self.masks[c].count_ones() as usize;
            }
            i = j;
        }
        frags
    }

    /// Concatenates shard fragments (ascending, non-overlapping global
    /// chunk keys) back into one vector — exact, because fragment chunks
    /// carry their global keys and per-chunk layouts unchanged.
    pub fn concat_fragments<'a, I: IntoIterator<Item = &'a ProbVector>>(frags: I) -> ProbVector {
        let mut out = ProbVector::default();
        for v in frags {
            debug_assert!(
                out.keys
                    .last()
                    .is_none_or(|&k| v.keys.first().is_none_or(|&f| k < f)),
                "fragments out of order"
            );
            let base = out.lanes.len() as u32;
            out.keys.extend_from_slice(&v.keys);
            out.masks.extend_from_slice(&v.masks);
            let live = v.ends.last().map_or(0, |&e| e as usize);
            out.lanes.extend_from_slice(&v.lanes[..live]);
            out.ends.extend(v.ends.iter().map(|&e| e + base));
            out.nnz += v.nnz;
        }
        out
    }

    /// `(esup, var, count)` of the concatenation of `frags` (ascending,
    /// non-overlapping global chunk keys), streamed through **one**
    /// fixed-shape accumulator in fragment order. Because the `(chunk,
    /// lane)` visit sequence is identical to walking the concatenated
    /// vector — global keys drive the summation-block folds — the result
    /// is bit-identical to [`ProbVector::moments`] of the concatenation,
    /// which is how the sharded support engines merge per-shard partials
    /// without ever concatenating. Empty fragments contribute nothing
    /// (skipping them is exact, not approximate).
    pub fn fragments_moments<'a, I: IntoIterator<Item = &'a ProbVector>>(
        frags: I,
    ) -> (f64, f64, usize) {
        let mut acc = MomentAcc::new();
        for v in frags {
            for i in 0..v.keys.len() {
                acc.enter_chunk(v.keys[i]);
                let lanes = &v.lanes[v.start(i)..v.end(i)];
                if lanes.len() == CHUNK_LANES {
                    for (t, &q) in lanes.iter().enumerate() {
                        acc.add(t as u32, q);
                    }
                } else {
                    let mut m = v.masks[i];
                    let mut idx = 0usize;
                    while m != 0 {
                        let t = m.trailing_zeros();
                        m &= m - 1;
                        acc.add(t, lanes[idx]);
                        idx += 1;
                    }
                }
            }
        }
        acc.finish()
    }
}

/// One-pass columnar index over an [`UncertainDatabase`]: for every item,
/// the sorted postings of `(tid, prob)` pairs in which it occurs, each
/// chunk stored packed or positionally by the per-chunk
/// [`DENSE_CUTOFF_DIVISOR`] rule.
///
/// When the database spans more than one shard of its [`ShardPlan`]
/// (> 65,536 tids at the default width), the index **additionally** holds
/// each item's postings split into per-shard fragments (global chunk keys,
/// so the unmodified kernels intersect fragment pairs directly) plus a
/// [`ZoneEntry`] zone map per `(item, shard)` cell. Small databases skip
/// both — [`VerticalIndex::is_sharded`] is false and the engines keep the
/// single-vector path. The full postings are always retained (they serve
/// cold lookups and the unsharded API); the ~2× index-memory cost of
/// sharded mode is the price until the ROADMAP's out-of-core item moves
/// the fragments to mmap-backed column chunks.
#[derive(Clone, Debug, Default)]
pub struct VerticalIndex {
    postings: Vec<ProbVector>,
    num_transactions: usize,
    plan: ShardPlan,
    /// `[item][shard]` posting fragments; empty in unsharded mode.
    shard_frags: Vec<Vec<ProbVector>>,
    /// Flat `[item · num_shards + shard]` zone map; empty in unsharded
    /// mode.
    zones: Vec<ZoneEntry>,
}

impl VerticalIndex {
    /// Builds the index in a single pass over the database. Chunk layouts
    /// adapt during the build (a chunk converts packed → positional the
    /// moment it crosses the cutoff). Uses the default
    /// [`ShardPlan::for_transactions`] plan, so sharding engages only past
    /// one default shard width.
    pub fn build(db: &UncertainDatabase) -> Self {
        Self::build_with_plan(db, ShardPlan::for_transactions(db.num_transactions()))
    }

    /// [`VerticalIndex::build`] under an explicit shard plan. When `plan`
    /// yields more than one shard, per-item fragments and the zone map are
    /// built from the finished postings (fragment layouts equal the full
    /// postings' — splitting never crosses a chunk).
    pub fn build_with_plan(db: &UncertainDatabase, plan: ShardPlan) -> Self {
        let n = db.num_transactions();
        let mut postings = vec![ProbVector::new(); db.num_items() as usize];
        for (tid, t) in db.transactions().iter().enumerate() {
            for (item, p) in t.units() {
                postings[item as usize].push(tid as u32, p);
            }
        }
        let num_shards = plan.num_shards(n);
        let (mut shard_frags, mut zones) = (Vec::new(), Vec::new());
        if num_shards > 1 {
            shard_frags.reserve(postings.len());
            zones.reserve(postings.len() * num_shards);
            for p in &postings {
                let frags = p.split_by_plan(&plan, num_shards);
                for f in &frags {
                    let mut max_prob = 0.0f64;
                    f.for_each_nonzero(|_, q| max_prob = max_prob.max(q));
                    zones.push(ZoneEntry {
                        mass: f.esup(),
                        max_prob,
                        nonzero: f.len() as u32,
                    });
                }
                shard_frags.push(frags);
            }
        }
        VerticalIndex {
            postings,
            num_transactions: n,
            plan,
            shard_frags,
            zones,
        }
    }

    /// The shard plan the index was built under.
    pub fn shard_plan(&self) -> ShardPlan {
        self.plan
    }

    /// Number of shards the plan yields for this database.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards(self.num_transactions)
    }

    /// Whether per-shard fragments and zone maps were built (more than one
    /// shard).
    pub fn is_sharded(&self) -> bool {
        !self.shard_frags.is_empty()
    }

    /// One item's postings restricted to `shard` (global chunk keys).
    /// Panics unless [`VerticalIndex::is_sharded`].
    #[inline]
    pub fn shard_postings(&self, item: ItemId, shard: usize) -> &ProbVector {
        &self.shard_frags[item as usize][shard]
    }

    /// The zone-map cell of `(item, shard)`. Panics unless
    /// [`VerticalIndex::is_sharded`].
    #[inline]
    pub fn zone(&self, item: ItemId, shard: usize) -> ZoneEntry {
        self.zones[item as usize * self.num_shards() + shard]
    }

    /// Number of transactions in the indexed database.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Vocabulary size.
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.postings.len() as u32
    }

    /// The postings of one item (its singleton prob-vector).
    #[inline]
    pub fn postings(&self, item: ItemId) -> &ProbVector {
        &self.postings[item as usize]
    }

    /// Total nonzero `(tid, prob)` units — equals the database's total
    /// units.
    pub fn total_units(&self) -> usize {
        self.postings.iter().map(ProbVector::len).sum()
    }

    /// Mean nonzero units per posting (0 for an empty vocabulary) — the
    /// per-candidate work estimate the support engines share when gating
    /// their parallel fan-out.
    pub fn mean_posting_units(&self) -> usize {
        self.total_units()
            .checked_div(self.num_items().max(1) as usize)
            .unwrap_or(0)
    }

    /// Applies a window-step delta in place: per dirty slot, the old
    /// transaction's units leave the postings and the new one's enter. The
    /// step is first transposed into one ascending `(tid, new_prob)`
    /// update list per touched item (removals as probability 0), and each
    /// touched posting absorbs its whole list in a single
    /// [`ProbVector::apply_tid_delta`] merge — one pass per item instead
    /// of a point update per dirty unit, the difference on bursty steps
    /// (hundreds of slots) and the initial whole-window fill. In sharded
    /// mode the same lists split at shard boundaries into the per-shard
    /// fragments, and every dirty `(item, shard)` zone-map cell is rebuilt
    /// from its fragment with the same code the from-scratch build runs.
    ///
    /// Because [`ProbVector::apply_tid_delta`] commits the canonical chunk
    /// layout, the maintained index is **byte-identical** to
    /// [`VerticalIndex::build_with_plan`] over the stepped window's
    /// snapshot — postings, fragments and zones alike — so everything
    /// downstream (kernels, bounded pushdown, zone prechecks) behaves as
    /// if the index had been rebuilt. Cost is proportional to the delta:
    /// one touched-chunk merge per dirty item plus a zone refresh per
    /// dirty cell, never `O(window)`.
    ///
    /// Every dirty tid must lie within the indexed transaction range (the
    /// window's ring-buffer tids guarantee this; checked in debug builds).
    pub fn apply_step(&mut self, step: &crate::window::WindowStep) {
        let num_shards = self.num_shards();
        let sharded = self.is_sharded();
        // Transpose the step: per-item update lists, ascending by tid
        // (`step.dirty` is tid-sorted). A lockstep walk of each slot's
        // sorted unit lists emits only probabilities that actually moved —
        // unchanged units are no-ops for a rebuild and are skipped.
        let mut per_item: Vec<Vec<(u32, f64)>> = vec![Vec::new(); self.postings.len()];
        for d in &step.dirty {
            debug_assert!(
                (d.tid as usize) < self.num_transactions,
                "dirty tid outside the indexed range"
            );
            let mut old_units = d.old.units().peekable();
            let mut new_units = d.new.units().peekable();
            loop {
                match (old_units.peek().copied(), new_units.peek().copied()) {
                    (None, None) => break,
                    (Some((oi, op)), Some((ni, np))) => {
                        if oi == ni {
                            if op != np {
                                per_item[oi as usize].push((d.tid, np));
                            }
                            old_units.next();
                            new_units.next();
                        } else if oi < ni {
                            per_item[oi as usize].push((d.tid, 0.0));
                            old_units.next();
                        } else {
                            per_item[ni as usize].push((d.tid, np));
                            new_units.next();
                        }
                    }
                    (Some((oi, _)), None) => {
                        per_item[oi as usize].push((d.tid, 0.0));
                        old_units.next();
                    }
                    (None, Some((ni, np))) => {
                        per_item[ni as usize].push((d.tid, np));
                        new_units.next();
                    }
                }
            }
        }
        // (item, shard) cells whose zone entries must be rebuilt.
        let mut dirty_cells: Vec<(ItemId, usize)> = Vec::new();
        for (item, updates) in per_item.iter().enumerate() {
            if updates.is_empty() {
                continue;
            }
            self.postings[item].apply_tid_delta(updates);
            if sharded {
                // Shards cover contiguous tid ranges, so the ascending
                // list splits into contiguous per-shard runs.
                let mut i = 0usize;
                while i < updates.len() {
                    let shard = self.plan.shard_of_key(updates[i].0 >> CHUNK_BITS);
                    let mut j = i + 1;
                    while j < updates.len()
                        && self.plan.shard_of_key(updates[j].0 >> CHUNK_BITS) == shard
                    {
                        j += 1;
                    }
                    self.shard_frags[item][shard].apply_tid_delta(&updates[i..j]);
                    dirty_cells.push((item as ItemId, shard));
                    i = j;
                }
            }
        }
        dirty_cells.sort_unstable();
        dirty_cells.dedup();
        for (item, shard) in dirty_cells {
            let f = &self.shard_frags[item as usize][shard];
            let mut max_prob = 0.0f64;
            f.for_each_nonzero(|_, q| max_prob = max_prob.max(q));
            self.zones[item as usize * num_shards + shard] = ZoneEntry {
                mass: f.esup(),
                max_prob,
                nonzero: f.len() as u32,
            };
        }
    }

    /// Computes an arbitrary itemset's prob-vector from scratch by folding
    /// postings left to right — `O(Σ |postings|)`. Miners avoid this via
    /// prefix memoization; it anchors tests and serves cold lookups.
    pub fn prob_vector(&self, itemset: &[ItemId]) -> ProbVector {
        let Some((&first, rest)) = itemset.split_first() else {
            return ProbVector::new();
        };
        let mut acc = self.postings(first).clone();
        for &item in rest {
            if acc.is_empty() {
                break;
            }
            acc = acc.intersect(self.postings(item));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_table1;
    use crate::transaction::Transaction;

    /// Scalar reference implementation over plain `(tid, prob)` pair
    /// lists: a merge-join plus the workspace's fixed summation shape —
    /// eight striped partials (`tid % 8`) per 4096-tid block, stripes
    /// folded in ascending order — written with none of the chunked
    /// machinery. The chunked kernels must match it bit for bit.
    mod reference {
        /// `tid >> BLOCK_SHIFT` is the tid's summation block.
        const BLOCK_SHIFT: u32 = 12; // 4096 tids

        /// Everything one extension step produces, per the reference.
        pub struct Extension {
            pub kept: Vec<(u32, f64)>,
            pub dropped: Vec<u32>,
            pub esup: f64,
            pub var: f64,
            pub count: usize,
        }

        /// Striped-and-blocked `(esup, var)` over pairs in ascending tid
        /// order.
        pub fn moments(pairs: &[(u32, f64)]) -> (f64, f64) {
            let (mut esup, mut var) = (0.0f64, 0.0f64);
            let (mut be, mut bv) = ([0.0f64; 8], [0.0f64; 8]);
            let mut blk = 0u32;
            let fold = |be: &mut [f64; 8], bv: &mut [f64; 8], esup: &mut f64, var: &mut f64| {
                for s in be.iter_mut() {
                    *esup += *s;
                    *s = 0.0;
                }
                for s in bv.iter_mut() {
                    *var += *s;
                    *s = 0.0;
                }
            };
            for &(tid, q) in pairs {
                let b = tid >> BLOCK_SHIFT;
                if b != blk {
                    fold(&mut be, &mut bv, &mut esup, &mut var);
                    blk = b;
                }
                let s = (tid & 7) as usize;
                be[s] += q;
                bv[s] += q * (1.0 - q);
            }
            fold(&mut be, &mut bv, &mut esup, &mut var);
            (esup, var)
        }

        /// The extension `a × b`: products on common tids (zero products
        /// contribute `0.0` to the sums and are dropped), `a`-only tids
        /// dropped.
        pub fn extend(a: &[(u32, f64)], b: &[(u32, f64)]) -> Extension {
            let mut kept = Vec::new();
            let mut dropped = Vec::new();
            let mut products = Vec::new();
            for &(tid, pa) in a {
                match b.binary_search_by_key(&tid, |e| e.0) {
                    Ok(j) => {
                        let q = pa * b[j].1;
                        products.push((tid, q));
                        if q > 0.0 {
                            kept.push((tid, q));
                        } else {
                            dropped.push(tid);
                        }
                    }
                    Err(_) => dropped.push(tid),
                }
            }
            let (esup, var) = moments(&products);
            Extension {
                count: kept.len(),
                kept,
                dropped,
                esup,
                var,
            }
        }
    }

    fn build(pairs: &[(u32, f64)]) -> ProbVector {
        let (tids, probs): (Vec<u32>, Vec<f64>) = pairs.iter().copied().unzip();
        ProbVector::from_parts(tids, probs)
    }

    /// Runs every kernel pairing of `a × b` and asserts each against the
    /// scalar reference, bit for bit.
    fn check_kernels(a_pairs: &[(u32, f64)], b_pairs: &[(u32, f64)]) {
        let a = build(a_pairs);
        let b = build(b_pairs);
        assert_eq!(a.nonzero(), a_pairs, "from_parts/nonzero roundtrip");
        let want = reference::extend(a_pairs, b_pairs);

        // Operand moments against the reference's blocked summation.
        let (me, mv) = a.moments();
        let (re, rv) = reference::moments(a_pairs);
        assert_eq!(me.to_bits(), re.to_bits(), "moments esup");
        assert_eq!(mv.to_bits(), rv.to_bits(), "moments var");
        assert_eq!(a.esup().to_bits(), re.to_bits(), "esup");

        // Materializing intersection.
        let got = a.intersect(&b);
        assert_eq!(got.nonzero(), want.kept, "intersect");
        assert_eq!(got.len(), want.count);

        // Stats-only path.
        let (e, v, c) = a.intersect_stats(&b);
        assert_eq!(e.to_bits(), want.esup.to_bits(), "intersect_stats esup");
        assert_eq!(v.to_bits(), want.var.to_bits(), "intersect_stats var");
        assert_eq!(c, want.count);
        let (e, v, c) = a.intersect_stats_merge_join(&b);
        assert_eq!(e.to_bits(), want.esup.to_bits(), "merge_join esup");
        assert_eq!(v.to_bits(), want.var.to_bits(), "merge_join var");
        assert_eq!(c, want.count);

        // Moments of the materialized result agree with the fused stats.
        let (ge, gv) = got.moments();
        assert_eq!(ge.to_bits(), want.esup.to_bits(), "result moments esup");
        assert_eq!(gv.to_bits(), want.var.to_bits(), "result moments var");

        // Fused scratch twin: same stats, same layout, same contents.
        let mut scratch = ScratchSpace::new();
        let (e, v, c) = a.intersect_into(&b, &mut scratch);
        assert_eq!(e.to_bits(), want.esup.to_bits(), "intersect_into esup");
        assert_eq!(v.to_bits(), want.var.to_bits(), "intersect_into var");
        assert_eq!(c, want.count);
        assert_eq!(scratch.len(), want.count);
        let exported = scratch.export();
        assert_eq!(exported.nonzero(), want.kept, "export");
        assert_eq!(exported.mem_bytes(), got.mem_bytes(), "export layout");
        assert_eq!(exported.mem_units(), got.mem_units());

        // Stats-free materialization: same vector, same adaptive layout.
        let mut scratch2 = ScratchSpace::new();
        a.intersect_materialize_into(&b, &mut scratch2);
        assert_eq!(scratch2.len(), want.count, "materialize_into count");
        let mat = scratch2.export();
        assert_eq!(mat.nonzero(), want.kept, "materialize_into");
        assert_eq!(mat.mem_bytes(), got.mem_bytes(), "materialize_into layout");

        // Bounded twins. With the threshold at the exact true esup no bail
        // can fire (the remaining-mass bound never under-estimates), so
        // both bounded kernels must be bit-identical to their unbounded
        // twins. With an unreachable threshold a bail may fire and the
        // contract is decision equivalence: the partial sums returned stay
        // below the threshold and never exceed the true esup (nonnegative
        // summands keep every rounded prefix sum ≤ the rounded total).
        let (mass, _) = a.moments();
        let (e, v, c) = a.intersect_stats_bounded(&b, mass, want.esup);
        assert_eq!(e.to_bits(), want.esup.to_bits(), "stats_bounded esup");
        assert_eq!(v.to_bits(), want.var.to_bits(), "stats_bounded var");
        assert_eq!(c, want.count);
        let (e, v, c) = a.intersect_into_bounded(&b, &mut scratch, mass, want.esup);
        assert_eq!(e.to_bits(), want.esup.to_bits(), "into_bounded esup");
        assert_eq!(v.to_bits(), want.var.to_bits(), "into_bounded var");
        assert_eq!(c, want.count);
        assert_eq!(scratch.export().nonzero(), want.kept, "into_bounded vector");
        let hopeless = want.esup + mass + 1.0;
        let (e, _, _) = a.intersect_stats_bounded(&b, mass, hopeless);
        assert!(e < hopeless, "bailed stats stay below the threshold");
        assert!(e <= want.esup, "partial sums never exceed the total");

        // Delta kernels.
        let (diff, e, v, c) = a.diff_extend(&b);
        assert_eq!(e.to_bits(), want.esup.to_bits(), "diff_extend esup");
        assert_eq!(v.to_bits(), want.var.to_bits(), "diff_extend var");
        assert_eq!(c, want.count);
        assert_eq!(diff.dropped(), &want.dropped[..], "diff dropped");
        let (e, v, c) = a.diff_extend_into(&b, &mut scratch);
        assert_eq!(e.to_bits(), want.esup.to_bits(), "diff_extend_into esup");
        assert_eq!(v.to_bits(), want.var.to_bits(), "diff_extend_into var");
        assert_eq!(c, want.count);
        assert_eq!(scratch.dropped(), &want.dropped[..]);
        assert_eq!(scratch.export_diff(), diff);

        // Reconstruction.
        let rebuilt = a.apply_diff(&diff, &b);
        assert_eq!(rebuilt.nonzero(), want.kept, "apply_diff");
        assert_eq!(rebuilt.mem_bytes(), got.mem_bytes(), "apply_diff layout");
        let mut out = ProbVector::new();
        a.apply_diff_into(&diff, &b, &mut out);
        assert_eq!(out.nonzero(), want.kept, "apply_diff_into");
        assert_eq!(
            a.apply_dropped(scratch.dropped(), &b).nonzero(),
            want.kept,
            "apply_dropped"
        );
    }

    #[test]
    fn index_matches_horizontal_reference() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        assert_eq!(idx.num_transactions(), 4);
        assert_eq!(idx.num_items(), 6);
        assert_eq!(idx.total_units(), db.stats().total_units);
        for item in 0..6u32 {
            let esup = idx.postings(item).esup();
            let want = db.item_expected_supports()[item as usize];
            assert!((esup - want).abs() < 1e-12, "item {item}");
        }
        // D appears in T1 (0.7) and T4 (0.5) only.
        assert_eq!(idx.postings(3).nonzero(), vec![(0, 0.7), (3, 0.5)]);
    }

    #[test]
    fn intersection_reproduces_itemset_prob_vectors() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        for a in 0..6u32 {
            for b in a + 1..6u32 {
                let vec2 = idx.postings(a).intersect(idx.postings(b));
                let want = db.itemset_prob_vector(&[a, b]);
                assert_eq!(vec2.nonzero_probs(), want, "{{{a},{b}}}");
                let (esup, var) = vec2.moments();
                let (we, wv) = db.support_moments(&[a, b]);
                assert!((esup - we).abs() < 1e-12);
                assert!((var - wv).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn prefix_recurrence_equals_scratch_fold() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        // {A, C, E}: prefix {A, C} extended by E.
        let prefix = idx.postings(0).intersect(idx.postings(2));
        let via_recurrence = prefix.intersect(idx.postings(4));
        assert_eq!(via_recurrence, idx.prob_vector(&[0, 2, 4]));
        assert_eq!(
            via_recurrence.nonzero_probs(),
            db.itemset_prob_vector(&[0, 2, 4])
        );
    }

    #[test]
    fn empty_cases() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        assert!(idx.prob_vector(&[]).is_empty());
        // D and E never co-occur.
        assert!(idx.prob_vector(&[3, 4]).is_empty());
        assert_eq!(idx.prob_vector(&[3, 4]).esup(), 0.0);

        let empty = UncertainDatabase::from_transactions(vec![]);
        let idx = VerticalIndex::build(&empty);
        assert_eq!(idx.num_items(), 0);
        assert_eq!(idx.total_units(), 0);

        // Empty × empty and empty × nonempty through every kernel.
        check_kernels(&[], &[]);
        check_kernels(&[], &[(3, 0.5)]);
        check_kernels(&[(3, 0.5)], &[]);
    }

    #[test]
    fn intersect_is_commutative_here() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        let ab = idx.postings(0).intersect(idx.postings(1));
        let ba = idx.postings(1).intersect(idx.postings(0));
        assert_eq!(ab, ba);
    }

    /// Items spanning the per-chunk packed/positional cutoff, checked
    /// against the horizontal reference.
    #[test]
    fn mixed_representations_agree_with_reference() {
        // Item 0: every transaction (64/chunk, positional). Item 1: every
        // other (32/chunk, positional). Item 2: every 10th (~6/chunk,
        // packed). Item 3: every 16th (4/chunk, packed).
        let transactions: Vec<Transaction> = (0..320)
            .map(|i| {
                let mut units = vec![(0u32, 0.9)];
                if i % 2 == 0 {
                    units.push((1, 0.8));
                }
                if i % 10 == 0 {
                    units.push((2, 0.7));
                }
                if i % 16 == 0 {
                    units.push((3, 0.6));
                }
                Transaction::new(units).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 4);
        let idx = VerticalIndex::build(&db);
        assert_eq!(idx.postings(0).dense_chunks(), 5);
        assert_eq!(idx.postings(1).dense_chunks(), 5);
        assert_eq!(idx.postings(2).dense_chunks(), 0);
        assert_eq!(idx.postings(3).dense_chunks(), 0);
        for a in 0..4u32 {
            for b in a + 1..4u32 {
                let got = idx.postings(a).intersect(idx.postings(b));
                let want = db.itemset_prob_vector(&[a, b]);
                assert_eq!(got.nonzero_probs(), want, "{{{a},{b}}}");
                assert_eq!(got.len(), want.len());
                check_kernels(&idx.postings(a).nonzero(), &idx.postings(b).nonzero());
            }
        }
        // Positional × packed that comes out packed: {1, 2} hits every
        // 10th transaction only (~3 per chunk).
        let v12 = idx.postings(1).intersect(idx.postings(2));
        assert_eq!(v12.dense_chunks(), 0);
        // Triple through the recurrence, mixing all layouts.
        let v012 = idx.prob_vector(&[0, 1, 2]);
        assert_eq!(v012.nonzero_probs(), db.itemset_prob_vector(&[0, 1, 2]));
    }

    /// f64 underflow regime: products of these hit exact 0.0 (1e-200 ×
    /// 1e-200 = 1e-400 < the smallest subnormal) or the subnormal range.
    const TINY: f64 = 1e-200;
    const SUBNORMAL_EDGE: f64 = 1e-160; // squared → 1e-320, subnormal

    const PAIRS_A: [(u32, f64); 4] = [(0, TINY), (1, 0.5), (2, SUBNORMAL_EDGE), (3, 0.9)];
    const PAIRS_B: [(u32, f64); 4] = [(0, TINY), (1, 0.5), (2, SUBNORMAL_EDGE), (3, 1e-320)];

    /// Pads a payload with filler entries inside chunk 0 so the chunk
    /// crosses the positional cutoff; `filler` tid ranges let callers
    /// control whether the paddings of two operands overlap.
    fn with_filler(pairs: &[(u32, f64)], filler: std::ops::Range<u32>) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = pairs.to_vec();
        all.extend(filler.map(|t| (t, 0.5)));
        all.sort_by_key(|e| e.0);
        all
    }

    /// All four chunk-layout pairings must drop zero products from the
    /// materialized result, and `len()`/`moments()` must agree with
    /// `intersect_stats` bit for bit — the invariant the `WITH_COUNT`
    /// pushdown path relies on. Filler tids (32..48 vs 48..64) never
    /// overlap, so the common-tid set is the same in every pairing.
    #[test]
    fn underflow_products_are_dropped_consistently() {
        for a_dense in [false, true] {
            for b_dense in [false, true] {
                let a_pairs = if a_dense {
                    with_filler(&PAIRS_A, 32..48)
                } else {
                    PAIRS_A.to_vec()
                };
                let b_pairs = if b_dense {
                    with_filler(&PAIRS_B, 48..64)
                } else {
                    PAIRS_B.to_vec()
                };
                check_kernels(&a_pairs, &b_pairs);
                let a = build(&a_pairs);
                let b = build(&b_pairs);
                assert_eq!(a.dense_chunks() > 0, a_dense, "fixture layout");
                assert_eq!(b.dense_chunks() > 0, b_dense, "fixture layout");
                // tid 0: 1e-400 → 0.0, dropped. tid 1: 0.25 kept. tid 2:
                // subnormal 1e-320 > 0 kept. tid 3: 0.9·1e-320 kept.
                let got = a.intersect(&b);
                assert_eq!(got.len(), 3, "{a_dense:?}×{b_dense:?}");
                assert!(got.nonzero().iter().all(|&(_, q)| q > 0.0));
            }
        }
    }

    /// Positional × positional with a large common filler — the dense
    /// multiply-reduce path — still agrees with the reference.
    #[test]
    fn dense_chunks_with_shared_filler() {
        let a_pairs = with_filler(&PAIRS_A, 16..64);
        let b_pairs = with_filler(&PAIRS_B, 16..64);
        check_kernels(&a_pairs, &b_pairs);
        assert_eq!(build(&a_pairs).dense_chunks(), 1);
    }

    /// A fully-underflowing intersection materializes as empty and reports
    /// zero stats — `len()`, `moments()` and `intersect_stats` all agree.
    #[test]
    fn total_underflow_yields_empty_vector() {
        let a = build(&[(0, TINY), (5, TINY)]);
        let b = build(&[(0, TINY), (5, TINY)]);
        let got = a.intersect(&b);
        assert!(got.is_empty());
        assert_eq!(got.num_chunks(), 0);
        let (esup, var, count) = a.intersect_stats(&b);
        assert_eq!((esup, var, count), (0.0, 0.0, 0));
        assert_eq!(got.moments(), (0.0, 0.0));
        check_kernels(&[(0, TINY), (5, TINY)], &[(0, TINY), (5, TINY)]);
    }

    /// Chains deep enough that products underflow step by step: the
    /// recurrence must keep dropping newly-zero entries at every level.
    #[test]
    fn deep_chain_underflow() {
        // 8 items all present in the same 3 transactions with tiny probs:
        // products vanish after ⌈300/200⌉ = 2 steps for the 1e-200 tids.
        let transactions: Vec<Transaction> = (0..3)
            .map(|t| {
                let p = if t == 0 { 0.5 } else { TINY };
                Transaction::new((0..8u32).map(|i| (i, p)).collect::<Vec<_>>()).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 8);
        let idx = VerticalIndex::build(&db);
        let items: Vec<u32> = (0..8).collect();
        let mut acc = idx.postings(items[0]).clone();
        for &i in &items[1..] {
            let (esup, var, count) = acc.intersect_stats(idx.postings(i));
            acc = acc.intersect(idx.postings(i));
            assert_eq!(acc.len(), count);
            let (ge, gv) = acc.moments();
            assert_eq!(ge.to_bits(), esup.to_bits());
            assert_eq!(gv.to_bits(), var.to_bits());
            assert!(acc.nonzero().iter().all(|&(_, q)| q > 0.0));
        }
        // Only the p=0.5 transaction survives all 8 items (0.5^8).
        assert_eq!(acc.nonzero(), vec![(0, 0.5f64.powi(8))]);
    }

    /// Delta chains over the Table 1 example equal the scratch fold, and
    /// the chunked memory accounting charges lanes plus directory.
    #[test]
    fn diff_chain_reconstruction() {
        let db = paper_table1();
        let idx = VerticalIndex::build(&db);
        // Chain {A} → {A,C} → {A,C,E} entirely through deltas.
        let a = idx.postings(0);
        let (d_ac, ..) = a.diff_extend(idx.postings(2));
        let ac = a.apply_diff(&d_ac, idx.postings(2));
        let (d_ace, esup, _, count) = ac.diff_extend(idx.postings(4));
        let ace = ac.apply_diff(&d_ace, idx.postings(4));
        assert_eq!(ace, idx.prob_vector(&[0, 2, 4]));
        assert_eq!(ace.len(), count);
        assert!((esup - db.expected_support(&[0, 2, 4])).abs() < 1e-12);
        // Memory accounting: deltas are 4 bytes per dropped tid; the
        // 4-transaction vectors are one packed chunk (8 per lane + 16
        // directory).
        assert_eq!(d_ac.mem_bytes(), d_ac.len() * 4);
        assert_eq!(ac.num_chunks(), 1);
        assert_eq!(ac.mem_bytes(), ac.len() * 8 + 16);
    }

    /// A dense-chunk intersection round-trips through scratch, and a later
    /// sparse result on the same (dirty) scratch is unharmed by leftovers.
    #[test]
    fn scratch_reuse_across_representation_switches() {
        let all: Vec<(u32, f64)> = (0..24).map(|t| (t, 0.9)).collect();
        let a = build(&all);
        let b = build(&all);
        assert_eq!(a.dense_chunks(), 1);
        let mut scratch = ScratchSpace::new();
        let (esup, ..) = a.intersect_into(&b, &mut scratch);
        assert_eq!(scratch.export().dense_chunks(), 1);
        assert!((esup - 24.0 * 0.81).abs() < 1e-12);
        // Now a tiny packed × packed on the same scratch.
        let c = build(&[(1, 0.5), (5, 0.25)]);
        let d = build(&[(5, 0.5)]);
        let (esup, _, count) = c.intersect_into(&d, &mut scratch);
        assert_eq!(count, 1);
        assert_eq!(scratch.export().nonzero(), vec![(5, 0.125)]);
        assert!((esup - 0.125).abs() < 1e-15);
    }

    /// `diff_extend_into` + `export_diff` ≡ `diff_extend`, and
    /// `apply_diff_into` / `apply_dropped` ≡ `apply_diff`, with buffer
    /// reuse across calls — over all four chunk-layout pairings.
    #[test]
    fn scratch_diff_kernels_match_allocating_twins() {
        let pairs_a = [(0u32, 0.9), (1, TINY), (3, 0.5), (5, 0.7), (7, 0.2)];
        let pairs_b = [(0u32, 0.8), (1, TINY), (2, 0.4), (5, 0.6), (7, 0.1)];
        for a_dense in [false, true] {
            for b_dense in [false, true] {
                let ap = if a_dense {
                    with_filler(&pairs_a, 32..48)
                } else {
                    pairs_a.to_vec()
                };
                let bp = if b_dense {
                    with_filler(&pairs_b, 48..64)
                } else {
                    pairs_b.to_vec()
                };
                // check_kernels covers the equivalences; also pin the
                // dropped set of the unpadded payload.
                check_kernels(&ap, &bp);
            }
        }
        // Dropped: tid 1 (underflow) and tid 3 (absent from b).
        let (diff, ..) = build(&pairs_a).diff_extend(&build(&pairs_b));
        assert_eq!(diff.dropped(), &[1, 3]);
    }

    /// The per-chunk layout rule: packed below 16 nonzeros, positional at
    /// or above — identically for `from_parts` and push-grown vectors —
    /// with lanes-plus-directory byte accounting.
    #[test]
    fn per_chunk_layout_rule() {
        // 15 entries in chunk 0: packed.
        let p15: Vec<(u32, f64)> = (0..15).map(|t| (t, 0.5)).collect();
        let v = build(&p15);
        assert_eq!((v.num_chunks(), v.dense_chunks()), (1, 0));
        assert_eq!(v.mem_units(), 15);
        assert_eq!(v.mem_bytes(), 15 * 8 + 16);
        // 16 entries: positional.
        let p16: Vec<(u32, f64)> = (0..16).map(|t| (t, 0.5)).collect();
        let v = build(&p16);
        assert_eq!((v.num_chunks(), v.dense_chunks()), (1, 1));
        assert_eq!(v.mem_units(), 64);
        assert_eq!(v.mem_bytes(), 64 * 8 + 16);
        // Push-grown vector converts mid-build and matches from_parts.
        let mut pushed = ProbVector::new();
        for &(t, p) in &p16 {
            pushed.push(t, p);
        }
        assert_eq!(pushed, v);
        assert_eq!(pushed.mem_units(), v.mem_units());
        assert_eq!(pushed.mem_bytes(), v.mem_bytes());
        // A second, sparse chunk after a positional one.
        let mut mixed: Vec<(u32, f64)> = p16.clone();
        mixed.push((130, 0.25));
        let v = build(&mixed);
        assert_eq!((v.num_chunks(), v.dense_chunks()), (2, 1));
        assert_eq!(v.mem_units(), 65);
        assert_eq!(v.mem_bytes(), 65 * 8 + 2 * 16);
        assert_eq!(v.nonzero().last(), Some(&(130, 0.25)));
        // The estimate tracks the same rule.
        assert_eq!(
            ProbVector::estimate_mem_bytes(16, 64),
            64 * 8 + 16,
            "dense estimate"
        );
        assert_eq!(
            ProbVector::estimate_mem_bytes(15, 6400),
            15 * 8 + 15 * 16,
            "sparse estimate"
        );
        assert_eq!(ProbVector::estimate_mem_bytes(0, 100), 0);
    }

    /// Chunk-directory galloping (skewed lengths) returns bit-identical
    /// results to the plain merge-join, in both argument orders.
    #[test]
    fn galloping_matches_merge_join_on_skewed_chunks() {
        // Short side: 3 chunks spread far apart. Long side: 1000 chunks.
        let short: Vec<(u32, f64)> = vec![(70, 0.9), (7_001, 0.8), (62_997, 0.7)];
        let long: Vec<(u32, f64)> = (0..64_000u32)
            .step_by(64)
            .map(|t| (t + (t / 64) % 61, 0.6))
            .collect();
        check_kernels(&short, &long);
        check_kernels(&long, &short);
        let (a, b) = (build(&short), build(&long));
        assert!(a.num_chunks() * GALLOP_RATIO < b.num_chunks());
        let fast = a.intersect_stats(&b);
        let slow = a.intersect_stats_merge_join(&b);
        assert_eq!(fast.0.to_bits(), slow.0.to_bits());
        assert_eq!(fast.1.to_bits(), slow.1.to_bits());
        assert_eq!(fast.2, slow.2);
    }

    /// The fixed 4096-tid summation blocks: sums over a >4096-tid vector
    /// match the scalar reference, and multiplying by an all-ones vector
    /// (exact under IEEE-754) reproduces the same bits through the
    /// intersection kernels.
    #[test]
    fn blocked_summation_is_fixed_shape() {
        let pairs: Vec<(u32, f64)> = (0..10_000u32)
            .step_by(3)
            .map(|t| (t, 0.1 + ((t % 89) as f64) / 100.0))
            .collect();
        let v = build(&pairs);
        let (esup, var) = v.moments();
        let (re, rv) = reference::moments(&pairs);
        assert_eq!(esup.to_bits(), re.to_bits());
        assert_eq!(var.to_bits(), rv.to_bits());
        // q × 1.0 is exact, so intersecting with all-ones postings must
        // reproduce the same sums through the kernel path.
        let ones: Vec<(u32, f64)> = (0..10_000u32).map(|t| (t, 1.0)).collect();
        let (ie, iv, ic) = v.intersect_stats(&build(&ones));
        assert_eq!(ie.to_bits(), esup.to_bits());
        assert_eq!(iv.to_bits(), var.to_bits());
        assert_eq!(ic, v.len());
        check_kernels(&pairs, &ones);
    }

    #[test]
    fn shard_plan_geometry() {
        let plan = ShardPlan::for_transactions(100_000);
        assert_eq!(plan.width_chunks(), DEFAULT_SHARD_WIDTH_CHUNKS);
        assert_eq!(plan.width_tids(), 65_536);
        assert_eq!(plan.num_shards(0), 1);
        assert_eq!(plan.num_shards(65_536), 1);
        assert_eq!(plan.num_shards(65_537), 2);
        let w = ShardPlan::with_width_chunks(16);
        assert_eq!(w.width_tids(), 1024);
        assert_eq!(w.shard_of_key(15), 0);
        assert_eq!(w.shard_of_key(16), 1);
        assert_eq!(w.key_range(2), (32, 48));
        // Horizontal normalization rounds up to whole 4096-tid blocks.
        let blk = SUM_BLOCK_TIDS / CHUNK_LANES;
        assert_eq!(w.normalized_to_blocks().width_chunks(), blk);
        assert_eq!(
            ShardPlan::with_width_chunks(blk + 1)
                .normalized_to_blocks()
                .width_chunks(),
            2 * blk
        );
    }

    /// A mid-size synthetic database whose items concentrate in different
    /// tid regions — some shards of an item are empty, which is what the
    /// zone map exists to exploit.
    fn regional_db(n: usize) -> UncertainDatabase {
        let transactions: Vec<Transaction> = (0..n)
            .map(|t| {
                let mut units: Vec<(u32, f64)> = Vec::new();
                // Item 0: everywhere; items 1..4: only in their quarter.
                units.push((0, 0.3 + 0.5 * ((t % 7) as f64 / 6.0)));
                let quarter = (4 * t / n) as u32;
                if t % 3 != 0 {
                    units.push((1 + quarter, 0.2 + 0.6 * ((t % 5) as f64 / 4.0)));
                }
                Transaction::new(units).unwrap()
            })
            .collect();
        UncertainDatabase::with_num_items(transactions, 5)
    }

    #[test]
    fn sharded_index_fragments_and_zones_are_consistent() {
        let db = regional_db(3_000);
        // Small databases under the default plan stay unsharded…
        let unsharded = VerticalIndex::build(&db);
        assert!(!unsharded.is_sharded());
        assert_eq!(unsharded.num_shards(), 1);
        // …but an explicit narrow plan shards them.
        let plan = ShardPlan::with_width_chunks(16); // 1024 tids per shard
        let idx = VerticalIndex::build_with_plan(&db, plan);
        assert!(idx.is_sharded());
        let shards = idx.num_shards();
        assert_eq!(shards, 3_000usize.div_ceil(1024));
        for item in 0..5u32 {
            let whole = idx.postings(item);
            let frags: Vec<&ProbVector> =
                (0..shards).map(|s| idx.shard_postings(item, s)).collect();
            // Fragments partition the postings exactly, layout included.
            let cat = ProbVector::concat_fragments(frags.iter().copied());
            assert_eq!(cat.nonzero(), whole.nonzero());
            assert_eq!(cat.mem_bytes(), whole.mem_bytes());
            // Streamed fragment moments are bit-identical to the whole.
            let (fe, fv, fc) = ProbVector::fragments_moments(frags.iter().copied());
            let (we, wv) = whole.moments();
            assert_eq!(fe.to_bits(), we.to_bits());
            assert_eq!(fv.to_bits(), wv.to_bits());
            assert_eq!(fc, whole.len());
            // Zone cells describe their fragments exactly.
            for (s, f) in frags.iter().enumerate() {
                let z = idx.zone(item, s);
                assert_eq!(z.mass.to_bits(), f.esup().to_bits());
                assert_eq!(z.nonzero as usize, f.len());
                let max = f.nonzero().iter().fold(0.0f64, |m, &(_, q)| m.max(q));
                assert_eq!(z.max_prob.to_bits(), max.to_bits());
                // Key ranges bound the fragment's chunks.
                let (lo, hi) = plan.key_range(s);
                assert!(f.nonzero().iter().all(|&(tid, _)| {
                    let key = tid >> 6;
                    lo <= key && key < hi
                }));
            }
        }
        // Regional items are absent from most shards — the zone map must
        // say so (this is the skip the engines rely on).
        for item in 1..5u32 {
            let empty = (0..shards)
                .filter(|&s| idx.zone(item, s).nonzero == 0)
                .count();
            assert!(empty >= shards / 2, "item {item}: {empty}/{shards} empty");
        }
    }

    /// Zone-map soundness: a shard's zone bounds dominate the true
    /// per-shard contribution of any intersection, and a zone-empty shard
    /// contributes exactly nothing — so skipping it can never flip a
    /// keep/prune verdict.
    #[test]
    fn zone_bounds_dominate_true_shard_contributions() {
        let db = regional_db(3_000);
        let plan = ShardPlan::with_width_chunks(16);
        let idx = VerticalIndex::build_with_plan(&db, plan);
        let shards = idx.num_shards();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a == b {
                    continue;
                }
                let mut total = 0.0f64;
                for s in 0..shards {
                    let (za, zb) = (idx.zone(a, s), idx.zone(b, s));
                    let fa = idx.shard_postings(a, s);
                    let fb = idx.shard_postings(b, s);
                    let (esup, _, count) = fa.intersect_stats(fb);
                    if za.nonzero == 0 || zb.nonzero == 0 {
                        // Exact skip: an empty operand contributes nothing.
                        assert_eq!(esup, 0.0);
                        assert_eq!(count, 0);
                        continue;
                    }
                    let mass_bound = za.mass.min(zb.mass);
                    let pair_bound = za.max_prob * zb.max_prob * za.nonzero.min(zb.nonzero) as f64;
                    assert!(esup <= mass_bound.min(pair_bound) + BOUND_SLACK);
                    assert!(count <= za.nonzero.min(zb.nonzero) as usize);
                    total += esup;
                }
                // The per-shard contributions sum (up to rounding) to the
                // unsharded esup, so a precheck over zone bounds that
                // proves `Σ bounds < thr` proves the candidate infrequent.
                let (full, _, _) = idx.postings(a).intersect_stats(idx.postings(b));
                assert!((total - full).abs() < 1e-9);
            }
        }
    }

    /// Byte-level layout equality: the canonical-layout invariant says two
    /// vectors with the same contents have identical directories and lanes
    /// however they were built.
    fn assert_same_layout(a: &ProbVector, b: &ProbVector, label: &str) {
        assert_eq!(a.keys, b.keys, "{label}: chunk keys");
        assert_eq!(a.masks, b.masks, "{label}: masks");
        assert_eq!(a.ends, b.ends, "{label}: lane offsets");
        assert_eq!(a.nnz, b.nnz, "{label}: nnz");
        let ab: Vec<u64> = a.lanes.iter().map(|p| p.to_bits()).collect();
        let bb: Vec<u64> = b.lanes.iter().map(|p| p.to_bits()).collect();
        assert_eq!(ab, bb, "{label}: lanes");
    }

    /// Point updates keep the canonical layout: after any mix of inserts,
    /// overwrites and removals, the vector is byte-identical to a
    /// `from_parts` rebuild of the same contents — including chunks that
    /// cross the packed↔positional cutoff in either direction, chunk
    /// creation at either end, and chunk removal.
    #[test]
    fn point_updates_preserve_canonical_layout() {
        use std::collections::BTreeMap;
        let mut v = build(&[(70, 0.5), (75, 0.25), (600, 0.9)]);
        let mut model: BTreeMap<u32, f64> = [(70, 0.5), (75, 0.25), (600, 0.9)].into();
        // (tid, Some(prob) = upsert | None = remove); drives chunk 1
        // across the positional cutoff and back, prepends chunk 0,
        // appends chunk 12, empties chunk 9.
        let ops: Vec<(u32, Option<f64>)> = (64..64 + 20)
            .map(|t| (t, Some(0.5 + t as f64 / 1000.0)))
            .chain([
                (3, Some(0.125)),
                (800, Some(0.75)),
                (600, None),
                (75, Some(0.3)),
                (70, None),
                (1, Some(1.0)),
                (999, None), // absent: no-op
            ])
            .chain((64..64 + 18).map(|t| (t, None)))
            .collect();
        for (tid, op) in ops {
            match op {
                Some(p) => {
                    v.insert(tid, p);
                    model.insert(tid, p);
                }
                None => {
                    assert_eq!(v.remove(tid), model.remove(&tid).is_some(), "remove {tid}");
                }
            }
            let pairs: Vec<(u32, f64)> = model.iter().map(|(&t, &p)| (t, p)).collect();
            let rebuilt = build(&pairs);
            assert_same_layout(&v, &rebuilt, "after point update");
            for (&t, &p) in &model {
                assert_eq!(v.get(t).to_bits(), p.to_bits(), "get({t})");
            }
            assert_eq!(v.get(4096), 0.0);
        }
    }

    /// `apply_step` maintains the index byte-identically to a rebuild:
    /// postings, per-shard fragments and zone-map cells all match a
    /// from-scratch `build_with_plan` over the stepped window's snapshot —
    /// including steps that cross shard boundaries and steps that empty a
    /// slot entirely.
    #[test]
    fn apply_step_matches_fresh_build() {
        use crate::window::WindowedDatabase;
        let capacity = 200; // 4 shards at width 1 chunk
        let plan = ShardPlan::with_width_chunks(1);
        let mut w = WindowedDatabase::new(capacity, 6);
        let mut idx = VerticalIndex::build_with_plan(&w.snapshot(), plan);
        assert!(idx.is_sharded());
        // A deterministic ingest mixing appends (wrapping past capacity,
        // so slots are reused across shard boundaries) with expiries.
        let mut x = 12345u64;
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for round in 0..8 {
            for _ in 0..60 {
                let mut units: Vec<(u32, f64)> = Vec::new();
                for i in 0..6u32 {
                    if rng() % 2 == 0 {
                        units.push((i, (rng() % 99 + 1) as f64 / 100.0));
                    }
                }
                w.append(Transaction::new(units).unwrap());
            }
            if round % 2 == 1 {
                w.expire_oldest(90);
            }
            let step = w.take_step();
            idx.apply_step(&step);
            let fresh = VerticalIndex::build_with_plan(&w.snapshot(), plan);
            assert_eq!(idx.num_shards(), fresh.num_shards());
            for item in 0..6u32 {
                assert_same_layout(
                    idx.postings(item),
                    fresh.postings(item),
                    &format!("postings[{item}] round {round}"),
                );
                for s in 0..idx.num_shards() {
                    assert_same_layout(
                        idx.shard_postings(item, s),
                        fresh.shard_postings(item, s),
                        &format!("frag[{item}][{s}] round {round}"),
                    );
                    let (a, b) = (idx.zone(item, s), fresh.zone(item, s));
                    assert_eq!(a.mass.to_bits(), b.mass.to_bits(), "zone mass");
                    assert_eq!(a.max_prob.to_bits(), b.max_prob.to_bits(), "zone max");
                    assert_eq!(a.nonzero, b.nonzero, "zone nonzero");
                }
            }
        }
    }

    /// Model-checked batch patch: `apply_tid_delta` must leave the vector
    /// byte-identical to a `from_parts` rebuild of the updated contents,
    /// and a `BlockMoments::refresh` over the touched blocks must leave
    /// the retained partials structurally equal to a cold
    /// `BlockMoments::of` — so `fold()` is bit-identical to a cold
    /// re-fold.
    fn check_tid_delta(
        v: &mut ProbVector,
        model: &mut std::collections::BTreeMap<u32, f64>,
        moments: &mut BlockMoments,
        updates: &[(u32, f64)],
        label: &str,
    ) {
        v.apply_tid_delta(updates);
        for &(tid, p) in updates {
            if p > 0.0 {
                model.insert(tid, p);
            } else {
                model.remove(&tid);
            }
        }
        let pairs: Vec<(u32, f64)> = model.iter().map(|(&t, &p)| (t, p)).collect();
        let rebuilt = build(&pairs);
        assert_same_layout(v, &rebuilt, label);
        let mut blocks: Vec<u32> = updates
            .iter()
            .map(|&(t, _)| BlockMoments::block_of_tid(t))
            .collect();
        blocks.dedup();
        moments.refresh(v, &blocks);
        assert_eq!(*moments, BlockMoments::of(v), "{label}: refreshed partials");
        let (esup, var, count) = moments.fold();
        let (we, wv) = v.moments();
        assert_eq!(esup.to_bits(), we.to_bits(), "{label}: folded esup");
        assert_eq!(var.to_bits(), wv.to_bits(), "{label}: folded var");
        assert_eq!(count, v.len(), "{label}: folded count");
    }

    /// Batched point updates keep the canonical layout and the retained
    /// block partials bit-exact across chunk creation/removal, cutoff
    /// crossings in both directions, multi-block vectors, no-op removals
    /// and full expiry of a block.
    #[test]
    fn tid_delta_patches_match_cold_rebuild() {
        use std::collections::BTreeMap;
        let seed: Vec<(u32, f64)> = (0..40u32)
            .map(|i| (i * 7, 0.25 + (i % 4) as f64 / 8.0))
            .chain((4096..4096 + 30).map(|t| (t, 0.5)))
            .chain([(9000, 0.9), (9001, 0.8)])
            .collect();
        let mut v = build(&seed);
        let mut model: BTreeMap<u32, f64> = seed.iter().copied().collect();
        let mut moments = BlockMoments::of(&v);
        let (e0, v0) = v.moments();
        let f0 = moments.fold();
        assert_eq!(f0.0.to_bits(), e0.to_bits());
        assert_eq!(f0.1.to_bits(), v0.to_bits());
        assert_eq!(f0.2, v.len());

        // Mixed upserts/removals across three blocks, including a chunk
        // that crosses the positional cutoff and a brand-new chunk.
        let batch1: Vec<(u32, f64)> = (64..64 + 20)
            .map(|t| (t, 0.5 + t as f64 / 1000.0))
            .chain([(273, 0.0), (4096, 0.0), (4100, 0.75), (8191, 0.3)])
            .collect();
        check_tid_delta(&mut v, &mut model, &mut moments, &batch1, "batch1");

        // Retract the dense run again (cutoff crossing back down), empty
        // block 2 entirely, and touch an absent tid (no-op removal).
        let batch2: Vec<(u32, f64)> = (64..64 + 20)
            .map(|t| (t, 0.0))
            .chain([(8191, 0.0), (9000, 0.0), (9001, 0.0), (10000, 0.0)])
            .collect();
        check_tid_delta(&mut v, &mut model, &mut moments, &batch2, "batch2");

        // Arrive-and-expire cancellation: insert then remove in separate
        // batches lands back on the original bits.
        check_tid_delta(&mut v, &mut model, &mut moments, &[(500, 0.5)], "arrive");
        check_tid_delta(&mut v, &mut model, &mut moments, &[(500, 0.0)], "cancel");

        // Full expiry of everything that remains.
        let all: Vec<(u32, f64)> = model.keys().map(|&t| (t, 0.0)).collect();
        check_tid_delta(&mut v, &mut model, &mut moments, &all, "full expiry");
        assert!(v.is_empty());
        assert_eq!(moments, BlockMoments::default());

        // Refill an emptied vector.
        let refill: Vec<(u32, f64)> = (0..200u32).map(|t| (t * 3, 0.6)).collect();
        check_tid_delta(&mut v, &mut model, &mut moments, &refill, "refill");

        // `retract_tid` is the single-point twin.
        assert!(v.retract_tid(0));
        assert!(!v.retract_tid(1));
        model.remove(&0);
        let pairs: Vec<(u32, f64)> = model.iter().map(|(&t, &p)| (t, p)).collect();
        assert_same_layout(&v, &build(&pairs), "retract_tid");
    }

    /// The block-recording diff-extend matches its plain twin bit for bit
    /// and records exactly the partials of the materialized child; a
    /// touched-block `refresh` fed from `restrict_to_blocks` fragments
    /// reproduces them after a patch.
    #[test]
    fn diff_extend_blocks_matches_plain_twin() {
        let a_pairs: Vec<(u32, f64)> = (0..600u32)
            .map(|t| (t * 9, 0.3 + (t % 5) as f64 / 10.0))
            .collect();
        let b_pairs: Vec<(u32, f64)> = (0..900u32)
            .map(|t| (t * 6, 0.2 + (t % 7) as f64 / 10.0))
            .collect();
        let a = build(&a_pairs);
        let b = build(&b_pairs);
        let mut scratch = ScratchSpace::new();
        let (diff, e, vr, c) = a.diff_extend(&b);
        let (blocks, be, bv, bc) = a.diff_extend_blocks_into(&b, &mut scratch);
        assert_eq!(be.to_bits(), e.to_bits(), "blocks esup");
        assert_eq!(bv.to_bits(), vr.to_bits(), "blocks var");
        assert_eq!(bc, c, "blocks count");
        assert_eq!(scratch.export_diff(), diff, "blocks dropped set");
        let child = a.apply_diff(&diff, &b);
        assert_eq!(blocks, BlockMoments::of(&child), "recorded partials");

        // Patch the child in two blocks and refresh from restricted
        // fragments only — partials must equal a cold rebuild's.
        let mut patched = child.clone();
        patched.apply_tid_delta(&[(54, 0.0), (4098, 0.9), (5000, 0.5)]);
        let mut m = blocks.clone();
        let touched = [0u32, 1u32];
        let frag = patched.restrict_to_blocks(&touched);
        assert_eq!(
            frag.nonzero(),
            patched
                .nonzero()
                .into_iter()
                .filter(|&(t, _)| BlockMoments::block_of_tid(t) <= 1)
                .collect::<Vec<_>>(),
            "restricted fragment contents"
        );
        m.refresh(&frag, &touched);
        assert_eq!(m, BlockMoments::of(&patched), "refresh from fragment");
    }

    /// `DiffVector::apply_tid_delta` reproduces the delta a cold
    /// `diff_extend` over the stepped operands would emit.
    #[test]
    fn diff_vector_delta_matches_cold_extend() {
        let a = build(&[(0, 0.5), (3, 0.25), (10, 0.9), (70, 0.8), (100, 0.6)]);
        let b = build(&[(0, 0.5), (10, 0.7), (70, 0.4), (200, 0.9)]);
        let (mut diff, ..) = a.diff_extend(&b); // dropped: 3, 100
        assert_eq!(diff.dropped(), &[3, 100]);
        // Step: tid 3 gains a postings entry (survives now), tid 10 loses
        // its entry (dropped now), tid 100 leaves the prefix entirely,
        // tid 150 is a no-op confirmation of absence.
        let mut a2 = a.clone();
        a2.apply_tid_delta(&[(100, 0.0)]);
        let mut b2 = b.clone();
        b2.apply_tid_delta(&[(3, 0.5), (10, 0.0)]);
        diff.apply_tid_delta(&[(3, false), (10, true), (100, false), (150, false)]);
        let (cold, ..) = a2.diff_extend(&b2);
        assert_eq!(diff, cold, "patched delta chain");
        assert_eq!(
            a2.apply_diff(&diff, &b2).nonzero(),
            a2.intersect(&b2).nonzero(),
            "patched chain resolves"
        );
    }

    mod proptests {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// Random sorted `(tid, prob)` lists: tids drawn from `0..max_tid`
        /// (deduped), probs mixing the ordinary range with underflow-prone
        /// magnitudes.
        fn arb_pairs(max_tid: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, f64)>> {
            vec((0..max_tid, 0u8..8, 1e-3f64..=1.0), 0..max_len).prop_map(|raw| {
                let mut pairs: Vec<(u32, f64)> = raw
                    .into_iter()
                    .map(|(tid, sel, p)| {
                        let prob = match sel {
                            0 => 1e-200,
                            1 => 1e-160,
                            _ => p,
                        };
                        (tid, prob)
                    })
                    .collect();
                pairs.sort_by_key(|e| e.0);
                pairs.dedup_by_key(|e| e.0);
                pairs
            })
        }

        /// Asserts the shard seam is exact for one operand pair at one
        /// width: fragments partition each vector (layout included),
        /// streamed fragment moments match the whole bitwise, and
        /// per-shard intersections merge — by concatenation *and* by
        /// streaming — bit-identical to the unsharded kernels.
        fn check_partition(a_pairs: &[(u32, f64)], b_pairs: &[(u32, f64)], width_chunks: usize) {
            let (a, b) = (build(a_pairs), build(b_pairs));
            let plan = ShardPlan::with_width_chunks(width_chunks);
            let max_tid = a_pairs
                .iter()
                .chain(b_pairs)
                .map(|e| e.0)
                .max()
                .unwrap_or(0);
            let shards = plan.num_shards(max_tid as usize + 1);
            let af = a.split_by_plan(&plan, shards);
            let bf = b.split_by_plan(&plan, shards);
            let cat = ProbVector::concat_fragments(af.iter());
            assert_eq!(cat.nonzero(), a.nonzero());
            assert_eq!(cat.mem_bytes(), a.mem_bytes());
            let (fe, fv, fc) = ProbVector::fragments_moments(af.iter());
            let (we, wv) = a.moments();
            assert_eq!(fe.to_bits(), we.to_bits());
            assert_eq!(fv.to_bits(), wv.to_bits());
            assert_eq!(fc, a.len());
            let full = a.intersect(&b);
            let parts: Vec<ProbVector> = (0..shards).map(|s| af[s].intersect(&bf[s])).collect();
            let merged = ProbVector::concat_fragments(parts.iter());
            assert_eq!(merged.nonzero(), full.nonzero());
            assert_eq!(merged.mem_bytes(), full.mem_bytes());
            let (me, mv, mc) = ProbVector::fragments_moments(parts.iter());
            let (se, sv, sc) = a.intersect_stats(&b);
            assert_eq!(me.to_bits(), se.to_bits());
            assert_eq!(mv.to_bits(), sv.to_bits());
            assert_eq!(mc, sc);
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            // Any shard partition — 1-chunk shards, 16-chunk shards, or
            // one full-width shard — merges bit-identical to unsharded
            // evaluation (the tentpole's seam invariant).
            #[test]
            fn shard_partition_merges_bit_identical(
                a in arb_pairs(20_000, 300),
                b in arb_pairs(20_000, 300),
            ) {
                for width in [1usize, 16, 1024] {
                    check_partition(&a, &b, width);
                }
            }

            // Dense-leaning single-block regime: chunks cross the
            // positional cutoff, sums stay within one block.
            #[test]
            fn kernels_match_reference_dense(
                a in arb_pairs(256, 200),
                b in arb_pairs(256, 200),
            ) {
                check_kernels(&a, &b);
            }

            // Sparse multi-block regime: packed chunks spread over
            // several 4096-tid summation blocks.
            #[test]
            fn kernels_match_reference_sparse(
                a in arb_pairs(20_000, 120),
                b in arb_pairs(20_000, 400),
            ) {
                check_kernels(&a, &b);
            }

            // Skewed regime: directory length ratios that trigger
            // galloping, mixed chunk layouts on the long side.
            #[test]
            fn kernels_match_reference_skewed(
                a in arb_pairs(60_000, 10),
                b in arb_pairs(60_000, 1500),
            ) {
                check_kernels(&a, &b);
                check_kernels(&b, &a);
            }

            // Random patch scripts: batched point updates stay
            // byte-identical to cold rebuilds and keep refreshed block
            // partials bit-equal to a cold re-fold, across several
            // summation blocks and both chunk layouts.
            #[test]
            fn tid_delta_scripts_match_cold_rebuild(
                seed_pairs in arb_pairs(12_288, 400),
                scripts in vec(vec((0u32..12_288, 0u8..3, 1e-3f64..=1.0), 1..60), 1..5),
            ) {
                let mut v = build(&seed_pairs);
                let mut model: std::collections::BTreeMap<u32, f64> =
                    seed_pairs.iter().copied().collect();
                let mut moments = BlockMoments::of(&v);
                for raw in scripts {
                    let mut updates: Vec<(u32, f64)> = raw
                        .into_iter()
                        .map(|(tid, sel, p)| {
                            let prob = match sel {
                                0 => 0.0, // removal (maybe of an absent tid)
                                1 => 1e-200,
                                _ => p,
                            };
                            (tid, prob)
                        })
                        .collect();
                    updates.sort_by_key(|e| e.0);
                    updates.dedup_by_key(|e| e.0);
                    check_tid_delta(&mut v, &mut model, &mut moments, &updates, "script");
                }
            }
        }
    }
}
