//! Mining outputs: discovered itemsets with their support statistics, plus
//! per-run algorithm counters.

use crate::itemset::Itemset;
use std::fmt;

/// One discovered frequent itemset with the statistics the discovering
/// algorithm computed for it.
///
/// Not every algorithm fills every field: expected-support miners leave
/// `frequent_prob` as `None`; PDUApriori (paper §3.3.1) decides membership
/// through the Poisson CDF but "cannot return the frequent probability
/// values", so it too reports `None`.
#[derive(Clone, Debug, PartialEq)]
pub struct FrequentItemset {
    /// The itemset.
    pub itemset: Itemset,
    /// Expected support `esup(X) = Σ_t P_t(X)`.
    pub expected_support: f64,
    /// Variance of `sup(X)` when the algorithm computed it
    /// (Normal-approximation miners always do).
    pub variance: Option<f64>,
    /// Frequent probability `Pr{sup(X) ≥ msup}` when computed — exact for
    /// DP/DC, approximate for the Normal-based miners.
    pub frequent_prob: Option<f64>,
}

impl FrequentItemset {
    /// An expected-support-only record.
    pub fn with_esup(itemset: Itemset, esup: f64) -> Self {
        FrequentItemset {
            itemset,
            expected_support: esup,
            variance: None,
            frequent_prob: None,
        }
    }
}

/// Counters describing the work an algorithm performed. These power the
/// paper's qualitative analyses (e.g. "most infrequent itemsets are filtered
/// by the Chernoff bound"), and the ablation benches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MinerStats {
    /// Candidates whose support statistics were evaluated.
    pub candidates_evaluated: u64,
    /// Candidates rejected by structural pruning (Apriori subset pruning,
    /// lookahead, etc.) before any support evaluation.
    pub candidates_pruned_structural: u64,
    /// Candidates rejected by the Chernoff bound (exact probabilistic miners
    /// only, §3.2.3).
    pub candidates_pruned_chernoff: u64,
    /// Candidates rejected by the zero-support count shortcut
    /// (fewer than `msup` transactions with nonzero containment probability).
    pub candidates_pruned_count: u64,
    /// Exact frequent-probability evaluations performed (DP or DC runs).
    pub exact_evaluations: u64,
    /// Number of database or projection scans.
    pub scans: u64,
    /// Tid-list intersections performed (vertical backend only — the
    /// vertical analog of `scans`).
    pub intersections: u64,
    /// Peak size of the algorithm's auxiliary structure, in that
    /// structure's own units: UFP-tree nodes, UH-Struct cells, or — on the
    /// columnar support engines — memoized `(tid, prob)` units (vertical)
    /// or dropped tids (diffset). Comparable within one algorithm/backend,
    /// not across them.
    pub peak_structure_nodes: u64,
    /// Peak **bytes** of a memoizing support engine's prefix memo
    /// (level-wise runs only; 0 elsewhere). Unlike
    /// [`MinerStats::peak_structure_nodes`], this is byte-accurate and
    /// directly comparable across backends — the vertical-vs-diffset
    /// memory axis.
    pub peak_memo_bytes: u64,
    /// Per-shard kernel evaluations performed by a sharded support engine
    /// (one per candidate × non-skipped shard; 0 on unsharded runs).
    pub shards_evaluated: u64,
    /// Shard evaluations skipped by the zone maps: shards where an operand
    /// is provably empty, plus every shard of a candidate the zone
    /// precheck pruned whole (0 on unsharded runs).
    pub shards_pruned: u64,
    /// Border itemsets fully re-judged during an incremental window step:
    /// tracked itemsets a dirty transaction touched whose support bounds
    /// could not rule out a threshold crossing (0 on batch runs).
    pub border_rejudged: u64,
    /// Border itemsets skipped during an incremental window step — either
    /// untouched by every dirty transaction or ruled out by their
    /// maintained support bounds without re-evaluation (0 on batch runs).
    pub border_skipped: u64,
    /// Retained memo nodes a window step point-updated in place (touched
    /// chunks rewritten, cached block partials re-folded; 0 on batch runs).
    pub memo_patched: u64,
    /// Retained memo nodes a window step evicted instead of patching —
    /// the step changed too much of the node, or the node carried no
    /// patchable block partials; the next use re-folds it cold (0 on
    /// batch runs).
    pub memo_rebuilt: u64,
}

impl MinerStats {
    /// Merges counters from a sub-phase into `self`.
    pub fn absorb(&mut self, other: &MinerStats) {
        self.candidates_evaluated += other.candidates_evaluated;
        self.candidates_pruned_structural += other.candidates_pruned_structural;
        self.candidates_pruned_chernoff += other.candidates_pruned_chernoff;
        self.candidates_pruned_count += other.candidates_pruned_count;
        self.exact_evaluations += other.exact_evaluations;
        self.scans += other.scans;
        self.intersections += other.intersections;
        self.peak_structure_nodes = self.peak_structure_nodes.max(other.peak_structure_nodes);
        self.peak_memo_bytes = self.peak_memo_bytes.max(other.peak_memo_bytes);
        self.shards_evaluated += other.shards_evaluated;
        self.shards_pruned += other.shards_pruned;
        self.border_rejudged += other.border_rejudged;
        self.border_skipped += other.border_skipped;
        self.memo_patched += other.memo_patched;
        self.memo_rebuilt += other.memo_rebuilt;
    }
}

/// The complete result of one mining run.
#[derive(Clone, Debug, Default)]
pub struct MiningResult {
    /// All frequent itemsets found, in no particular order.
    pub itemsets: Vec<FrequentItemset>,
    /// Work counters.
    pub stats: MinerStats,
}

impl MiningResult {
    /// Number of frequent itemsets found.
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// True when nothing was frequent.
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }

    /// The discovered itemsets as a sorted list (canonical order for
    /// comparisons between algorithms).
    pub fn sorted_itemsets(&self) -> Vec<Itemset> {
        let mut v: Vec<Itemset> = self.itemsets.iter().map(|f| f.itemset.clone()).collect();
        v.sort();
        v
    }

    /// Looks up the record for a specific itemset.
    pub fn get(&self, itemset: &Itemset) -> Option<&FrequentItemset> {
        self.itemsets.iter().find(|f| &f.itemset == itemset)
    }

    /// Largest cardinality among discovered itemsets (0 when empty).
    pub fn max_len(&self) -> usize {
        self.itemsets
            .iter()
            .map(|f| f.itemset.len())
            .max()
            .unwrap_or(0)
    }

    /// Sorts records in place by itemset (stable canonical presentation).
    pub fn canonicalize(&mut self) {
        self.itemsets.sort_by(|a, b| a.itemset.cmp(&b.itemset));
    }
}

impl fmt::Display for MiningResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} frequent itemsets", self.itemsets.len())?;
        let mut sorted = self.itemsets.clone();
        sorted.sort_by(|a, b| a.itemset.cmp(&b.itemset));
        for fi in &sorted {
            write!(f, "  {}  esup={:.4}", fi.itemset, fi.expected_support)?;
            if let Some(v) = fi.variance {
                write!(f, "  var={v:.4}")?;
            }
            if let Some(p) = fi.frequent_prob {
                write!(f, "  Pr={p:.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MiningResult {
        MiningResult {
            itemsets: vec![
                FrequentItemset::with_esup(Itemset::from_items([2]), 2.6),
                FrequentItemset {
                    itemset: Itemset::from_items([0]),
                    expected_support: 2.1,
                    variance: Some(0.57),
                    frequent_prob: Some(0.72),
                },
            ],
            stats: MinerStats::default(),
        }
    }

    #[test]
    fn sorted_itemsets_are_canonical() {
        let r = sample();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::from_items([0]), Itemset::from_items([2])]
        );
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.max_len(), 1);
    }

    #[test]
    fn get_finds_record() {
        let r = sample();
        let a = r.get(&Itemset::from_items([0])).unwrap();
        assert_eq!(a.frequent_prob, Some(0.72));
        assert!(r.get(&Itemset::from_items([9])).is_none());
    }

    #[test]
    fn canonicalize_sorts_in_place() {
        let mut r = sample();
        r.canonicalize();
        assert_eq!(r.itemsets[0].itemset, Itemset::from_items([0]));
    }

    #[test]
    fn display_lists_itemsets() {
        let s = sample().to_string();
        assert!(s.contains("2 frequent itemsets"));
        assert!(s.contains("{0}"));
        assert!(s.contains("Pr=0.7200"));
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = MinerStats {
            candidates_evaluated: 3,
            peak_structure_nodes: 10,
            ..Default::default()
        };
        let b = MinerStats {
            candidates_evaluated: 2,
            candidates_pruned_chernoff: 5,
            peak_structure_nodes: 7,
            border_rejudged: 4,
            border_skipped: 9,
            memo_patched: 6,
            memo_rebuilt: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.candidates_evaluated, 5);
        assert_eq!(a.candidates_pruned_chernoff, 5);
        assert_eq!(a.peak_structure_nodes, 10);
        assert_eq!(a.border_rejudged, 4);
        assert_eq!(a.border_skipped, 9);
        assert_eq!(a.memo_patched, 6);
        assert_eq!(a.memo_rebuilt, 2);
    }
}
