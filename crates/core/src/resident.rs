//! Shared residency for cross-query reuse: a concurrency-safe,
//! byte-budgeted LRU of immutable snapshots.
//!
//! The query-serving layer keeps expensive derived structures — mined
//! frequent lattices, columnar indexes — *resident* between queries so a
//! request that is covered by earlier work answers without recomputation.
//! [`ResidentLru`] is the shared handle that makes that safe under
//! concurrency inside the workspace's `#![forbid(unsafe_code)]` boundary:
//!
//! * values are stored as [`Arc`] snapshots — readers clone the `Arc` under
//!   a short mutex hold and then work lock-free on an immutable value;
//! * writers replace whole entries (insert-new / swap), never mutate in
//!   place, so a query that raced an eviction or an extension keeps a
//!   consistent snapshot for its entire lifetime;
//! * residency is bounded by a **byte budget** in the same spirit as
//!   [`MinerStats::peak_memo_bytes`](crate::MinerStats::peak_memo_bytes)
//!   accounting: every entry declares its byte weight, and inserting past
//!   the budget evicts least-recently-used entries (the entry being
//!   inserted is always admitted, so one oversized value degrades to a
//!   one-entry cache instead of thrashing to zero).

use crate::hash::FxHashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// One resident entry: the snapshot, its declared weight, and its
/// recency tick.
struct Entry<V> {
    value: Arc<V>,
    bytes: u64,
    tick: u64,
}

/// Aggregate observability counters of one [`ResidentLru`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidentStats {
    /// Lookups that found a resident snapshot.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (first residency of a key).
    pub inserts: u64,
    /// Entries replaced in place (same key, new snapshot).
    pub replacements: u64,
    /// Entries evicted to satisfy the byte budget.
    pub evictions: u64,
}

/// The mutable inside of the cache, guarded by one mutex.
struct Inner<K, V> {
    entries: FxHashMap<K, Entry<V>>,
    bytes: u64,
    clock: u64,
    stats: ResidentStats,
}

/// A thread-safe LRU cache of [`Arc`] snapshots under a byte budget.
///
/// Locking discipline: every operation takes the internal mutex only long
/// enough to clone an `Arc` or splice an entry; no user code (hashing of
/// keys aside) runs under the lock. Suitable for sharing across server
/// worker threads via `Arc<ResidentLru<..>>`.
///
/// ```
/// use ufim_core::resident::ResidentLru;
///
/// let cache: ResidentLru<&str, Vec<u32>> = ResidentLru::new(64);
/// cache.insert("a", vec![1, 2, 3], 24);
/// assert_eq!(cache.get(&"a").as_deref(), Some(&vec![1, 2, 3]));
/// // Inserting past the 64-byte budget evicts the least recently used.
/// cache.insert("b", vec![4], 48);
/// assert!(cache.get(&"a").is_none());
/// assert!(cache.get(&"b").is_some());
/// ```
pub struct ResidentLru<K, V> {
    budget: u64,
    inner: Mutex<Inner<K, V>>,
}

impl<K: Eq + Hash + Clone, V> ResidentLru<K, V> {
    /// An empty cache bounded by `budget_bytes` of declared entry weight.
    pub fn new(budget_bytes: u64) -> Self {
        ResidentLru {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                entries: FxHashMap::default(),
                bytes: 0,
                clock: 0,
                stats: ResidentStats::default(),
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Looks a snapshot up, bumping its recency on a hit.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().expect("resident cache poisoned");
        inner.clock += 1;
        let tick = inner.clock;
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.tick = tick;
                let v = Arc::clone(&e.value);
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Installs (or replaces) the snapshot for `key` with declared weight
    /// `bytes`, evicting least-recently-used *other* entries until the
    /// budget holds again, and returns the shared handle. The inserted
    /// entry itself is never evicted by its own insertion.
    pub fn insert(&self, key: K, value: V, bytes: u64) -> Arc<V> {
        let value = Arc::new(value);
        let mut inner = self.inner.lock().expect("resident cache poisoned");
        inner.clock += 1;
        let tick = inner.clock;
        let entry = Entry {
            value: Arc::clone(&value),
            bytes,
            tick,
        };
        match inner.entries.insert(key.clone(), entry) {
            Some(old) => {
                inner.bytes -= old.bytes;
                inner.stats.replacements += 1;
            }
            None => inner.stats.inserts += 1,
        }
        inner.bytes += bytes;
        while inner.bytes > self.budget && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(e) = inner.entries.remove(&victim) {
                inner.bytes -= e.bytes;
                inner.stats.evictions += 1;
            }
        }
        value
    }

    /// Drops the entry for `key`, if resident.
    pub fn remove(&self, key: &K) -> bool {
        let mut inner = self.inner.lock().expect("resident cache poisoned");
        match inner.entries.remove(key) {
            Some(e) => {
                inner.bytes -= e.bytes;
                true
            }
            None => false,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("resident cache poisoned")
            .entries
            .len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of the declared byte weights of all resident entries.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().expect("resident cache poisoned").bytes
    }

    /// A copy of the aggregate counters.
    pub fn stats(&self) -> ResidentStats {
        self.inner.lock().expect("resident cache poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let c: ResidentLru<u32, String> = ResidentLru::new(1000);
        assert!(c.is_empty());
        assert!(c.get(&1).is_none());
        c.insert(1, "one".into(), 100);
        assert_eq!(c.get(&1).as_deref().map(String::as_str), Some("one"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 100);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn replacement_swaps_bytes_not_entries() {
        let c: ResidentLru<u32, u32> = ResidentLru::new(1000);
        c.insert(7, 1, 400);
        let old = c.get(&7).unwrap();
        c.insert(7, 2, 100);
        // The old snapshot stays valid for holders; the cache serves the new.
        assert_eq!(*old, 1);
        assert_eq!(*c.get(&7).unwrap(), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 100);
        assert_eq!(c.stats().replacements, 1);
    }

    #[test]
    fn lru_eviction_respects_recency_and_keeps_newest() {
        let c: ResidentLru<&str, u32> = ResidentLru::new(300);
        c.insert("a", 1, 100);
        c.insert("b", 2, 100);
        c.insert("c", 3, 100);
        // Touch "a" so "b" is now least recently used.
        assert!(c.get(&"a").is_some());
        c.insert("d", 4, 100);
        assert!(c.get(&"b").is_none(), "LRU entry must be the victim");
        assert!(c.get(&"a").is_some() && c.get(&"c").is_some() && c.get(&"d").is_some());
        assert_eq!(c.stats().evictions, 1);
        // An oversized insert evicts everything else but is itself admitted.
        c.insert("huge", 9, 10_000);
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get(&"huge").unwrap(), 9);
    }

    #[test]
    fn remove_frees_bytes() {
        let c: ResidentLru<u8, u8> = ResidentLru::new(100);
        c.insert(1, 1, 60);
        assert!(c.remove(&1));
        assert!(!c.remove(&1));
        assert_eq!(c.resident_bytes(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let c = std::sync::Arc::new(ResidentLru::<u32, Vec<u32>>::new(10_000));
        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let key = (t * 7 + i) % 13;
                        if i % 3 == 0 {
                            c.insert(key, vec![key; 4], 64);
                        } else if let Some(v) = c.get(&key) {
                            assert!(v.iter().all(|&x| x == key));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(c.resident_bytes() <= 10_000);
    }
}
