//! The two mining interfaces corresponding to the paper's two definitions of
//! "frequent itemset over an uncertain database".

use crate::database::UncertainDatabase;
use crate::error::CoreError;
use crate::params::{MiningParams, Ratio};
use crate::result::MiningResult;

/// Descriptive metadata every miner exposes, used by the harness and the
/// algorithm registry.
pub trait MinerInfo {
    /// Short stable identifier, e.g. `"UApriori"`, `"DCB"`.
    fn name(&self) -> &'static str;
    /// One-line description (search strategy / data structure, as in the
    /// paper's Table 3 and Table 5).
    fn description(&self) -> &'static str {
        ""
    }
}

/// An algorithm mining **expected-support-based frequent itemsets**
/// (Definition 2): all `X` with `esup(X) ≥ N · min_esup`.
///
/// Implementors in this workspace: `UApriori`, `UFPGrowth`, `UHMine`
/// (paper §3.1).
pub trait ExpectedSupportMiner: MinerInfo {
    /// Mines all expected-support-based frequent itemsets.
    ///
    /// # Errors
    /// Propagates parameter validation failures; an empty database is not an
    /// error and yields an empty result.
    fn mine_expected(
        &self,
        db: &UncertainDatabase,
        min_esup: Ratio,
    ) -> Result<MiningResult, CoreError>;

    /// Convenience wrapper validating the raw ratio.
    fn mine_expected_ratio(
        &self,
        db: &UncertainDatabase,
        min_esup: f64,
    ) -> Result<MiningResult, CoreError> {
        self.mine_expected(db, Ratio::new("min_esup", min_esup)?)
    }
}

/// An algorithm mining **probabilistic frequent itemsets** (Definition 4):
/// all `X` with `Pr{sup(X) ≥ ⌈N·min_sup⌉} > pft`.
///
/// Implementors: the exact miners `DP`/`DC` (±Chernoff pruning, §3.2) and the
/// approximate miners `PDUApriori`, `NDUApriori`, `NDUHMine` (§3.3).
pub trait ProbabilisticMiner: MinerInfo {
    /// Mines all probabilistic frequent itemsets under `params`.
    ///
    /// # Errors
    /// Propagates parameter validation failures; an empty database yields an
    /// empty result.
    fn mine_probabilistic(
        &self,
        db: &UncertainDatabase,
        params: MiningParams,
    ) -> Result<MiningResult, CoreError>;

    /// Convenience wrapper validating raw ratios.
    fn mine_probabilistic_raw(
        &self,
        db: &UncertainDatabase,
        min_sup: f64,
        pft: f64,
    ) -> Result<MiningResult, CoreError> {
        self.mine_probabilistic(db, MiningParams::new(min_sup, pft)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemset::Itemset;
    use crate::result::FrequentItemset;

    /// A trivial miner returning singletons above the threshold, used only to
    /// exercise the trait plumbing and default methods.
    struct NaiveSingletons;

    impl MinerInfo for NaiveSingletons {
        fn name(&self) -> &'static str {
            "NaiveSingletons"
        }
    }

    impl ExpectedSupportMiner for NaiveSingletons {
        fn mine_expected(
            &self,
            db: &UncertainDatabase,
            min_esup: Ratio,
        ) -> Result<MiningResult, CoreError> {
            let threshold = min_esup.threshold_real(db.num_transactions());
            let mut out = MiningResult::default();
            for (item, esup) in db.item_expected_supports().into_iter().enumerate() {
                if esup >= threshold {
                    out.itemsets.push(FrequentItemset::with_esup(
                        Itemset::singleton(item as u32),
                        esup,
                    ));
                }
            }
            Ok(out)
        }
    }

    #[test]
    fn trait_plumbing_works_on_paper_example() {
        let db = crate::examples::paper_table1();
        let r = NaiveSingletons.mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::singleton(0), Itemset::singleton(2)]
        );
        assert_eq!(NaiveSingletons.name(), "NaiveSingletons");
        assert_eq!(NaiveSingletons.description(), "");
    }

    #[test]
    fn invalid_ratio_is_rejected_by_wrapper() {
        let db = crate::examples::paper_table1();
        assert!(NaiveSingletons.mine_expected_ratio(&db, 0.0).is_err());
        assert!(NaiveSingletons.mine_expected_ratio(&db, 1.1).is_err());
    }
}
