//! Error type shared by the core data model.

use std::fmt;

/// Errors raised while building or validating the core data model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A probability was outside the half-open interval `(0, 1]`.
    ///
    /// A unit with probability zero is semantically identical to the item
    /// being absent from the transaction, so the model rejects it instead of
    /// silently keeping dead weight; values above one are not probabilities.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A threshold ratio (`min_sup`, `min_esup`, or `pft`) was outside `(0, 1]`.
    InvalidRatio {
        /// Human-readable name of the parameter (e.g. `"min_sup"`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A transaction contained the same item twice.
    DuplicateItem {
        /// The duplicated item id.
        item: u32,
    },
    /// An operation that requires a non-empty database got an empty one.
    EmptyDatabase,
    /// A malformed input line was encountered while parsing an external
    /// format (kept in core so data/miners can share it).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A measure × traversal combination that cannot exist: the traversal's
    /// data structure does not supply the statistics the measure judges on
    /// (e.g. exact measures need per-transaction probability vectors, which
    /// the UFP-tree's node aggregation destroys).
    UnsupportedCombination {
        /// The measure's stable name.
        measure: &'static str,
        /// The traversal's stable name.
        traversal: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidProbability { value } => {
                write!(f, "probability {value} is outside (0, 1]")
            }
            CoreError::InvalidRatio { name, value } => {
                write!(f, "{name} = {value} is outside (0, 1]")
            }
            CoreError::DuplicateItem { item } => {
                write!(f, "transaction contains item {item} more than once")
            }
            CoreError::EmptyDatabase => write!(f, "operation requires a non-empty database"),
            CoreError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CoreError::UnsupportedCombination { measure, traversal } => {
                write!(
                    f,
                    "the {measure} measure cannot run on the {traversal} traversal"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::InvalidProbability { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = CoreError::InvalidRatio {
            name: "min_sup",
            value: 0.0,
        };
        assert!(e.to_string().contains("min_sup"));
        let e = CoreError::DuplicateItem { item: 7 };
        assert!(e.to_string().contains('7'));
        let e = CoreError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(CoreError::EmptyDatabase.to_string().contains("non-empty"));
        let e = CoreError::UnsupportedCombination {
            measure: "exact-dp",
            traversal: "tree",
        };
        assert!(e.to_string().contains("exact-dp"));
        assert!(e.to_string().contains("tree"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::EmptyDatabase);
    }
}
