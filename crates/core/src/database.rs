//! The uncertain transaction database `UDB` and its summary statistics.

use crate::error::CoreError;
use crate::itemset::ItemId;
use crate::transaction::Transaction;

/// An uncertain transaction database: an ordered collection of
/// [`Transaction`]s over a dense item vocabulary `0..num_items`.
///
/// The database is immutable once built (miners never mutate their input);
/// use [`UncertainDatabaseBuilder`] or [`UncertainDatabase::from_transactions`]
/// to construct one.
#[derive(Clone, Debug, PartialEq)]
pub struct UncertainDatabase {
    transactions: Vec<Transaction>,
    num_items: u32,
}

impl UncertainDatabase {
    /// Builds a database from transactions. The item vocabulary size is
    /// inferred as `max item id + 1`.
    pub fn from_transactions(transactions: Vec<Transaction>) -> Self {
        let num_items = transactions
            .iter()
            .flat_map(|t| t.items().iter().copied())
            .max()
            .map_or(0, |m| m + 1);
        UncertainDatabase {
            transactions,
            num_items,
        }
    }

    /// Builds with an explicit vocabulary size (must cover every item used).
    pub fn with_num_items(transactions: Vec<Transaction>, num_items: u32) -> Self {
        debug_assert!(transactions
            .iter()
            .flat_map(|t| t.items().iter())
            .all(|&i| i < num_items));
        UncertainDatabase {
            transactions,
            num_items,
        }
    }

    /// Number of transactions `N`.
    #[inline]
    pub fn num_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// Size of the item vocabulary (item ids are `0..num_items`).
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// The transactions, in insertion order.
    #[inline]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// True when the database holds no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Expected support of an itemset: `esup(X) = Σ_t P_t(X)` (Definition 1).
    ///
    /// This is the O(N·|X|) reference implementation; miners compute the same
    /// quantity incrementally through their own data structures, and tests
    /// compare against this one.
    pub fn expected_support(&self, itemset: &[ItemId]) -> f64 {
        self.transactions
            .iter()
            .map(|t| t.itemset_prob(itemset))
            .sum()
    }

    /// Expected support and variance of `sup(X)` in one pass.
    ///
    /// `sup(X)` is a sum of independent Bernoulli(`q_t`) variables, so
    /// `Var[sup(X)] = Σ_t q_t (1 − q_t)`. The pair `(esup, var)` is exactly
    /// what the Normal-approximation miners (§3.3.2–3.3.3) need.
    pub fn support_moments(&self, itemset: &[ItemId]) -> (f64, f64) {
        let mut esup = 0.0;
        let mut var = 0.0;
        for t in &self.transactions {
            let q = t.itemset_prob(itemset);
            esup += q;
            var += q * (1.0 - q);
        }
        (esup, var)
    }

    /// The nonzero per-transaction containment probabilities of `X`, in
    /// transaction order. This is the input to the exact frequent-probability
    /// computations (DP and divide-and-conquer): zero-probability
    /// transactions cannot change `sup(X)`'s distribution and are skipped.
    pub fn itemset_prob_vector(&self, itemset: &[ItemId]) -> Vec<f64> {
        self.transactions
            .iter()
            .filter_map(|t| {
                let q = t.itemset_prob(itemset);
                (q > 0.0).then_some(q)
            })
            .collect()
    }

    /// Per-item expected supports in one database scan: entry `i` is
    /// `esup({i})`. The first step of every miner in the paper.
    pub fn item_expected_supports(&self) -> Vec<f64> {
        let mut esup = vec![0.0f64; self.num_items as usize];
        for t in &self.transactions {
            for (item, p) in t.units() {
                esup[item as usize] += p;
            }
        }
        esup
    }

    /// Summary statistics in the shape of the paper's Table 6.
    pub fn stats(&self) -> DatabaseStats {
        let n = self.transactions.len();
        let total_units: usize = self.transactions.iter().map(Transaction::len).sum();
        let avg_len = if n == 0 {
            0.0
        } else {
            total_units as f64 / n as f64
        };
        let density = if self.num_items == 0 {
            0.0
        } else {
            avg_len / self.num_items as f64
        };
        DatabaseStats {
            num_transactions: n,
            num_items: self.num_items,
            avg_transaction_len: avg_len,
            density,
            total_units,
        }
    }

    /// A database containing only the first `n` transactions (vocabulary is
    /// preserved). Used by the scalability experiments, which grow the
    /// transaction count while keeping the generating process fixed.
    pub fn truncated(&self, n: usize) -> UncertainDatabase {
        UncertainDatabase {
            transactions: self.transactions[..n.min(self.transactions.len())].to_vec(),
            num_items: self.num_items,
        }
    }
}

/// Builder collecting transactions, with error accumulation semantics suited
/// to parsing external files.
#[derive(Default)]
pub struct UncertainDatabaseBuilder {
    transactions: Vec<Transaction>,
    num_items: Option<u32>,
}

impl UncertainDatabaseBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the vocabulary size up-front (otherwise inferred at build time).
    pub fn num_items(mut self, n: u32) -> Self {
        self.num_items = Some(n);
        self
    }

    /// Appends an already-validated transaction.
    pub fn push(&mut self, t: Transaction) -> &mut Self {
        self.transactions.push(t);
        self
    }

    /// Validates and appends a transaction given as `(item, prob)` units.
    pub fn push_units<I: IntoIterator<Item = (ItemId, f64)>>(
        &mut self,
        units: I,
    ) -> Result<&mut Self, CoreError> {
        self.transactions.push(Transaction::new(units)?);
        Ok(self)
    }

    /// Finishes the build.
    pub fn build(self) -> UncertainDatabase {
        match self.num_items {
            Some(n) => UncertainDatabase::with_num_items(self.transactions, n),
            None => UncertainDatabase::from_transactions(self.transactions),
        }
    }
}

/// Summary statistics of a database (the columns of the paper's Table 6).
#[derive(Clone, Debug, PartialEq)]
pub struct DatabaseStats {
    /// Number of transactions (`# of Trans.`).
    pub num_transactions: usize,
    /// Vocabulary size (`# of Items`).
    pub num_items: u32,
    /// Average units per transaction (`Ave. Len.`).
    pub avg_transaction_len: f64,
    /// `avg_transaction_len / num_items` (`Density`).
    pub density: f64,
    /// Total units across all transactions.
    pub total_units: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_table1;

    #[test]
    fn from_transactions_infers_vocab() {
        let db = UncertainDatabase::from_transactions(vec![
            Transaction::certain([0, 7]),
            Transaction::certain([2]),
        ]);
        assert_eq!(db.num_items(), 8);
        assert_eq!(db.num_transactions(), 2);
        assert!(!db.is_empty());
    }

    #[test]
    fn empty_database() {
        let db = UncertainDatabase::from_transactions(vec![]);
        assert!(db.is_empty());
        assert_eq!(db.num_items(), 0);
        let s = db.stats();
        assert_eq!(s.avg_transaction_len, 0.0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn paper_table1_expected_supports() {
        // Example 1 of the paper: esup(A) = 2.1 and esup(C) = 2.6, and with
        // min_esup = 0.5 (threshold 2.0) only {A} and {C} are frequent.
        let db = paper_table1();
        let esup = db.item_expected_supports();
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
        assert!(close(esup[0], 2.1)); // A
        assert!(close(esup[1], 1.4)); // B
        assert!(close(esup[2], 2.6)); // C
        assert!(close(esup[3], 1.2)); // D
        assert!(close(esup[4], 1.3)); // E
        assert!(close(esup[5], 1.8)); // F
        assert!(close(db.expected_support(&[0, 2]), 0.72 + 0.72 + 0.4));
    }

    #[test]
    fn support_moments_match_definition() {
        let db = paper_table1();
        let (esup, var) = db.support_moments(&[0]);
        assert!((esup - 2.1).abs() < 1e-12);
        // Var = Σ p(1-p) over p ∈ {0.8, 0.8, 0.5}
        let expect = 0.8 * 0.2 + 0.8 * 0.2 + 0.5 * 0.5;
        assert!((var - expect).abs() < 1e-12);
    }

    #[test]
    fn prob_vector_skips_zero_transactions() {
        let db = paper_table1();
        // D appears only in T1 (0.7) and T4 (0.5).
        assert_eq!(db.itemset_prob_vector(&[3]), vec![0.7, 0.5]);
    }

    #[test]
    fn stats_shape() {
        let db = paper_table1();
        let s = db.stats();
        assert_eq!(s.num_transactions, 4);
        assert_eq!(s.num_items, 6);
        assert_eq!(s.total_units, 5 + 4 + 4 + 3);
        assert!((s.avg_transaction_len - 4.0).abs() < 1e-12);
        assert!((s.density - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let db = paper_table1();
        let t = db.truncated(2);
        assert_eq!(t.num_transactions(), 2);
        assert_eq!(t.num_items(), 6);
        assert_eq!(db.truncated(99).num_transactions(), 4);
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = UncertainDatabaseBuilder::new().num_items(10);
        b.push(Transaction::certain([1]));
        b.push_units([(2, 0.5)]).unwrap();
        assert!(b.push_units([(2, 0.0)]).is_err());
        let db = b.build();
        assert_eq!(db.num_transactions(), 2);
        assert_eq!(db.num_items(), 10);
    }
}
