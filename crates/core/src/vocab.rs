//! Item vocabularies: bidirectional mapping between human-readable item
//! labels and the dense integer ids the miners operate on.
//!
//! Datasets arrive with string labels ("bread", sensor names, page URLs);
//! the mining core wants dense `u32` ids. A [`Vocabulary`] interns labels
//! in first-seen order — ids are then exactly the `0..n` range every
//! per-item array in the workspace indexes by — and renders itemsets back
//! for presentation.

use crate::hash::FxHashMap;
use crate::itemset::{ItemId, Itemset};

/// An interned label set with dense ids.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    by_label: FxHashMap<String, ItemId>,
    by_id: Vec<String>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from labels, interning in order (duplicates collapse).
    pub fn from_labels<S: AsRef<str>, I: IntoIterator<Item = S>>(labels: I) -> Self {
        let mut v = Vocabulary::new();
        for l in labels {
            v.intern(l.as_ref());
        }
        v
    }

    /// Returns the id for `label`, interning it if new.
    pub fn intern(&mut self, label: &str) -> ItemId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = self.by_id.len() as ItemId;
        self.by_id.push(label.to_owned());
        self.by_label.insert(label.to_owned(), id);
        id
    }

    /// Looks up an existing label's id without interning.
    pub fn id(&self, label: &str) -> Option<ItemId> {
        self.by_label.get(label).copied()
    }

    /// The label for an id, if in range.
    pub fn label(&self, id: ItemId) -> Option<&str> {
        self.by_id.get(id as usize).map(String::as_str)
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Renders an itemset as `{label, label, …}`, falling back to `#id`
    /// for out-of-vocabulary ids.
    pub fn render(&self, itemset: &Itemset) -> String {
        let inner: Vec<String> = itemset
            .items()
            .iter()
            .map(|&i| {
                self.label(i)
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("#{i}"))
            })
            .collect();
        format!("{{{}}}", inner.join(", "))
    }

    /// Parses a labeled unit list into `(id, prob)` pairs, interning labels
    /// — the ergonomic constructor for hand-written uncertain data:
    ///
    /// ```
    /// use ufim_core::vocab::Vocabulary;
    /// use ufim_core::Transaction;
    /// let mut vocab = Vocabulary::new();
    /// let t = Transaction::new(vocab.units([("milk", 0.9), ("bread", 0.4)])).unwrap();
    /// assert_eq!(vocab.len(), 2);
    /// assert_eq!(t.prob_of(vocab.id("milk").unwrap()), 0.9);
    /// ```
    pub fn units<'a, I: IntoIterator<Item = (&'a str, f64)>>(
        &mut self,
        labeled: I,
    ) -> Vec<(ItemId, f64)> {
        labeled
            .into_iter()
            .map(|(label, p)| (self.intern(label), p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_dense_and_stable() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), 0);
        assert_eq!(v.intern("b"), 1);
        assert_eq!(v.intern("a"), 0); // duplicate
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.label(1), Some("b"));
        assert_eq!(v.label(9), None);
        assert_eq!(v.id("b"), Some(1));
        assert_eq!(v.id("zzz"), None);
    }

    #[test]
    fn from_labels_collapses_duplicates() {
        let v = Vocabulary::from_labels(["x", "y", "x", "z"]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.id("z"), Some(2));
    }

    #[test]
    fn render_itemsets() {
        let v = Vocabulary::from_labels(["milk", "bread"]);
        let set = Itemset::from_items([0, 1]);
        assert_eq!(v.render(&set), "{milk, bread}");
        // Out-of-vocabulary fallback.
        assert_eq!(v.render(&Itemset::from_items([0, 7])), "{milk, #7}");
        assert_eq!(v.render(&Itemset::empty()), "{}");
    }

    #[test]
    fn units_builds_transactions() {
        let mut v = Vocabulary::new();
        let units = v.units([("a", 0.5), ("b", 0.25)]);
        assert_eq!(units, vec![(0, 0.5), (1, 0.25)]);
        // Re-using labels keeps ids.
        let units2 = v.units([("b", 0.9)]);
        assert_eq!(units2, vec![(1, 0.9)]);
    }
}
