//! Curated micro-databases used by documentation and tests across the
//! workspace, including the worked example from the paper.

use crate::database::UncertainDatabase;
use crate::transaction::Transaction;

/// Item ids for the paper's Table 1 alphabet, in order `A..F`.
pub mod table1_items {
    /// Item `A`.
    pub const A: u32 = 0;
    /// Item `B`.
    pub const B: u32 = 1;
    /// Item `C`.
    pub const C: u32 = 2;
    /// Item `D`.
    pub const D: u32 = 3;
    /// Item `E`.
    pub const E: u32 = 4;
    /// Item `F`.
    pub const F: u32 = 5;
}

/// The uncertain database of the paper's **Table 1**:
///
/// ```text
/// T1: A(0.8) B(0.2) C(0.9) D(0.7) F(0.8)
/// T2: A(0.8) B(0.7) C(0.9) E(0.5)
/// T3: A(0.5) C(0.8) E(0.8) F(0.3)
/// T4: B(0.5) D(0.5) F(0.7)
/// ```
///
/// Known ground truth pinned by tests:
/// * `esup(A) = 2.1`, `esup(C) = 2.6` (Example 1);
/// * with `min_esup = 0.5` exactly `{A}` and `{C}` are expected-support
///   frequent;
/// * with `min_esup = 0.25` the frequency-ordered item list is
///   `C:2.6, A:2.1, F:1.8, B:1.4, E:1.3, D:1.2` (§3.1.2, Figure 1).
pub fn paper_table1() -> UncertainDatabase {
    use table1_items::*;
    let t1 = Transaction::new([(A, 0.8), (B, 0.2), (C, 0.9), (D, 0.7), (F, 0.8)]).unwrap();
    let t2 = Transaction::new([(A, 0.8), (B, 0.7), (C, 0.9), (E, 0.5)]).unwrap();
    let t3 = Transaction::new([(A, 0.5), (C, 0.8), (E, 0.8), (F, 0.3)]).unwrap();
    let t4 = Transaction::new([(B, 0.5), (D, 0.5), (F, 0.7)]).unwrap();
    UncertainDatabase::with_num_items(vec![t1, t2, t3, t4], 6)
}

/// A small database in the spirit of the paper's Example 2: item 0's
/// frequent probability at `min_sup = 0.5` sits strictly between common
/// `pft` choices, so documentation examples and tests can exercise both
/// accept and reject outcomes.
///
/// The paper's Table 2 distribution itself is not realizable as a product of
/// three Bernoulli units (no probability triple yields
/// `[0.1, 0.18, 0.4, 0.32]`), so the distribution is provided separately as
/// [`table2_distribution`] and this database only mirrors the example's
/// structure.
pub fn paper_example2_like() -> UncertainDatabase {
    let t1 = Transaction::new([(0, 0.8), (1, 0.3)]).unwrap();
    let t2 = Transaction::new([(0, 0.7), (1, 0.9)]).unwrap();
    let t3 = Transaction::new([(0, 0.5)]).unwrap();
    let t4 = Transaction::new([(1, 0.6)]).unwrap();
    UncertainDatabase::with_num_items(vec![t1, t2, t3, t4], 2)
}

/// The support probability mass function of the paper's **Table 2**:
/// `Pr[sup(A) = 0..3] = [0.1, 0.18, 0.4, 0.32]`.
///
/// Example 2 computes `Pr{sup(A) ≥ 4 × 0.5} = 0.4 + 0.32 = 0.72 > 0.7`.
pub fn table2_distribution() -> Vec<f64> {
    vec![0.1, 0.18, 0.4, 0.32]
}

/// A tiny deterministic (all-probability-one) database, used to check that
/// uncertain miners degrade to classical frequent itemset mining.
pub fn deterministic_small() -> UncertainDatabase {
    UncertainDatabase::from_transactions(vec![
        Transaction::certain([0, 1, 2]),
        Transaction::certain([0, 1]),
        Transaction::certain([0, 2]),
        Transaction::certain([1, 2]),
        Transaction::certain([0, 1, 2, 3]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let db = paper_table1();
        assert_eq!(db.num_transactions(), 4);
        assert_eq!(db.num_items(), 6);
        assert_eq!(db.transactions()[0].len(), 5);
        assert_eq!(db.transactions()[3].len(), 3);
    }

    #[test]
    fn table2_distribution_sums_to_one() {
        let d = table2_distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Example 2's headline: Pr{sup >= 2} = 0.72.
        assert!((d[2] + d[3] - 0.72).abs() < 1e-12);
    }

    #[test]
    fn deterministic_db_is_certain() {
        let db = deterministic_small();
        for t in db.transactions() {
            assert!(t.probs().iter().all(|&p| p == 1.0));
        }
        // Classical support of {0,1} is 3 of 5.
        assert!((db.expected_support(&[0, 1]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn example2_like_shape() {
        let db = paper_example2_like();
        assert_eq!(db.num_transactions(), 4);
        let q = db.itemset_prob_vector(&[0]);
        assert_eq!(q.len(), 3);
    }
}
