//! # ufim-core
//!
//! Core data model for **frequent itemset mining over uncertain databases**,
//! the shared foundation of this workspace's reproduction of
//! *Tong, Chen, Cheng, Yu: "Mining Frequent Itemsets over Uncertain
//! Databases", PVLDB 5(11), 2012*.
//!
//! An *uncertain transaction database* is a list of transactions in which
//! every item carries an independent existence probability. The number of
//! transactions that actually contain an itemset `X` is therefore a random
//! variable `sup(X)` following a Poisson-Binomial distribution, and the paper
//! studies two frequency semantics built on it:
//!
//! * **expected support** — `esup(X) = Σ_t P_t(X)` (Definitions 1–2), and
//! * **frequent probability** — `Pr{sup(X) ≥ ⌈N·min_sup⌉}` (Definitions 3–4).
//!
//! This crate provides the types every algorithm crate shares:
//!
//! * [`UncertainDatabase`] / [`Transaction`] — the probabilistic data model
//!   (horizontal layout),
//! * [`VerticalIndex`] / [`ProbVector`] — the columnar (tid-list) layout
//!   behind the vertical support engine,
//! * [`WindowedDatabase`] / [`WindowStep`] — sliding-window ingest with
//!   per-slot tid deltas (the streaming seam),
//! * [`Itemset`] — a sorted, duplicate-free set of item ids,
//! * [`MiningParams`], [`Ratio`], [`EngineKind`] — validated threshold
//!   parameters and the support-backend selector,
//! * [`FrequentItemset`], [`MiningResult`], [`MinerStats`] — outputs,
//! * [`ExpectedSupportMiner`] / [`ProbabilisticMiner`] — the two algorithm
//!   interfaces corresponding to the paper's two definitions,
//! * [`hash`] — a fast FxHash-style hasher used throughout the workspace,
//! * [`parallel`] — data-parallel helpers over the persistent
//!   work-stealing pool (`vendor/workpool`): ordered maps for the support
//!   engines plus nested task spawning for the depth-first traversals.
//!
//! The worked example from the paper (its Table 1) ships as
//! [`examples::paper_table1`] and is pinned by tests across the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod error;
pub mod examples;
pub mod hash;
pub mod itemset;
pub mod parallel;
pub mod params;
pub mod resident;
pub mod result;
pub mod traits;
pub mod transaction;
pub mod vertical;
pub mod vocab;
pub mod window;

pub use database::{DatabaseStats, UncertainDatabase, UncertainDatabaseBuilder};
pub use error::CoreError;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use itemset::{ItemId, Itemset};
pub use params::{EngineKind, MeasureKind, MiningParams, Ratio, TraversalKind};
pub use resident::{ResidentLru, ResidentStats};
pub use result::{FrequentItemset, MinerStats, MiningResult};
pub use traits::{ExpectedSupportMiner, MinerInfo, ProbabilisticMiner};
pub use transaction::Transaction;
pub use vertical::{
    BlockMoments, DiffVector, ProbVector, ScratchSpace, ShardPlan, VerticalIndex, ZoneEntry,
};
pub use vocab::Vocabulary;
pub use window::{DirtySlot, StepProbe, WindowStep, WindowedDatabase};

/// Convenient glob-import for downstream crates:
/// `use ufim_core::prelude::*;`
pub mod prelude {
    pub use crate::database::{DatabaseStats, UncertainDatabase, UncertainDatabaseBuilder};
    pub use crate::error::CoreError;
    pub use crate::hash::{FxHashMap, FxHashSet};
    pub use crate::itemset::{ItemId, Itemset};
    pub use crate::params::{EngineKind, MeasureKind, MiningParams, Ratio, TraversalKind};
    pub use crate::resident::{ResidentLru, ResidentStats};
    pub use crate::result::{FrequentItemset, MinerStats, MiningResult};
    pub use crate::traits::{ExpectedSupportMiner, MinerInfo, ProbabilisticMiner};
    pub use crate::transaction::Transaction;
    pub use crate::vertical::{
        BlockMoments, DiffVector, ProbVector, ScratchSpace, ShardPlan, VerticalIndex, ZoneEntry,
    };
    pub use crate::vocab::Vocabulary;
    pub use crate::window::{DirtySlot, StepProbe, WindowStep, WindowedDatabase};
}
