//! The `ufim-serve` binary: line-JSON queries over TCP or stdin.
//!
//! ```text
//! ufim-serve [--listen ADDR] [--budget-bytes N] [--log FILE]
//!            [--dataset NAME=BENCHMARK:SCALE:SEED]...
//! ```
//!
//! Without `--listen`, requests are read from stdin and answered on
//! stdout (one line each), exiting at EOF — the mode CI uses to exercise
//! the server without networking. With `--listen`, a blocking TCP server
//! runs until the process is killed.

use std::io::BufRead;
use std::process::exit;
use std::sync::Arc;
use ufim_serve::ServeCore;

fn usage() -> ! {
    eprintln!(
        "usage: ufim-serve [--listen ADDR] [--budget-bytes N] [--log FILE] \
         [--dataset NAME=BENCHMARK:SCALE:SEED]..."
    );
    exit(2);
}

fn parse_dataset_spec(spec: &str) -> Result<(String, String, f64, u64), String> {
    let (name, rest) = spec
        .split_once('=')
        .ok_or_else(|| format!("dataset spec '{spec}' is not NAME=BENCHMARK[:SCALE[:SEED]]"))?;
    let mut parts = rest.split(':');
    let benchmark = parts.next().unwrap_or_default().to_string();
    let scale = parts
        .next()
        .map_or(Ok(1.0), str::parse::<f64>)
        .map_err(|e| format!("bad scale in '{spec}': {e}"))?;
    let seed = parts
        .next()
        .map_or(Ok(42), str::parse::<u64>)
        .map_err(|e| format!("bad seed in '{spec}': {e}"))?;
    Ok((name.to_string(), benchmark, scale, seed))
}

fn main() {
    let mut listen: Option<String> = None;
    let mut budget: u64 = 256 << 20;
    let mut log: Option<String> = None;
    let mut specs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(args.next().unwrap_or_else(|| usage())),
            "--budget-bytes" => {
                budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--log" => log = Some(args.next().unwrap_or_else(|| usage())),
            "--dataset" => specs.push(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
        }
    }

    let core = Arc::new(ServeCore::new(budget));
    if let Some(path) = &log {
        if let Err(e) = core.log_to(std::path::Path::new(path)) {
            eprintln!("cannot open log '{path}': {e}");
            exit(1);
        }
    }
    for spec in &specs {
        match parse_dataset_spec(spec) {
            Ok((name, benchmark, scale, seed)) => {
                if let Err(e) = core.load_benchmark(&name, &benchmark, scale, seed) {
                    eprintln!("{e}");
                    exit(1);
                }
                eprintln!("loaded dataset '{name}' ({benchmark} scale={scale} seed={seed})");
            }
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        }
    }

    match listen {
        Some(addr) => {
            let server = match ufim_serve::TcpServer::start(Arc::clone(&core), &addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot listen on {addr}: {e}");
                    exit(1);
                }
            };
            eprintln!("listening on {}", server.local_addr());
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        None => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                println!("{}", core.handle_line(&line));
            }
        }
    }
}
