//! # ufim-serve
//!
//! A concurrent query server over resident uncertain-FIM datasets with
//! **cross-query memo reuse** — the workspace's serving layer.
//!
//! The ROADMAP's north star is a production-scale system answering heavy
//! query traffic over hot datasets. This crate turns the library into that
//! service: datasets are loaded once ([`Dataset`] = the horizontal
//! [`UncertainDatabase`](ufim_core::UncertainDatabase) plus its columnar
//! [`VerticalIndex`](ufim_core::VerticalIndex)), and concurrent queries —
//! threshold sweeps, top-k by expected support, itemset probes, full mines
//! at any measure × traversal × engine cell — are dispatched over the
//! shared workpool with per-request admission caps
//! ([`with_thread_override`](ufim_core::parallel::with_thread_override))
//! as isolation.
//!
//! ## The cross-query memo
//!
//! The heart is [`ResidentMemo`]: per `(dataset, measure, engine)` key it
//! retains the frequent lattice mined at the **lowest threshold seen so
//! far**, together with each kept candidate's raw engine statistics
//! ([`RetainedRecord`](ufim_miners::common::measure::RetainedRecord)).
//! Because every measure's keep-set shrinks as its threshold tightens, a
//! query at `t' ≥ t` is a *filter* of the retained records — re-judged at
//! the query parameters with **zero database scans and zero tid-list
//! intersections**, and bit-identical to a cold
//! [`MatrixMiner`](ufim_miners::MatrixMiner) run (the engine statistics of
//! a candidate do not depend on the threshold, and the determinism
//! machinery makes them identical for every `UFIM_THREADS`). Queries below
//! the resident basis re-mine cold and *extend* the memo by swapping in
//! the new, lower-threshold snapshot. An LRU byte budget
//! ([`ResidentLru`](ufim_core::resident::ResidentLru)) bounds residency.
//!
//! ## Protocol
//!
//! One JSON object per line, hand-rolled (no serde) — see [`proto`]:
//!
//! ```text
//! {"op":"load","name":"g","benchmark":"gazelle","scale":0.05,"seed":42}
//! {"op":"sweep","dataset":"g","measure":"esup","engine":"vertical","pft":0.7,"thresholds":[0.02,0.04],"records":true}
//! {"op":"topk","dataset":"g","measure":"normal","min_sup":0.02,"pft":0.7,"k":5,"min_len":2}
//! {"op":"probe","dataset":"g","measure":"esup","min_sup":0.02,"pft":0.7,"itemset":[3,17]}
//! {"op":"mine","dataset":"g","measure":"exact-dp","traversal":"level-wise","min_sup":0.05,"pft":0.7}
//! {"op":"stats"}
//! ```
//!
//! Responses are single-line JSON with `"ok"` first; floats use Rust's
//! shortest-round-trip formatting so records survive the wire bit-exactly.
//! Queries accept an optional `"threads"` cap.
//!
//! Use [`ServeCore`] in-process, or [`TcpServer`] for the blocking TCP
//! front end (`cargo run -p ufim-serve` starts one).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memo;
pub mod proto;
pub mod server;

pub use memo::{MemoCounters, MemoKey, MemoOutcome, ResidentMemo};
pub use proto::{Json, Request};
pub use server::{Dataset, ServeCore, TcpServer};

/// Convenient glob-import: `use ufim_serve::prelude::*;`
pub mod prelude {
    pub use crate::memo::{MemoCounters, MemoKey, MemoOutcome, ResidentMemo};
    pub use crate::proto::{Json, Request};
    pub use crate::server::{Dataset, ServeCore, TcpServer};
}
