//! The server core (in-process API) and the blocking TCP front end.
//!
//! [`ServeCore`] owns the resident state: datasets loaded once (the
//! horizontal database plus its [`VerticalIndex`]) and the cross-query
//! [`ResidentMemo`]. Every query — typed via [`ServeCore::answer`] /
//! [`ServeCore::handle`], or wire-format via [`ServeCore::handle_line`] —
//! runs on the caller's thread and dispatches its mining work over the
//! shared workpool; a per-request `threads` cap is applied with
//! [`with_thread_override`], which sets the admission cap of every pool
//! scope the request opens (per-request isolation without per-request
//! pools).
//!
//! [`TcpServer`] is the blocking front end: one accept loop, one thread
//! per connection, one request line in → one response line out.

use crate::memo::{MemoKey, MemoOutcome, ResidentMemo};
use crate::proto::{record_json, Json, Request};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use ufim_core::parallel::with_thread_override;
use ufim_core::prelude::*;
use ufim_core::BlockMoments;
use ufim_data::Benchmark;
use ufim_miners::postprocess::top_k_by_expected_support;
use ufim_miners::resident::boxed_measure;
use ufim_miners::MatrixMiner;

/// One resident dataset: the horizontal database and its columnar index,
/// both built once at load time and shared immutably by every query.
pub struct Dataset {
    /// Resident name.
    pub name: String,
    /// The horizontal probabilistic database.
    pub db: UncertainDatabase,
    /// The columnar tid-list index (probe support without re-scanning).
    pub index: VerticalIndex,
}

/// The server core: resident datasets + the cross-query memo.
pub struct ServeCore {
    datasets: RwLock<FxHashMap<String, Arc<Dataset>>>,
    memo: ResidentMemo,
    log: Mutex<Option<std::fs::File>>,
}

fn with_threads<T>(threads: Option<usize>, f: impl FnOnce() -> T) -> T {
    match threads {
        Some(n) => with_thread_override(n, f),
        None => f(),
    }
}

fn err_json(msg: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(msg.into())),
    ])
}

impl ServeCore {
    /// An empty core whose memo is bounded by `memo_budget_bytes`.
    pub fn new(memo_budget_bytes: u64) -> Self {
        ServeCore {
            datasets: RwLock::new(FxHashMap::default()),
            memo: ResidentMemo::new(memo_budget_bytes),
            log: Mutex::new(None),
        }
    }

    /// Appends one line per handled request to `path` (create/truncate,
    /// parent directories created as needed).
    ///
    /// # Errors
    /// Propagates file or directory creation failure.
    pub fn log_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(path)?;
        *self.log.lock().expect("log lock poisoned") = Some(file);
        Ok(())
    }

    fn log_line(&self, line: &str) {
        if let Some(file) = self.log.lock().expect("log lock poisoned").as_mut() {
            let _ = writeln!(file, "{line}");
        }
    }

    /// Registers `db` as resident dataset `name`, building its columnar
    /// index. Replaces any previous dataset of that name.
    pub fn load_db(&self, name: &str, db: UncertainDatabase) {
        let index = VerticalIndex::build(&db);
        let dataset = Arc::new(Dataset {
            name: name.to_string(),
            db,
            index,
        });
        self.datasets
            .write()
            .expect("dataset lock poisoned")
            .insert(name.to_string(), dataset);
    }

    /// Loads a named benchmark generator as resident dataset `name`.
    /// Benchmarks: `connect`, `accident`, `kosarak`, `gazelle`,
    /// `t25i15d320k`, or `table1` (the paper's worked example; ignores
    /// `scale`/`seed`).
    ///
    /// # Errors
    /// An unknown benchmark name.
    pub fn load_benchmark(
        &self,
        name: &str,
        benchmark: &str,
        scale: f64,
        seed: u64,
    ) -> Result<(), String> {
        let db = match benchmark.to_ascii_lowercase().as_str() {
            "table1" => ufim_core::examples::paper_table1(),
            "connect" => Benchmark::Connect.generate(scale, seed),
            "accident" => Benchmark::Accident.generate(scale, seed),
            "kosarak" => Benchmark::Kosarak.generate(scale, seed),
            "gazelle" => Benchmark::Gazelle.generate(scale, seed),
            "t25i15d320k" => Benchmark::T25I15D320k.generate(scale, seed),
            other => return Err(format!("unknown benchmark '{other}'")),
        };
        self.load_db(name, db);
        Ok(())
    }

    /// The resident dataset of `name`, if loaded.
    pub fn dataset(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets
            .read()
            .expect("dataset lock poisoned")
            .get(name)
            .cloned()
    }

    /// The cross-query memo (counters, residency).
    pub fn memo(&self) -> &ResidentMemo {
        &self.memo
    }

    /// Typed level-wise query entry: answers through the memo (warm when
    /// covered, cold capture-mine otherwise). The result is canonicalized.
    ///
    /// # Errors
    /// Unknown dataset, or parameter validation from the measures.
    pub fn answer(
        &self,
        dataset: &str,
        measure: MeasureKind,
        engine: EngineKind,
        params: &MiningParams,
    ) -> Result<(MiningResult, MemoOutcome), String> {
        let ds = self
            .dataset(dataset)
            .ok_or_else(|| format!("unknown dataset '{dataset}'"))?;
        self.memo
            .answer(dataset, &ds.db, measure, engine, params)
            .map_err(|e| e.to_string())
    }

    /// Handles one parsed request, producing the response object.
    pub fn handle(&self, req: &Request) -> Json {
        let started = Instant::now();
        let response = self.dispatch(req);
        let op = match req {
            Request::Load { .. } => "load",
            Request::Sweep { .. } => "sweep",
            Request::TopK { .. } => "topk",
            Request::Probe { .. } => "probe",
            Request::Mine { .. } => "mine",
            Request::Stats => "stats",
        };
        let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
        self.log_line(&format!(
            "op={op} ok={ok} micros={}",
            started.elapsed().as_micros()
        ));
        response
    }

    /// Handles one raw request line, producing the response line (no
    /// trailing newline).
    pub fn handle_line(&self, line: &str) -> String {
        match Request::parse(line.trim()) {
            Ok(req) => self.handle(&req).to_line(),
            Err(e) => {
                self.log_line(&format!("op=parse-error error={e}"));
                err_json(&e).to_line()
            }
        }
    }

    fn dispatch(&self, req: &Request) -> Json {
        match req {
            Request::Load {
                name,
                benchmark,
                scale,
                seed,
            } => match self.load_benchmark(name, benchmark, *scale, *seed) {
                Err(e) => err_json(&e),
                Ok(()) => {
                    let ds = self.dataset(name).expect("dataset just loaded");
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("op".into(), Json::Str("load".into())),
                        ("name".into(), Json::Str(name.clone())),
                        (
                            "transactions".into(),
                            Json::Num(ds.db.num_transactions() as f64),
                        ),
                        ("items".into(), Json::Num(f64::from(ds.db.num_items()))),
                    ])
                }
            },
            Request::Sweep {
                dataset,
                measure,
                engine,
                pft,
                thresholds,
                records,
                threads,
            } => with_threads(*threads, || {
                let mut results = Vec::with_capacity(thresholds.len());
                let mut total_intersections = 0u64;
                for &min_sup in thresholds {
                    let params = match MiningParams::new(min_sup, *pft) {
                        Ok(p) => p,
                        Err(e) => return err_json(&e.to_string()),
                    };
                    let (result, outcome) = match self.answer(dataset, *measure, *engine, &params) {
                        Ok(r) => r,
                        Err(e) => return err_json(&e),
                    };
                    total_intersections += result.stats.intersections;
                    let mut entry = vec![
                        ("min_sup".into(), Json::Num(min_sup)),
                        ("count".into(), Json::Num(result.len() as f64)),
                        ("source".into(), Json::Str(outcome.name().into())),
                        (
                            "intersections".into(),
                            Json::Num(result.stats.intersections as f64),
                        ),
                    ];
                    if *records {
                        entry.push((
                            "records".into(),
                            Json::Arr(result.itemsets.iter().map(record_json).collect()),
                        ));
                    }
                    results.push(Json::Obj(entry));
                }
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("op".into(), Json::Str("sweep".into())),
                    ("dataset".into(), Json::Str(dataset.clone())),
                    (
                        "intersections".into(),
                        Json::Num(total_intersections as f64),
                    ),
                    ("results".into(), Json::Arr(results)),
                ])
            }),
            Request::TopK {
                dataset,
                measure,
                engine,
                min_sup,
                pft,
                k,
                min_len,
                threads,
            } => with_threads(*threads, || {
                let params = match MiningParams::new(*min_sup, *pft) {
                    Ok(p) => p,
                    Err(e) => return err_json(&e.to_string()),
                };
                let (result, outcome) = match self.answer(dataset, *measure, *engine, &params) {
                    Ok(r) => r,
                    Err(e) => return err_json(&e),
                };
                let top = top_k_by_expected_support(&result, *k, *min_len);
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("op".into(), Json::Str("topk".into())),
                    ("dataset".into(), Json::Str(dataset.clone())),
                    ("source".into(), Json::Str(outcome.name().into())),
                    (
                        "intersections".into(),
                        Json::Num(result.stats.intersections as f64),
                    ),
                    ("count".into(), Json::Num(top.len() as f64)),
                    (
                        "records".into(),
                        Json::Arr(top.iter().map(|fi| record_json(fi)).collect()),
                    ),
                ])
            }),
            Request::Probe {
                dataset,
                measure,
                engine,
                min_sup,
                pft,
                itemset,
                threads,
            } => with_threads(*threads, || {
                self.probe(dataset, *measure, *engine, *min_sup, *pft, itemset)
            }),
            Request::Mine {
                dataset,
                measure,
                traversal,
                engine,
                min_sup,
                pft,
                records,
                threads,
            } => with_threads(*threads, || {
                let params = match MiningParams::new(*min_sup, *pft) {
                    Ok(p) => p.with_engine(*engine),
                    Err(e) => return err_json(&e.to_string()),
                };
                let (result, source) = if *traversal == TraversalKind::LevelWise {
                    match self.answer(dataset, *measure, *engine, &params) {
                        Ok((r, o)) => (r, o.name()),
                        Err(e) => return err_json(&e),
                    }
                } else {
                    // Depth-first traversals agree with level-wise only to
                    // 1e-9, so they never share the memo: always cold.
                    let Some(ds) = self.dataset(dataset) else {
                        return err_json(&format!("unknown dataset '{dataset}'"));
                    };
                    match MatrixMiner::new(*measure, *traversal).mine_probabilistic(&ds.db, params)
                    {
                        Ok(mut r) => {
                            r.canonicalize();
                            (r, "cold")
                        }
                        Err(e) => return err_json(&e.to_string()),
                    }
                };
                let mut fields = vec![
                    ("ok".into(), Json::Bool(true)),
                    ("op".into(), Json::Str("mine".into())),
                    ("dataset".into(), Json::Str(dataset.clone())),
                    ("measure".into(), Json::Str(measure.name().into())),
                    ("traversal".into(), Json::Str(traversal.name().into())),
                    ("engine".into(), Json::Str(engine.name().into())),
                    ("source".into(), Json::Str(source.into())),
                    ("count".into(), Json::Num(result.len() as f64)),
                    (
                        "intersections".into(),
                        Json::Num(result.stats.intersections as f64),
                    ),
                ];
                if *records {
                    fields.push((
                        "records".into(),
                        Json::Arr(result.itemsets.iter().map(record_json).collect()),
                    ));
                }
                Json::Obj(fields)
            }),
            Request::Stats => {
                let mut names: Vec<String> = self
                    .datasets
                    .read()
                    .expect("dataset lock poisoned")
                    .keys()
                    .cloned()
                    .collect();
                names.sort();
                let c = self.memo.counters();
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("op".into(), Json::Str("stats".into())),
                    (
                        "datasets".into(),
                        Json::Arr(names.into_iter().map(Json::Str).collect()),
                    ),
                    ("memo_hits".into(), Json::Num(c.hits as f64)),
                    ("memo_misses".into(), Json::Num(c.misses as f64)),
                    ("memo_extends".into(), Json::Num(c.extends as f64)),
                    ("resident_entries".into(), Json::Num(self.memo.len() as f64)),
                    (
                        "resident_bytes".into(),
                        Json::Num(self.memo.resident_bytes() as f64),
                    ),
                    (
                        "budget_bytes".into(),
                        Json::Num(self.memo.budget_bytes() as f64),
                    ),
                ])
            }
        }
    }

    fn probe(
        &self,
        dataset: &str,
        measure: MeasureKind,
        engine: EngineKind,
        min_sup: f64,
        pft: f64,
        items: &[ItemId],
    ) -> Json {
        let Some(ds) = self.dataset(dataset) else {
            return err_json(&format!("unknown dataset '{dataset}'"));
        };
        let params = match MiningParams::new(min_sup, pft) {
            Ok(p) => p,
            Err(e) => return err_json(&e.to_string()),
        };
        if items.is_empty() {
            return err_json("probe itemset must be non-empty");
        }
        let itemset = Itemset::from_items(items.iter().copied());
        let n = ds.db.num_transactions();
        let key = MemoKey {
            dataset: dataset.to_string(),
            measure,
            engine,
        };
        let covering = match self.memo.covering_lattice(&key, n, &params) {
            Ok(c) => c,
            Err(e) => return err_json(&e.to_string()),
        };
        let mut scratch = MinerStats::default();
        let (esup, variance, count, probs, source, intersections) = match &covering {
            Some(lattice) => match lattice.lookup(&itemset) {
                // Warm: the retained basis statistics, zero intersections.
                Some(rec) => (
                    rec.esup,
                    rec.variance,
                    rec.count,
                    rec.probs.clone(),
                    "memo",
                    0u64,
                ),
                // Covered but not retained ⇒ not frequent at the basis ⇒
                // not frequent at the query either; still report the
                // statistics from the columnar index.
                None => {
                    let (e, v, c, p, i) = Self::index_stats(&ds.index, &itemset);
                    (e, v, c, p, "index", i)
                }
            },
            None => {
                let (e, v, c, p, i) = Self::index_stats(&ds.index, &itemset);
                (e, v, c, p, "index", i)
            }
        };
        let judged = match boxed_measure(measure, n, &params) {
            Err(e) => return err_json(&e.to_string()),
            // Poisson-infeasible parameters: nothing is frequent.
            Ok(None) => None,
            Ok(Some(m)) => m.judge(
                &ufim_miners::common::measure::CandidateStats {
                    esup,
                    variance,
                    count,
                    probs: probs.as_deref(),
                },
                &mut scratch,
            ),
        };
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("op".into(), Json::Str("probe".into())),
            ("dataset".into(), Json::Str(dataset.to_string())),
            (
                "items".into(),
                Json::Arr(
                    itemset
                        .items()
                        .iter()
                        .map(|&i| Json::Num(f64::from(i)))
                        .collect(),
                ),
            ),
            ("frequent".into(), Json::Bool(judged.is_some())),
            ("esup".into(), Json::Num(esup)),
            ("var".into(), Json::Num(variance)),
            ("count".into(), Json::Num(count as f64)),
            (
                "prob".into(),
                judged
                    .and_then(|j| j.frequent_prob)
                    .map_or(Json::Null, Json::Num),
            ),
            ("source".into(), Json::Str(source.into())),
            ("intersections".into(), Json::Num(intersections as f64)),
        ])
    }

    /// Probe statistics straight from the columnar index: the canonical
    /// fixed-shape [`BlockMoments`] fold (bit-identical to the vertical
    /// engine), charging `len − 1` tid-list intersections.
    fn index_stats(
        index: &VerticalIndex,
        itemset: &Itemset,
    ) -> (f64, f64, u64, Option<Vec<f64>>, u64) {
        let pv = index.prob_vector(itemset.items());
        let (esup, variance, count) = BlockMoments::of(&pv).fold();
        let probs = pv.nonzero_probs();
        (
            esup,
            variance,
            count as u64,
            Some(probs),
            (itemset.len() as u64).saturating_sub(1),
        )
    }
}

/// The blocking TCP front end: line-JSON over one socket per client.
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop on a background thread. One thread per connection;
    /// each reads request lines and writes one response line per request.
    ///
    /// # Errors
    /// Propagates bind failure.
    pub fn start(core: Arc<ServeCore>, addr: &str) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut connections = Vec::new();
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let core = Arc::clone(&core);
                        let stop = Arc::clone(&stop2);
                        connections.push(std::thread::spawn(move || {
                            serve_connection(&core, stream, &stop);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if stop2.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for c in connections {
                let _ = c.join();
            }
        });
        Ok(TcpServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, waits for the accept loop and every connection
    /// thread to finish. Open connections unblock within the read timeout.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(core: &ServeCore, stream: TcpStream, stop: &AtomicBool) {
    // A finite read timeout so connection threads notice a server stop
    // even when the client holds the socket open without sending.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = core.handle_line(&line);
                if writer
                    .write_all(format!("{response}\n").as_bytes())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    fn core_with_table1() -> Arc<ServeCore> {
        let core = Arc::new(ServeCore::new(1 << 20));
        core.load_db("t1", paper_table1());
        core
    }

    #[test]
    fn sweep_is_warm_after_priming_and_bit_stable() {
        let core = core_with_table1();
        let line = r#"{"op":"sweep","dataset":"t1","measure":"esup","engine":"vertical","pft":0.7,"thresholds":[0.25,0.5,0.75],"records":true}"#;
        let first = core.handle_line(line);
        let again = core.handle_line(line);
        let v = Json::parse(&again).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        // All warm on the second pass: zero intersections in total.
        assert_eq!(v.get("intersections").unwrap().as_u64(), Some(0));
        for entry in v.get("results").unwrap().as_arr().unwrap() {
            assert_eq!(entry.get("source").unwrap().as_str(), Some("memo"));
        }
        // Records are byte-identical between cold and warm (canonicalized
        // order, shortest-round-trip floats) modulo the source markers.
        let strip = |s: &str| s.replace("\"cold\"", "X").replace("\"memo\"", "X");
        let f = Json::parse(&first).unwrap();
        let cold_total = f.get("intersections").unwrap().as_u64().unwrap();
        assert!(cold_total > 0, "first pass mines cold");
        let normalize = |v: &Json| {
            let mut v = v.clone();
            if let Json::Obj(fields) = &mut v {
                fields.retain(|(k, _)| k != "intersections");
            }
            if let Some(Json::Arr(results)) = v.get("results").cloned() {
                let cleaned: Vec<Json> = results
                    .into_iter()
                    .map(|e| {
                        if let Json::Obj(mut fields) = e {
                            fields.retain(|(k, _)| k != "intersections");
                            Json::Obj(fields)
                        } else {
                            e
                        }
                    })
                    .collect();
                if let Json::Obj(fields) = &mut v {
                    for (k, val) in fields.iter_mut() {
                        if k == "results" {
                            *val = Json::Arr(cleaned.clone());
                        }
                    }
                }
            }
            v.to_line()
        };
        assert_eq!(strip(&normalize(&f)), strip(&normalize(&v)));
    }

    #[test]
    fn probe_answers_warm_for_retained_itemsets() {
        let core = core_with_table1();
        // Prime the esup memo at 0.25.
        core.handle_line(
            r#"{"op":"sweep","dataset":"t1","measure":"esup","pft":0.7,"thresholds":[0.25]}"#,
        );
        let resp = core.handle_line(
            r#"{"op":"probe","dataset":"t1","measure":"esup","min_sup":0.5,"pft":0.7,"itemset":[0]}"#,
        );
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("source").unwrap().as_str(), Some("memo"));
        assert_eq!(v.get("intersections").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("frequent").unwrap().as_bool(), Some(true));
        let esup = v.get("esup").unwrap().as_f64().unwrap();
        assert!((esup - 2.1).abs() < 1e-9, "{esup}");
        // A non-frequent pair falls back to the index.
        let resp = core.handle_line(
            r#"{"op":"probe","dataset":"t1","measure":"esup","min_sup":0.5,"pft":0.7,"itemset":[1,3]}"#,
        );
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("source").unwrap().as_str(), Some("index"));
        assert_eq!(v.get("intersections").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("frequent").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn mine_depth_first_is_always_cold_and_errors_cleanly() {
        let core = core_with_table1();
        let resp = core.handle_line(
            r#"{"op":"mine","dataset":"t1","measure":"esup","traversal":"hyper","min_sup":0.5,"pft":0.7}"#,
        );
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("source").unwrap().as_str(), Some("cold"));
        // The unsupported exact × tree cell reports an error response.
        let resp = core.handle_line(
            r#"{"op":"mine","dataset":"t1","measure":"exact-dp","traversal":"tree","min_sup":0.5,"pft":0.7}"#,
        );
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        // Unknown dataset likewise.
        let resp = core.handle_line(
            r#"{"op":"mine","dataset":"absent","measure":"esup","min_sup":0.5,"pft":0.7}"#,
        );
        assert_eq!(
            Json::parse(&resp).unwrap().get("ok").unwrap().as_bool(),
            Some(false)
        );
    }

    #[test]
    fn stats_reports_counters_and_datasets() {
        let core = core_with_table1();
        core.handle_line(
            r#"{"op":"sweep","dataset":"t1","measure":"esup","pft":0.7,"thresholds":[0.5,0.5]}"#,
        );
        let v = Json::parse(&core.handle_line(r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(v.get("memo_hits").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("memo_misses").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("resident_entries").unwrap().as_u64(), Some(1));
        let names = v.get("datasets").unwrap().as_arr().unwrap();
        assert_eq!(names[0].as_str(), Some("t1"));
    }

    #[test]
    fn tcp_roundtrip_matches_in_process() {
        let core = core_with_table1();
        let Ok(server) = TcpServer::start(Arc::clone(&core), "127.0.0.1:0") else {
            // Sandboxed environments may forbid binding; the in-process
            // API is covered by the other tests.
            return;
        };
        let addr = server.local_addr();
        let line = r#"{"op":"sweep","dataset":"t1","measure":"esup","pft":0.7,"thresholds":[0.5],"records":true}"#;
        let expected = core.handle_line(line);
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut got = String::new();
        reader.read_line(&mut got).unwrap();
        // The TCP response is warm (the in-process call primed the memo);
        // compare against a second warm in-process answer.
        let warm = core.handle_line(line);
        assert_eq!(got.trim_end(), warm);
        assert_ne!(expected, ""); // first answer existed
        drop(writer);
        drop(reader);
        server.stop();
    }
}
