//! The cross-query memo: resident frequent lattices keyed by
//! `(dataset, measure, engine)`, shared by every concurrent query.
//!
//! Each entry is a [`ResidentLattice`] mined at the lowest threshold seen
//! so far for its key. A query whose parameters the basis covers is
//! answered warm — retained records re-judged, zero intersections; a query
//! below the basis re-mines cold at the query parameters and swaps the
//! snapshot in (an *extension*, since the new basis covers strictly more).
//! Residency is bounded by the [`ResidentLru`] byte budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ufim_core::prelude::*;
use ufim_miners::resident::ResidentLattice;

/// The memo cache key: one resident lattice per dataset × measure × engine
/// cell. Results are only bit-reusable within a cell — engines agree to
/// 1e-9, not bit-exactly, so they never share an entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Resident dataset name.
    pub dataset: String,
    /// Frequentness measure of the cell.
    pub measure: MeasureKind,
    /// Support engine of the cell.
    pub engine: EngineKind,
}

/// How the memo satisfied one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoOutcome {
    /// Answered from the resident lattice (zero intersections).
    Hit,
    /// No resident lattice: cold mine, snapshot installed.
    Miss,
    /// Resident lattice did not cover the query: cold re-mine at the lower
    /// threshold, snapshot swapped.
    Extend,
}

impl MemoOutcome {
    /// Stable lower-case label for responses and logs.
    pub fn name(self) -> &'static str {
        match self {
            MemoOutcome::Hit => "memo",
            MemoOutcome::Miss => "cold",
            MemoOutcome::Extend => "extend",
        }
    }
}

/// Aggregate memo counters (monotonic; sampled by `stats` responses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoCounters {
    /// Queries answered warm from a resident lattice.
    pub hits: u64,
    /// Queries that cold-mined because nothing was resident.
    pub misses: u64,
    /// Queries that re-mined below the resident basis and swapped it.
    pub extends: u64,
}

/// The shared cross-query memo.
pub struct ResidentMemo {
    cache: ResidentLru<MemoKey, ResidentLattice>,
    hits: AtomicU64,
    misses: AtomicU64,
    extends: AtomicU64,
}

impl ResidentMemo {
    /// An empty memo bounded by `budget_bytes` of retained-lattice weight.
    pub fn new(budget_bytes: u64) -> Self {
        ResidentMemo {
            cache: ResidentLru::new(budget_bytes),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            extends: AtomicU64::new(0),
        }
    }

    /// Answers a level-wise mining query through the memo: warm when the
    /// resident basis covers `params`, otherwise a cold capture-mine that
    /// installs (miss) or swaps (extension) the resident snapshot. The
    /// returned result is canonicalized either way, so identical parameters
    /// always produce identical bytes regardless of temperature.
    ///
    /// # Errors
    /// Propagates parameter validation from the measure constructors.
    pub fn answer(
        &self,
        dataset: &str,
        db: &UncertainDatabase,
        measure: MeasureKind,
        engine: EngineKind,
        params: &MiningParams,
    ) -> Result<(MiningResult, MemoOutcome), CoreError> {
        let key = MemoKey {
            dataset: dataset.to_string(),
            measure,
            engine,
        };
        let n = db.num_transactions();
        let resident = self.cache.get(&key);
        if let Some(lattice) = &resident {
            if let Some(warm) = lattice.answer(n, params)? {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((warm, MemoOutcome::Hit));
            }
        }
        let (lattice, mut cold) = ResidentLattice::mine(db, measure, engine, params)?;
        let bytes = lattice.mem_bytes();
        self.cache.insert(key, lattice, bytes);
        cold.canonicalize();
        let outcome = if resident.is_some() {
            self.extends.fetch_add(1, Ordering::Relaxed);
            MemoOutcome::Extend
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            MemoOutcome::Miss
        };
        Ok((cold, outcome))
    }

    /// The resident lattice covering a probe at `params`, if any; counts a
    /// hit when covered, a miss otherwise (probes never mine).
    ///
    /// # Errors
    /// Propagates parameter validation from the coverage check.
    pub fn covering_lattice(
        &self,
        key: &MemoKey,
        n: usize,
        params: &MiningParams,
    ) -> Result<Option<Arc<ResidentLattice>>, CoreError> {
        if let Some(lattice) = self.cache.get(key) {
            if lattice.covers(n, params)? {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(lattice));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(None)
    }

    /// A snapshot of the hit/miss/extend counters.
    pub fn counters(&self) -> MemoCounters {
        MemoCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            extends: self.extends.load(Ordering::Relaxed),
        }
    }

    /// Number of resident lattices.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.cache.len() == 0
    }

    /// Declared weight of all resident lattices, in bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.cache.resident_bytes()
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.cache.budget_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    #[test]
    fn miss_then_hit_then_extend() {
        let memo = ResidentMemo::new(1 << 20);
        let db = paper_table1();
        let m = MeasureKind::ExpectedSupport;
        let e = EngineKind::default();
        let p = |ms: f64| MiningParams::new(ms, 0.7).unwrap();

        let (cold, o) = memo.answer("t1", &db, m, e, &p(0.5)).unwrap();
        assert_eq!(o, MemoOutcome::Miss);
        assert!(!cold.is_empty());

        // Same threshold again: warm, bit-identical, zero intersections.
        let (warm, o) = memo.answer("t1", &db, m, e, &p(0.5)).unwrap();
        assert_eq!(o, MemoOutcome::Hit);
        assert_eq!(warm.itemsets, cold.itemsets);
        assert_eq!(warm.stats.intersections, 0);

        // Higher threshold: still warm (subset answer).
        let (_, o) = memo.answer("t1", &db, m, e, &p(0.75)).unwrap();
        assert_eq!(o, MemoOutcome::Hit);

        // Lower threshold: extension; afterwards the old basis is warm.
        let (_, o) = memo.answer("t1", &db, m, e, &p(0.25)).unwrap();
        assert_eq!(o, MemoOutcome::Extend);
        let (_, o) = memo.answer("t1", &db, m, e, &p(0.5)).unwrap();
        assert_eq!(o, MemoOutcome::Hit);

        assert_eq!(
            memo.counters(),
            MemoCounters {
                hits: 3,
                misses: 1,
                extends: 1
            }
        );
        assert_eq!(memo.len(), 1);
        assert!(memo.resident_bytes() > 0);
    }

    #[test]
    fn keys_isolate_engines_and_measures() {
        let memo = ResidentMemo::new(1 << 20);
        let db = paper_table1();
        let p = MiningParams::new(0.5, 0.7).unwrap();
        for e in EngineKind::ALL {
            let (_, o) = memo
                .answer("t1", &db, MeasureKind::ExpectedSupport, e, &p)
                .unwrap();
            assert_eq!(o, MemoOutcome::Miss, "{e}");
        }
        let (_, o) = memo
            .answer("t1", &db, MeasureKind::Normal, EngineKind::default(), &p)
            .unwrap();
        assert_eq!(o, MemoOutcome::Miss);
        assert_eq!(memo.len(), EngineKind::ALL.len() + 1);
    }
}
