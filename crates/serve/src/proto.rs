//! The wire protocol: one JSON object per line, hand-rolled (no serde).
//!
//! Requests and responses are single-line JSON objects terminated by
//! `'\n'`. The parser is a minimal recursive-descent reader over the JSON
//! subset the protocol uses (objects, arrays, strings with basic escapes,
//! numbers, booleans, null); the writer emits keys in insertion order and
//! formats floats with Rust's shortest-round-trip `Display`, so a response
//! built from the same records is always the same byte sequence — the
//! property the concurrency isolation tests assert on.

use ufim_core::prelude::*;

/// A parsed JSON value. Object keys keep insertion order (`Vec` of pairs),
/// which is what makes serialization deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the protocol never needs integers beyond 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON value from `text` (must consume the entire input up
    /// to trailing whitespace).
    ///
    /// # Errors
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Serializes compactly (no whitespace), keys in insertion order.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    other => return Err(format!("unsupported escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Re-slice to keep multi-byte UTF-8 sequences intact.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && b[end] >= 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..end]).map_err(|_| "invalid UTF-8".to_string())?,
                );
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        // Rust's `Display` for f64 is shortest-round-trip, so numbers
        // (including bit-exact expected supports) survive the wire.
        Json::Num(x) => {
            if x.fract() == 0.0 && x.abs() < 9.0e15 {
                out.push_str(&format!("{}", *x as i64));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed query request. See the crate docs for the line formats.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Load a named benchmark dataset and keep it resident.
    Load {
        /// Resident name to register the dataset under.
        name: String,
        /// Benchmark generator (`connect`, `accident`, `kosarak`,
        /// `gazelle`, `t25i15d320k`, or `table1`).
        benchmark: String,
        /// Generator scale factor.
        scale: f64,
        /// Generator seed.
        seed: u64,
    },
    /// A threshold sweep: one answer per `min_sup` value, warm whenever the
    /// resident memo covers the threshold.
    Sweep {
        /// Resident dataset name.
        dataset: String,
        /// Frequentness measure of the queried cell.
        measure: MeasureKind,
        /// Support engine of the queried cell.
        engine: EngineKind,
        /// Probabilistic frequent threshold shared by the sweep.
        pft: f64,
        /// The `min_sup` values to answer, in request order.
        thresholds: Vec<f64>,
        /// Include full records in the response (default: counts only).
        records: bool,
        /// Per-request thread cap (admission-cap isolation).
        threads: Option<usize>,
    },
    /// Top-k itemsets by expected support at one parameter point.
    TopK {
        /// Resident dataset name.
        dataset: String,
        /// Frequentness measure of the queried cell.
        measure: MeasureKind,
        /// Support engine of the queried cell.
        engine: EngineKind,
        /// Support-ratio threshold.
        min_sup: f64,
        /// Probabilistic frequent threshold.
        pft: f64,
        /// How many itemsets to return.
        k: usize,
        /// Minimum itemset length to consider.
        min_len: usize,
        /// Per-request thread cap.
        threads: Option<usize>,
    },
    /// Membership/stats probe of one itemset.
    Probe {
        /// Resident dataset name.
        dataset: String,
        /// Frequentness measure to judge under.
        measure: MeasureKind,
        /// Support engine (memo key component).
        engine: EngineKind,
        /// Support-ratio threshold.
        min_sup: f64,
        /// Probabilistic frequent threshold.
        pft: f64,
        /// The itemset to probe.
        itemset: Vec<ItemId>,
        /// Per-request thread cap.
        threads: Option<usize>,
    },
    /// Full mining at one measure × traversal × engine cell.
    Mine {
        /// Resident dataset name.
        dataset: String,
        /// Frequentness measure of the cell.
        measure: MeasureKind,
        /// Lattice traversal of the cell (memo reuse is level-wise only).
        traversal: TraversalKind,
        /// Support engine of the cell.
        engine: EngineKind,
        /// Support-ratio threshold.
        min_sup: f64,
        /// Probabilistic frequent threshold.
        pft: f64,
        /// Include full records in the response.
        records: bool,
        /// Per-request thread cap.
        threads: Option<usize>,
    },
    /// Server counters: datasets, memo hits/misses/extends, residency.
    Stats,
}

fn req_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn req_f64(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field '{key}'"))
}

fn opt_usize(obj: &Json, key: &str) -> Result<Option<usize>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer")),
    }
}

fn req_measure(obj: &Json) -> Result<MeasureKind, String> {
    let s = req_str(obj, "measure")?;
    MeasureKind::parse(&s).ok_or_else(|| format!("unknown measure '{s}'"))
}

fn req_engine(obj: &Json) -> Result<EngineKind, String> {
    match obj.get("engine") {
        None | Some(Json::Null) => Ok(EngineKind::default()),
        Some(v) => {
            let s = v.as_str().ok_or("field 'engine' must be a string")?;
            EngineKind::parse(s).ok_or_else(|| format!("unknown engine '{s}'"))
        }
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    /// A human-readable message suitable for an `{"ok":false}` response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let obj = Json::parse(line)?;
        let op = req_str(&obj, "op")?;
        match op.as_str() {
            "load" => Ok(Request::Load {
                name: req_str(&obj, "name")?,
                benchmark: req_str(&obj, "benchmark")?,
                scale: obj.get("scale").and_then(Json::as_f64).unwrap_or(1.0),
                seed: obj.get("seed").and_then(Json::as_u64).unwrap_or(42),
            }),
            "sweep" => {
                let thresholds = obj
                    .get("thresholds")
                    .and_then(Json::as_arr)
                    .ok_or("missing array field 'thresholds'")?
                    .iter()
                    .map(|v| v.as_f64().ok_or("thresholds must be numbers".to_string()))
                    .collect::<Result<Vec<f64>, String>>()?;
                Ok(Request::Sweep {
                    dataset: req_str(&obj, "dataset")?,
                    measure: req_measure(&obj)?,
                    engine: req_engine(&obj)?,
                    pft: req_f64(&obj, "pft")?,
                    thresholds,
                    records: obj.get("records").and_then(Json::as_bool).unwrap_or(false),
                    threads: opt_usize(&obj, "threads")?,
                })
            }
            "topk" => Ok(Request::TopK {
                dataset: req_str(&obj, "dataset")?,
                measure: req_measure(&obj)?,
                engine: req_engine(&obj)?,
                min_sup: req_f64(&obj, "min_sup")?,
                pft: req_f64(&obj, "pft")?,
                k: obj.get("k").and_then(Json::as_u64).unwrap_or(10) as usize,
                min_len: obj.get("min_len").and_then(Json::as_u64).unwrap_or(1) as usize,
                threads: opt_usize(&obj, "threads")?,
            }),
            "probe" => {
                let itemset = obj
                    .get("itemset")
                    .and_then(Json::as_arr)
                    .ok_or("missing array field 'itemset'")?
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .map(|n| n as ItemId)
                            .ok_or("itemset entries must be item ids".to_string())
                    })
                    .collect::<Result<Vec<ItemId>, String>>()?;
                Ok(Request::Probe {
                    dataset: req_str(&obj, "dataset")?,
                    measure: req_measure(&obj)?,
                    engine: req_engine(&obj)?,
                    min_sup: req_f64(&obj, "min_sup")?,
                    pft: req_f64(&obj, "pft")?,
                    itemset,
                    threads: opt_usize(&obj, "threads")?,
                })
            }
            "mine" => {
                let traversal = match obj.get("traversal") {
                    None | Some(Json::Null) => TraversalKind::LevelWise,
                    Some(v) => {
                        let s = v.as_str().ok_or("field 'traversal' must be a string")?;
                        TraversalKind::parse(s).ok_or_else(|| format!("unknown traversal '{s}'"))?
                    }
                };
                Ok(Request::Mine {
                    dataset: req_str(&obj, "dataset")?,
                    measure: req_measure(&obj)?,
                    traversal,
                    engine: req_engine(&obj)?,
                    min_sup: req_f64(&obj, "min_sup")?,
                    pft: req_f64(&obj, "pft")?,
                    records: obj.get("records").and_then(Json::as_bool).unwrap_or(false),
                    threads: opt_usize(&obj, "threads")?,
                })
            }
            "stats" => Ok(Request::Stats),
            other => Err(format!("unknown op '{other}'")),
        }
    }
}

/// Serializes one mined record for a response, float fields bit-exact.
pub fn record_json(fi: &FrequentItemset) -> Json {
    Json::Obj(vec![
        (
            "items".into(),
            Json::Arr(
                fi.itemset
                    .items()
                    .iter()
                    .map(|&i| Json::Num(f64::from(i)))
                    .collect(),
            ),
        ),
        ("esup".into(), Json::Num(fi.expected_support)),
        ("var".into(), fi.variance.map_or(Json::Null, Json::Num)),
        (
            "prob".into(),
            fi.frequent_prob.map_or(Json::Null, Json::Num),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_the_value_model() {
        let line = r#"{"op":"sweep","dataset":"g","pft":0.7,"thresholds":[0.5,0.25],"records":true,"nested":{"a":[1,true,null,"x\n"]}}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("sweep"));
        assert_eq!(v.get("pft").unwrap().as_f64(), Some(0.7));
        let reparsed = Json::parse(&v.to_line()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn floats_survive_the_wire_bit_exactly() {
        for x in [0.1 + 0.2, 2.1000000000000005, 1.0 / 3.0, 1e-300, 4.0] {
            let line = Json::Num(x).to_line();
            assert_eq!(Json::parse(&line).unwrap().as_f64(), Some(x), "{line}");
        }
    }

    #[test]
    fn requests_parse_with_defaults() {
        let r = Request::parse(
            r#"{"op":"sweep","dataset":"d","measure":"esup","pft":0.7,"thresholds":[0.5]}"#,
        )
        .unwrap();
        match r {
            Request::Sweep {
                engine,
                records,
                threads,
                ..
            } => {
                assert_eq!(engine, EngineKind::default());
                assert!(!records);
                assert_eq!(threads, None);
            }
            other => panic!("{other:?}"),
        }
        let r = Request::parse(
            r#"{"op":"probe","dataset":"d","measure":"exact-dp","engine":"vertical","min_sup":0.5,"pft":0.7,"itemset":[2,0],"threads":4}"#,
        )
        .unwrap();
        match r {
            Request::Probe {
                itemset, threads, ..
            } => {
                assert_eq!(itemset, vec![2, 0]);
                assert_eq!(threads, Some(4));
            }
            other => panic!("{other:?}"),
        }
        assert!(Request::parse(r#"{"op":"nope"}"#).is_err());
        assert!(Request::parse("not json").is_err());
    }
}
