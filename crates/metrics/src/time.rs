//! Wall-clock timing.

use std::time::{Duration, Instant};

/// A simple restartable stopwatch.
#[derive(Clone, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since start/restart.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed seconds as `f64` (the unit of every figure in the paper).
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts and returns the previous elapsed time.
    pub fn lap(&mut self) -> Duration {
        let e = self.started.elapsed();
        self.started = Instant::now();
        e
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Times a closure: `(result, elapsed)`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let (sum, elapsed) = measure(|| (0..10_000).sum::<u64>());
        assert_eq!(sum, 49_995_000);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn lap_restarts() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(2));
        assert!(sw.elapsed() < first);
    }

    #[test]
    fn elapsed_secs_is_consistent() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        let secs = sw.elapsed_secs();
        assert!(secs > 0.0 && secs < 60.0);
    }
}
