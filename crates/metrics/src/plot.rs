//! ASCII line charts for the experiment harness.
//!
//! The paper's figures are log-scale line plots; the harness reproduces
//! their *shape* directly in the terminal so EXPERIMENTS.md can show
//! curve-vs-curve comparisons without a plotting stack. One chart holds
//! several named series over a shared categorical x axis (the sweep
//! points), rendered on a log-10 y grid.

use std::fmt::Write as _;

/// A named data series (one algorithm's curve).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One value per x position; `None` = missing point (e.g. timeout).
    pub values: Vec<Option<f64>>,
}

/// A log-scale ASCII chart.
#[derive(Clone, Debug)]
pub struct AsciiChart {
    title: String,
    x_labels: Vec<String>,
    series: Vec<Series>,
    height: usize,
}

/// Marker characters assigned to series in order.
const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

impl AsciiChart {
    /// Creates a chart with the given title and x-axis labels.
    pub fn new(title: impl Into<String>, x_labels: Vec<String>) -> Self {
        AsciiChart {
            title: title.into(),
            x_labels,
            series: Vec::new(),
            height: 12,
        }
    }

    /// Sets the plot height in rows (default 12, min 3).
    pub fn height(mut self, rows: usize) -> Self {
        self.height = rows.max(3);
        self
    }

    /// Adds a series; its length should equal the x-label count (shorter
    /// series are padded with missing points).
    pub fn add_series(&mut self, name: impl Into<String>, values: Vec<Option<f64>>) -> &mut Self {
        let mut values = values;
        values.resize(self.x_labels.len(), None);
        self.series.push(Series {
            name: name.into(),
            values,
        });
        self
    }

    /// Renders the chart. Values must be positive to appear (log scale);
    /// non-positive and missing values leave gaps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);

        let finite: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().flatten().copied())
            .filter(|&v| v > 0.0 && v.is_finite())
            .collect();
        if finite.is_empty() || self.x_labels.is_empty() {
            let _ = writeln!(out, "  (no data)");
            return out;
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min).log10();
        let hi = finite
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .log10();
        let span = (hi - lo).max(1e-9);
        let rows = self.height;
        let col_width = 6usize;
        let width = self.x_labels.len() * col_width;

        // Grid: rows × width, top row = hi.
        let mut grid = vec![vec![' '; width]; rows];
        for (si, s) in self.series.iter().enumerate() {
            let mark = MARKS[si % MARKS.len()];
            for (xi, v) in s.values.iter().enumerate() {
                let Some(v) = v else { continue };
                if !(*v > 0.0 && v.is_finite()) {
                    continue;
                }
                let frac = (v.log10() - lo) / span;
                let row = ((1.0 - frac) * (rows - 1) as f64).round() as usize;
                let col = xi * col_width + col_width / 2;
                let cell = &mut grid[row.min(rows - 1)][col];
                // Overlapping series: show a combined marker.
                *cell = if *cell == ' ' { mark } else { '?' };
            }
        }

        for (ri, row) in grid.iter().enumerate() {
            let level = hi - span * ri as f64 / (rows - 1) as f64;
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{:>9.2e} |{}", 10f64.powf(level), line);
        }
        let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(width));
        let mut labels = format!("{:>9}  ", "");
        for l in &self.x_labels {
            let mut l = l.clone();
            l.truncate(col_width - 1);
            labels.push_str(&format!("{l:^col_width$}"));
        }
        let _ = writeln!(out, "{labels}");
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{} {}", MARKS[i % MARKS.len()], s.name))
            .collect();
        let _ = writeln!(out, "{:>11}{}", "", legend.join("   "));
        out
    }
}

impl std::fmt::Display for AsciiChart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_series_and_legend() {
        let mut c = AsciiChart::new("test chart", vec!["0.9".into(), "0.5".into(), "0.1".into()]);
        c.add_series("fast", vec![Some(0.01), Some(0.1), Some(1.0)]);
        c.add_series("slow", vec![Some(0.1), Some(1.0), Some(10.0)]);
        let s = c.render();
        assert!(s.contains("test chart"));
        assert!(s.contains("* fast"));
        assert!(s.contains("o slow"));
        assert!(s.contains('|'));
        // Highest value labels the top row.
        assert!(s.contains("1.00e1"));
    }

    #[test]
    fn missing_points_leave_gaps() {
        let mut c = AsciiChart::new("gaps", vec!["a".into(), "b".into()]);
        c.add_series("s", vec![Some(1.0), None]);
        let s = c.render();
        // Only one marker plotted.
        assert_eq!(s.matches('*').count(), 2, "{s}"); // 1 in plot + 1 in legend
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let c = AsciiChart::new("empty", vec!["x".into()]);
        assert!(c.render().contains("(no data)"));
        let mut c2 = AsciiChart::new("nonpositive", vec!["x".into()]);
        c2.add_series("z", vec![Some(0.0)]);
        assert!(c2.render().contains("(no data)"));
    }

    #[test]
    fn short_series_padded() {
        let mut c = AsciiChart::new("pad", vec!["a".into(), "b".into(), "c".into()]);
        c.add_series("s", vec![Some(2.0)]);
        let s = c.render();
        assert!(s.contains("s"));
    }

    #[test]
    fn monotone_series_descends_visually() {
        let mut c = AsciiChart::new("m", (0..4).map(|i| i.to_string()).collect());
        c.add_series(
            "down",
            vec![Some(1000.0), Some(100.0), Some(10.0), Some(1.0)],
        );
        let rendered = c.render();
        // First column's marker must appear on an earlier line than the last
        // column's.
        let lines: Vec<&str> = rendered.lines().collect();
        let row_of = |col_hint: usize| {
            lines
                .iter()
                .position(|l| {
                    l.find('*')
                        .map(|pos| (pos > 10) && ((pos - 11) / 6 == col_hint))
                        .unwrap_or(false)
                })
                .unwrap_or(usize::MAX)
        };
        assert!(row_of(0) < row_of(3), "{rendered}");
    }
}
