//! Fixed-width plain-text tables for harness output.
//!
//! The experiment harness prints paper-shaped rows; this renderer keeps the
//! formatting logic in one place (column sizing, alignment, separators) so
//! every `fig*`/`table*` subcommand reads the same.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept (the
    /// widest row wins).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with left-aligned first column and right-aligned numeric-ish
    /// remaining columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let consider = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        consider(&mut widths, &self.header);
        for r in &self.rows {
            consider(&mut widths, r);
        }

        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            write_row(&mut out, r, &widths);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats seconds the way the paper's figures label them.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a byte count as MB with sensible precision.
pub fn fmt_mb(bytes: usize) -> String {
    let mb = bytes as f64 / (1024.0 * 1024.0);
    if mb < 1.0 {
        format!("{:.0}KB", bytes as f64 / 1024.0)
    } else {
        format!("{mb:.1}MB")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["dataset", "time", "mem"]);
        t.row(["Connect", "10.5s", "120MB"]);
        t.row(["Kosarak-long-name", "3.2s", "80MB"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("dataset"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows equal width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new(["a"]);
        t.row(["x", "y", "z"]);
        t.row(["only"]);
        let s = t.render();
        assert!(s.contains('z'));
        assert!(s.contains("only"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(12.345), "12.35s");
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(0.000_005), "5µs");
        assert_eq!(fmt_mb(2048), "2KB");
        assert_eq!(fmt_mb(10 * 1024 * 1024), "10.0MB");
    }
}
