//! A counting global allocator: the paper's "Memory Cost (MB)" instrument.
//!
//! Wraps the system allocator with three atomic counters — live bytes, peak
//! live bytes, and cumulative allocation count. The experiment harness
//! installs it as the global allocator, resets the peak before each mining
//! run, and reports the post-run peak: the in-process equivalent of the
//! paper's process-level memory measurements, minus OS noise.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ufim_metrics::CountingAllocator = ufim_metrics::CountingAllocator::new();
//!
//! ufim_metrics::alloc::reset_peak();
//! run_miner();
//! println!("peak = {} MB", ufim_metrics::alloc::peak_bytes() as f64 / 1048576.0);
//! ```
//!
//! The counters are global statics (an allocator cannot carry instance
//! state usefully) and `Relaxed` — cross-thread precision of a memory
//! *statistic* does not warrant fence costs in every allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// The wrapping allocator. See the module docs.
pub struct CountingAllocator {
    _private: (),
}

impl CountingAllocator {
    /// Creates the allocator (const, so it can initialize a static).
    pub const fn new() -> Self {
        CountingAllocator { _private: () }
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

fn on_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    // Peak update: a lock-free max. Races can only under-report by the
    // width of a concurrent update, acceptable for a statistic.
    let mut peak = PEAK_BYTES.load(Ordering::Relaxed);
    while live > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY-FREE NOTE: the crate forbids `unsafe_code`, but implementing
// `GlobalAlloc` requires unsafe fn signatures; the bodies only delegate to
// `System` and update counters. The lint exception is scoped to this impl.
#[allow(unsafe_code)]
mod imp {
    use super::*;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size());
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                on_dealloc(layout.size());
                on_alloc(new_size);
            }
            p
        }
    }
}

/// Live heap bytes right now.
pub fn live_bytes() -> usize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Peak live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Cumulative allocation count since process start.
pub fn total_allocations() -> u64 {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size — call before a measured run.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Measures the peak heap growth of `f` relative to its starting live size:
/// returns `(result, peak_delta_bytes)`.
///
/// Only meaningful when [`CountingAllocator`] is installed as the global
/// allocator; otherwise the delta reads 0.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = live_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: these tests do not install the allocator globally (a test
    // harness must not hijack the process allocator); they exercise the
    // counter arithmetic directly.

    #[test]
    fn counters_move_and_peak_holds() {
        let live0 = live_bytes();
        on_alloc(1000);
        assert_eq!(live_bytes(), live0 + 1000);
        let peak_after_alloc = peak_bytes();
        assert!(peak_after_alloc >= live0 + 1000);
        on_dealloc(1000);
        assert_eq!(live_bytes(), live0);
        // Peak survives the free.
        assert_eq!(peak_bytes(), peak_after_alloc);
    }

    #[test]
    fn reset_peak_rebases() {
        on_alloc(5000);
        on_dealloc(5000);
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
    }

    #[test]
    fn allocation_counter_is_monotone() {
        let t0 = total_allocations();
        on_alloc(1);
        on_dealloc(1);
        assert!(total_allocations() > t0);
    }

    #[test]
    fn measure_peak_returns_result() {
        let (value, _delta) = measure_peak(|| 21 * 2);
        assert_eq!(value, 42);
    }
}
