//! Precision and recall of approximate mining results (paper §4.4,
//! Tables 8–9).
//!
//! With `AR` the approximate result set and `ER` the exact result set:
//! `precision = |AR ∩ ER| / |AR|`, `recall = |AR ∩ ER| / |ER|`.

use ufim_core::{FxHashSet, Itemset, MiningResult};

/// A precision/recall pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accuracy {
    /// `|AR ∩ ER| / |AR|` — 1.0 when `AR` is empty (no false positives).
    pub precision: f64,
    /// `|AR ∩ ER| / |ER|` — 1.0 when `ER` is empty (nothing to miss).
    pub recall: f64,
}

impl Accuracy {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Computes precision and recall of `approximate` against `exact`.
///
/// Only itemset membership is compared (the paper's measure); supports and
/// probabilities are ignored.
pub fn precision_recall(approximate: &MiningResult, exact: &MiningResult) -> Accuracy {
    let ar: FxHashSet<&Itemset> = approximate.itemsets.iter().map(|f| &f.itemset).collect();
    let er: FxHashSet<&Itemset> = exact.itemsets.iter().map(|f| &f.itemset).collect();
    let inter = ar.intersection(&er).count() as f64;
    Accuracy {
        precision: if ar.is_empty() {
            1.0
        } else {
            inter / ar.len() as f64
        },
        recall: if er.is_empty() {
            1.0
        } else {
            inter / er.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::FrequentItemset;

    fn result_of(sets: &[&[u32]]) -> MiningResult {
        MiningResult {
            itemsets: sets
                .iter()
                .map(|s| FrequentItemset::with_esup(Itemset::from_items(s.iter().copied()), 1.0))
                .collect(),
            stats: Default::default(),
        }
    }

    #[test]
    fn perfect_agreement() {
        let a = result_of(&[&[1], &[2], &[1, 2]]);
        let acc = precision_recall(&a, &a);
        assert_eq!(acc.precision, 1.0);
        assert_eq!(acc.recall, 1.0);
        assert_eq!(acc.f1(), 1.0);
    }

    #[test]
    fn false_positives_hit_precision() {
        let approx = result_of(&[&[1], &[2], &[3]]);
        let exact = result_of(&[&[1], &[2]]);
        let acc = precision_recall(&approx, &exact);
        assert!((acc.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(acc.recall, 1.0);
    }

    #[test]
    fn false_negatives_hit_recall() {
        let approx = result_of(&[&[1]]);
        let exact = result_of(&[&[1], &[2]]);
        let acc = precision_recall(&approx, &exact);
        assert_eq!(acc.precision, 1.0);
        assert!((acc.recall - 0.5).abs() < 1e-12);
        assert!((acc.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_conventions() {
        let empty = result_of(&[]);
        let nonempty = result_of(&[&[1]]);
        let acc = precision_recall(&empty, &nonempty);
        assert_eq!(acc.precision, 1.0);
        assert_eq!(acc.recall, 0.0);
        let acc = precision_recall(&nonempty, &empty);
        assert_eq!(acc.precision, 0.0);
        assert_eq!(acc.recall, 1.0);
        let acc = precision_recall(&empty, &empty);
        assert_eq!(acc.precision, 1.0);
        assert_eq!(acc.recall, 1.0);
        assert_eq!(acc.f1(), 1.0);
    }

    #[test]
    fn f1_zero_when_disjoint() {
        let a = result_of(&[&[1]]);
        let b = result_of(&[&[2]]);
        assert_eq!(precision_recall(&a, &b).f1(), 0.0);
    }
}
