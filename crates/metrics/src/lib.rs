//! # ufim-metrics
//!
//! Measurement substrate for the experimental study: the paper evaluates
//! every algorithm on **running time**, **memory cost**, and (for the
//! approximate miners) **precision/recall** (§4.1). This crate provides
//! those three instruments plus the plain-text table renderer the harness
//! prints paper-shaped results with.
//!
//! * [`alloc::CountingAllocator`] — a global-allocator wrapper tracking
//!   current and peak heap bytes; install it in a binary with
//!   `#[global_allocator]` and bracket a run with [`alloc::reset_peak`] /
//!   [`alloc::peak_bytes`] to get the paper's "Memory Cost (MB)" metric.
//! * [`time::Stopwatch`] and [`time::measure`] — wall-clock timing.
//! * [`accuracy`] — precision/recall of an approximate result against an
//!   exact one (Tables 8–9).
//! * [`table`] — fixed-width table rendering for harness output.

// `deny`, not `forbid`: the allocator module needs a scoped exception for
// the unavoidable `unsafe impl GlobalAlloc` (bodies delegate to `System`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod alloc;
pub mod plot;
pub mod table;
pub mod time;

pub use accuracy::{precision_recall, Accuracy};
pub use alloc::CountingAllocator;
pub use plot::AsciiChart;
pub use table::Table;
pub use time::{measure, Stopwatch};
