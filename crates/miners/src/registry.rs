//! Algorithm registry: every miner in the study, addressable by name.
//!
//! The experiment harness and examples iterate over this enum to run "all
//! expected-support miners" or "all approximate miners" exactly as the
//! paper's Section 4 groups them.

use crate::matrix::MatrixMiner;
use crate::{
    BruteForce, DcMiner, DpMiner, NDUApriori, NDUHMine, PDUApriori, UApriori, UFPGrowth, UHMine,
};
use ufim_core::traits::{ExpectedSupportMiner, ProbabilisticMiner};
use ufim_core::{EngineKind, MeasureKind, TraversalKind};

/// The paper's three algorithm groups (§3), plus the testing oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgorithmGroup {
    /// Definition 2 miners (§3.1).
    ExpectedSupport,
    /// Exact Definition 4 miners (§3.2).
    ExactProbabilistic,
    /// Approximate Definition 4 miners (§3.3).
    ApproximateProbabilistic,
    /// Not a paper algorithm: ground truth for tests.
    Oracle,
}

impl AlgorithmGroup {
    /// Human-readable group name (paper's section titles).
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmGroup::ExpectedSupport => "Expected Support-based Frequent Algorithms",
            AlgorithmGroup::ExactProbabilistic => "Exact Probabilistic Frequent Algorithms",
            AlgorithmGroup::ApproximateProbabilistic => {
                "Approximate Probabilistic Frequent Algorithms"
            }
            AlgorithmGroup::Oracle => "Oracle",
        }
    }

    /// The group a frequentness measure belongs to — the paper's §3
    /// classification is a function of the measure alone, never of the
    /// traversal.
    pub fn of_measure(measure: MeasureKind) -> Self {
        match measure {
            MeasureKind::ExpectedSupport => AlgorithmGroup::ExpectedSupport,
            MeasureKind::ExactDp | MeasureKind::ExactDc => AlgorithmGroup::ExactProbabilistic,
            MeasureKind::Poisson | MeasureKind::Normal => AlgorithmGroup::ApproximateProbabilistic,
        }
    }
}

/// Every algorithm in the study (the eight of Table 10, the un-pruned exact
/// variants, and the oracle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the algorithm names
pub enum Algorithm {
    UApriori,
    UFPGrowth,
    UHMine,
    DPB,
    DPNB,
    DCB,
    DCNB,
    PDUApriori,
    NDUApriori,
    NDUHMine,
    BruteForce,
}

impl Algorithm {
    /// The algorithms of the paper's Figure 4 (expected-support study).
    pub const EXPECTED_SUPPORT: [Algorithm; 3] =
        [Algorithm::UApriori, Algorithm::UHMine, Algorithm::UFPGrowth];

    /// The algorithms of the paper's Figure 5 (exact probabilistic study).
    pub const EXACT_PROBABILISTIC: [Algorithm; 4] = [
        Algorithm::DPNB,
        Algorithm::DPB,
        Algorithm::DCNB,
        Algorithm::DCB,
    ];

    /// The algorithms of the paper's Figure 6 (approximate study; DCB is the
    /// exact reference line in those plots).
    pub const APPROXIMATE: [Algorithm; 4] = [
        Algorithm::DCB,
        Algorithm::PDUApriori,
        Algorithm::NDUApriori,
        Algorithm::NDUHMine,
    ];

    /// Canonical name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::UApriori => "UApriori",
            Algorithm::UFPGrowth => "UFP-growth",
            Algorithm::UHMine => "UH-Mine",
            Algorithm::DPB => "DPB",
            Algorithm::DPNB => "DPNB",
            Algorithm::DCB => "DCB",
            Algorithm::DCNB => "DCNB",
            Algorithm::PDUApriori => "PDUApriori",
            Algorithm::NDUApriori => "NDUApriori",
            Algorithm::NDUHMine => "NDUH-Mine",
            Algorithm::BruteForce => "BruteForce",
        }
    }

    /// The frequentness measure the algorithm judges by (`None` for the
    /// oracle, which evaluates both definitions directly).
    pub fn measure(self) -> Option<MeasureKind> {
        Some(match self {
            Algorithm::UApriori | Algorithm::UFPGrowth | Algorithm::UHMine => {
                MeasureKind::ExpectedSupport
            }
            Algorithm::DPB | Algorithm::DPNB => MeasureKind::ExactDp,
            Algorithm::DCB | Algorithm::DCNB => MeasureKind::ExactDc,
            Algorithm::PDUApriori => MeasureKind::Poisson,
            Algorithm::NDUApriori | Algorithm::NDUHMine => MeasureKind::Normal,
            Algorithm::BruteForce => return None,
        })
    }

    /// The traversal strategy the algorithm explores the lattice with
    /// (`None` for the oracle, which enumerates the lattice directly).
    pub fn traversal(self) -> Option<TraversalKind> {
        Some(match self {
            Algorithm::UApriori
            | Algorithm::DPB
            | Algorithm::DPNB
            | Algorithm::DCB
            | Algorithm::DCNB
            | Algorithm::PDUApriori
            | Algorithm::NDUApriori => TraversalKind::LevelWise,
            Algorithm::UHMine | Algorithm::NDUHMine => TraversalKind::HyperStructure,
            Algorithm::UFPGrowth => TraversalKind::TreeGrowth,
            Algorithm::BruteForce => return None,
        })
    }

    /// Whether the algorithm runs the Chernoff/count screen (`None` when
    /// the knob does not apply — only the exact miners have `B`/`NB`
    /// variants).
    pub fn chernoff(self) -> Option<bool> {
        match self {
            Algorithm::DPB | Algorithm::DCB => Some(true),
            Algorithm::DPNB | Algorithm::DCNB => Some(false),
            _ => None,
        }
    }

    /// The algorithm's cell in the measure × traversal matrix (`None` for
    /// the oracle). The returned [`MatrixMiner`] produces identical results
    /// to the named miner — the registry test pins this.
    pub fn matrix_cell(self) -> Option<MatrixMiner> {
        let mut cell = MatrixMiner::new(self.measure()?, self.traversal()?);
        if self.chernoff() == Some(false) {
            cell = cell.without_chernoff();
        }
        Some(cell)
    }

    /// The named paper algorithm occupying a matrix cell, if any (with the
    /// Chernoff screen on for exact measures — the `B` variants).
    pub fn from_cell(measure: MeasureKind, traversal: TraversalKind) -> Option<Algorithm> {
        use MeasureKind as M;
        use TraversalKind as T;
        Some(match (measure, traversal) {
            (M::ExpectedSupport, T::LevelWise) => Algorithm::UApriori,
            (M::ExpectedSupport, T::HyperStructure) => Algorithm::UHMine,
            (M::ExpectedSupport, T::TreeGrowth) => Algorithm::UFPGrowth,
            (M::Poisson, T::LevelWise) => Algorithm::PDUApriori,
            (M::Normal, T::LevelWise) => Algorithm::NDUApriori,
            (M::Normal, T::HyperStructure) => Algorithm::NDUHMine,
            (M::ExactDp, T::LevelWise) => Algorithm::DPB,
            (M::ExactDc, T::LevelWise) => Algorithm::DCB,
            _ => return None,
        })
    }

    /// The group the algorithm belongs to — derived from its measure, never
    /// hand-maintained per variant.
    pub fn group(self) -> AlgorithmGroup {
        match self.measure() {
            Some(m) => AlgorithmGroup::of_measure(m),
            None => AlgorithmGroup::Oracle,
        }
    }

    /// Instantiates the miner as an expected-support miner, if it is one
    /// (default backend).
    pub fn expected_support_miner(self) -> Option<Box<dyn ExpectedSupportMiner>> {
        self.expected_support_miner_with(EngineKind::default())
    }

    /// Instantiates an expected-support miner on the given support backend.
    ///
    /// Only the Apriori-framework miners are backend-parameterized; the
    /// depth-first miners (UFP-growth, UH-Mine) and the oracle carry their
    /// own data structures and ignore the selection.
    pub fn expected_support_miner_with(
        self,
        engine: EngineKind,
    ) -> Option<Box<dyn ExpectedSupportMiner>> {
        match self {
            Algorithm::UApriori => Some(Box::new(UApriori::with_engine(engine))),
            Algorithm::UFPGrowth => Some(Box::new(UFPGrowth::new())),
            Algorithm::UHMine => Some(Box::new(UHMine::new())),
            Algorithm::BruteForce => Some(Box::new(BruteForce::new())),
            _ => None,
        }
    }

    /// True when the algorithm's support computation runs over the
    /// pluggable [`EngineKind`] seam (Apriori-framework miners). For the
    /// probabilistic ones the backend travels in
    /// [`ufim_core::MiningParams::engine`].
    pub fn supports_engine_selection(self) -> bool {
        matches!(
            self,
            Algorithm::UApriori
                | Algorithm::PDUApriori
                | Algorithm::NDUApriori
                | Algorithm::DPB
                | Algorithm::DPNB
                | Algorithm::DCB
                | Algorithm::DCNB
        )
    }

    /// Instantiates the miner as a probabilistic miner, if it is one.
    pub fn probabilistic_miner(self) -> Option<Box<dyn ProbabilisticMiner>> {
        match self {
            Algorithm::DPB => Some(Box::new(DpMiner::with_pruning())),
            Algorithm::DPNB => Some(Box::new(DpMiner::without_pruning())),
            Algorithm::DCB => Some(Box::new(DcMiner::with_pruning())),
            Algorithm::DCNB => Some(Box::new(DcMiner::without_pruning())),
            Algorithm::PDUApriori => Some(Box::new(PDUApriori::new())),
            Algorithm::NDUApriori => Some(Box::new(NDUApriori::new())),
            Algorithm::NDUHMine => Some(Box::new(NDUHMine::new())),
            Algorithm::BruteForce => Some(Box::new(BruteForce::new())),
            _ => None,
        }
    }

    /// Parses a paper-style name (case-insensitive, dashes optional).
    pub fn parse(s: &str) -> Option<Algorithm> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        Some(match norm.as_str() {
            "uapriori" => Algorithm::UApriori,
            "ufpgrowth" => Algorithm::UFPGrowth,
            "uhmine" => Algorithm::UHMine,
            "dpb" => Algorithm::DPB,
            "dpnb" => Algorithm::DPNB,
            "dcb" => Algorithm::DCB,
            "dcnb" => Algorithm::DCNB,
            "pduapriori" => Algorithm::PDUApriori,
            "nduapriori" => Algorithm::NDUApriori,
            "nduhmine" => Algorithm::NDUHMine,
            "bruteforce" => Algorithm::BruteForce,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    #[test]
    fn groups_partition_the_algorithms() {
        for a in Algorithm::EXPECTED_SUPPORT {
            assert_eq!(a.group(), AlgorithmGroup::ExpectedSupport);
            assert!(a.expected_support_miner().is_some());
            assert!(a.probabilistic_miner().is_none());
        }
        for a in Algorithm::EXACT_PROBABILISTIC {
            assert_eq!(a.group(), AlgorithmGroup::ExactProbabilistic);
            assert!(a.probabilistic_miner().is_some());
            assert!(a.expected_support_miner().is_none());
        }
        for a in [
            Algorithm::PDUApriori,
            Algorithm::NDUApriori,
            Algorithm::NDUHMine,
        ] {
            assert_eq!(a.group(), AlgorithmGroup::ApproximateProbabilistic);
            assert!(a.probabilistic_miner().is_some());
        }
        // The oracle speaks both interfaces.
        assert!(Algorithm::BruteForce.expected_support_miner().is_some());
        assert!(Algorithm::BruteForce.probabilistic_miner().is_some());
    }

    #[test]
    fn parse_roundtrip() {
        for a in [
            Algorithm::UApriori,
            Algorithm::UFPGrowth,
            Algorithm::UHMine,
            Algorithm::DPB,
            Algorithm::DPNB,
            Algorithm::DCB,
            Algorithm::DCNB,
            Algorithm::PDUApriori,
            Algorithm::NDUApriori,
            Algorithm::NDUHMine,
            Algorithm::BruteForce,
        ] {
            assert_eq!(Algorithm::parse(a.name()), Some(a), "{}", a.name());
        }
        assert_eq!(Algorithm::parse("ufp-GROWTH"), Some(Algorithm::UFPGrowth));
        assert_eq!(Algorithm::parse("nonsense"), None);
    }

    #[test]
    fn engine_selection_reaches_apriori_framework_miners() {
        let db = paper_table1();
        for algo in [Algorithm::UApriori, Algorithm::UFPGrowth, Algorithm::UHMine] {
            let h = algo
                .expected_support_miner_with(EngineKind::Horizontal)
                .unwrap()
                .mine_expected_ratio(&db, 0.25)
                .unwrap();
            for engine in [EngineKind::Vertical, EngineKind::Diffset] {
                let v = algo
                    .expected_support_miner_with(engine)
                    .unwrap()
                    .mine_expected_ratio(&db, 0.25)
                    .unwrap();
                assert_eq!(
                    h.sorted_itemsets(),
                    v.sorted_itemsets(),
                    "{} ({engine})",
                    algo.name()
                );
            }
        }
        assert!(Algorithm::UApriori.supports_engine_selection());
        assert!(Algorithm::DCB.supports_engine_selection());
        assert!(!Algorithm::UHMine.supports_engine_selection());
        assert!(!Algorithm::BruteForce.supports_engine_selection());
    }

    #[test]
    fn boxed_miners_run() {
        let db = paper_table1();
        for a in Algorithm::EXPECTED_SUPPORT {
            let m = a.expected_support_miner().unwrap();
            let r = m.mine_expected_ratio(&db, 0.5).unwrap();
            assert_eq!(r.len(), 2, "{}", a.name());
        }
        for a in Algorithm::EXACT_PROBABILISTIC {
            let m = a.probabilistic_miner().unwrap();
            let r = m.mine_probabilistic_raw(&db, 0.5, 0.7).unwrap();
            assert!(!r.is_empty(), "{}", a.name());
        }
    }

    #[test]
    fn group_names() {
        assert!(AlgorithmGroup::ExpectedSupport.name().contains("Expected"));
        assert!(AlgorithmGroup::Oracle.name().contains("Oracle"));
    }

    const ALL: [Algorithm; 11] = [
        Algorithm::UApriori,
        Algorithm::UFPGrowth,
        Algorithm::UHMine,
        Algorithm::DPB,
        Algorithm::DPNB,
        Algorithm::DCB,
        Algorithm::DCNB,
        Algorithm::PDUApriori,
        Algorithm::NDUApriori,
        Algorithm::NDUHMine,
        Algorithm::BruteForce,
    ];

    #[test]
    fn groups_derive_from_measures() {
        for a in ALL {
            match a.measure() {
                Some(m) => assert_eq!(a.group(), AlgorithmGroup::of_measure(m), "{}", a.name()),
                None => assert_eq!(a.group(), AlgorithmGroup::Oracle),
            }
        }
        // Exactly the oracle lacks a matrix position.
        assert!(Algorithm::BruteForce.measure().is_none());
        assert!(Algorithm::BruteForce.traversal().is_none());
        assert!(Algorithm::BruteForce.matrix_cell().is_none());
        // The Chernoff knob exists only on the exact miners.
        assert_eq!(Algorithm::DPB.chernoff(), Some(true));
        assert_eq!(Algorithm::DCNB.chernoff(), Some(false));
        assert_eq!(Algorithm::UApriori.chernoff(), None);
    }

    #[test]
    fn from_cell_inverts_matrix_cell_for_the_paper_eight() {
        let mut named = 0;
        for m in MeasureKind::ALL {
            for t in TraversalKind::ALL {
                if let Some(a) = Algorithm::from_cell(m, t) {
                    named += 1;
                    assert_eq!(a.measure(), Some(m), "{}", a.name());
                    assert_eq!(a.traversal(), Some(t), "{}", a.name());
                }
            }
        }
        assert_eq!(named, 8, "the paper's Table 10 names eight cells");
        // NB variants map onto the same cells with the screen off.
        let dpnb = Algorithm::DPNB.matrix_cell().unwrap();
        assert!(!dpnb.chernoff);
        assert_eq!(
            Algorithm::from_cell(dpnb.measure, dpnb.traversal),
            Some(Algorithm::DPB)
        );
    }

    #[test]
    fn matrix_cells_reproduce_named_probabilistic_miners() {
        let db = paper_table1();
        let params = ufim_core::MiningParams::new(0.5, 0.7).unwrap();
        for a in ALL {
            let (Some(cell), Some(miner)) = (a.matrix_cell(), a.probabilistic_miner()) else {
                continue;
            };
            if a.measure() == Some(MeasureKind::ExpectedSupport) {
                continue; // named interface is ExpectedSupportMiner
            }
            let got = cell.mine_probabilistic(&db, params).unwrap();
            let want = miner.mine_probabilistic(&db, params).unwrap();
            assert_eq!(
                got.sorted_itemsets(),
                want.sorted_itemsets(),
                "{}",
                a.name()
            );
            assert_eq!(got.stats, want.stats, "{}", a.name());
        }
    }
}
