//! Brute-force oracle: evaluates every itemset straight from the
//! definitions.
//!
//! This is not one of the paper's algorithms — it is the ground truth the
//! test suites measure the eight real miners against. It explores the
//! itemset lattice depth-first, computing each itemset's statistics with the
//! `O(N·|X|)` reference routines from `ufim-core` and the exact
//! Poisson-Binomial machinery from `ufim-stats`, pruning only by the
//! (provably sound) anti-monotonicity of each frequency measure.

use ufim_core::prelude::*;
use ufim_stats::pb::survival_dp;

/// The oracle. `max_len` optionally caps itemset size (handy for bounding
/// randomized tests); `None` explores the full lattice.
#[derive(Clone, Debug, Default)]
pub struct BruteForce {
    /// Maximum itemset cardinality to report (`None` = unbounded).
    pub max_len: Option<usize>,
}

impl BruteForce {
    /// Unbounded oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Oracle limited to itemsets of at most `max_len` items.
    pub fn with_max_len(max_len: usize) -> Self {
        BruteForce {
            max_len: Some(max_len),
        }
    }

    fn depth_ok(&self, len: usize) -> bool {
        self.max_len.is_none_or(|m| len < m)
    }
}

impl MinerInfo for BruteForce {
    fn name(&self) -> &'static str {
        "BruteForce"
    }
    fn description(&self) -> &'static str {
        "definition-level oracle (test ground truth, not a paper algorithm)"
    }
}

impl ExpectedSupportMiner for BruteForce {
    fn mine_expected(
        &self,
        db: &UncertainDatabase,
        min_esup: Ratio,
    ) -> Result<MiningResult, CoreError> {
        let mut result = MiningResult::default();
        if db.is_empty() {
            return Ok(result);
        }
        let threshold = min_esup.threshold_real(db.num_transactions());
        // DFS over the lattice in item order; esup is anti-monotone, so a
        // failing itemset admits no frequent superset *with the same prefix
        // extension discipline* — extending only to larger item ids keeps
        // every itemset reachable exactly once through frequent prefixes
        // (standard Eclat-style argument: any subset of a frequent itemset
        // is frequent, in particular its prefixes).
        let n_items = db.num_items();
        let mut stack: Vec<Itemset> = (0..n_items).map(Itemset::singleton).collect();
        while let Some(itemset) = stack.pop() {
            result.stats.candidates_evaluated += 1;
            let esup = db.expected_support(itemset.items());
            if esup < threshold {
                continue;
            }
            if self.depth_ok(itemset.len()) {
                let last = *itemset.items().last().expect("non-empty");
                for next in last + 1..n_items {
                    stack.push(itemset.with_item(next));
                }
            }
            result
                .itemsets
                .push(FrequentItemset::with_esup(itemset, esup));
        }
        result.canonicalize();
        Ok(result)
    }
}

impl ProbabilisticMiner for BruteForce {
    fn mine_probabilistic(
        &self,
        db: &UncertainDatabase,
        params: MiningParams,
    ) -> Result<MiningResult, CoreError> {
        let mut result = MiningResult::default();
        if db.is_empty() {
            return Ok(result);
        }
        let msup = params.msup(db.num_transactions());
        let pft = params.pft.get();
        let n_items = db.num_items();
        let mut stack: Vec<Itemset> = (0..n_items).map(Itemset::singleton).collect();
        while let Some(itemset) = stack.pop() {
            result.stats.candidates_evaluated += 1;
            let probs = db.itemset_prob_vector(itemset.items());
            // Frequent probability is anti-monotone (Bernecker et al. 2009),
            // so the same prefix-extension DFS is exact.
            let pr = survival_dp(&probs, msup);
            result.stats.exact_evaluations += 1;
            if pr <= pft {
                continue;
            }
            if self.depth_ok(itemset.len()) {
                let last = *itemset.items().last().expect("non-empty");
                for next in last + 1..n_items {
                    stack.push(itemset.with_item(next));
                }
            }
            let (esup, var) = ufim_stats::pb::support_moments(&probs);
            result.itemsets.push(FrequentItemset {
                itemset,
                expected_support: esup,
                variance: Some(var),
                frequent_prob: Some(pr),
            });
        }
        result.canonicalize();
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::{deterministic_small, paper_table1};

    #[test]
    fn example1_expected_support() {
        let db = paper_table1();
        let r = BruteForce::new().mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::singleton(0), Itemset::singleton(2)]
        );
    }

    #[test]
    fn low_threshold_finds_pairs() {
        let db = paper_table1();
        let r = BruteForce::new().mine_expected_ratio(&db, 0.25).unwrap();
        // All 6 singletons plus {A,C} (1.84), {A,E} (0.4+0.4=... no: A,E in
        // T2: .8·.5=.4, T3: .5·.8=.4 → 0.8 < 1.0), {C,E} (T2 .9·.5 + T3
        // .8·.8 = 1.09 ≥ 1.0 ✓), {A,F}(T1 .64 + T3 .15 = .79 ✗),
        // {C,F} (T1 .72 + T3 .24 = .96 ✗), {B,D} (T1 .14 + T4 .25 = .39 ✗).
        assert!(r.get(&Itemset::from_items([0, 2])).is_some());
        assert!(r.get(&Itemset::from_items([2, 4])).is_some());
        assert!(r.get(&Itemset::from_items([0, 4])).is_none());
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn probabilistic_example2_style() {
        let db = paper_table1();
        // min_sup = 0.5 ⇒ msup = 2. Pr{sup(A) ≥ 2} with probs {.8,.8,.5}:
        // 1 - Pr[0] - Pr[1] = 1 - .02 - (.8·.2·.5 + .2·.8·.5 + .2·.2·.5)
        //                   = 1 - .02 - .18 = 0.80.
        let r = BruteForce::new()
            .mine_probabilistic_raw(&db, 0.5, 0.7)
            .unwrap();
        let a = r.get(&Itemset::singleton(0)).expect("{A} frequent");
        assert!((a.frequent_prob.unwrap() - 0.80).abs() < 1e-12);
        // pft above 0.80 excludes {A}.
        let r2 = BruteForce::new()
            .mine_probabilistic_raw(&db, 0.5, 0.85)
            .unwrap();
        assert!(r2.get(&Itemset::singleton(0)).is_none());
    }

    #[test]
    fn deterministic_db_degrades_to_classical_mining() {
        let db = deterministic_small();
        // Classical: support({0,1}) = 3/5.
        let r = BruteForce::new().mine_expected_ratio(&db, 0.6).unwrap();
        assert!(r.get(&Itemset::from_items([0, 1])).is_some());
        assert!(r.get(&Itemset::from_items([0, 1, 2])).is_none()); // 2/5
                                                                   // With certainty, probabilistic mining at any pft agrees.
        let rp = BruteForce::new()
            .mine_probabilistic_raw(&db, 0.6, 0.5)
            .unwrap();
        assert_eq!(r.sorted_itemsets(), rp.sorted_itemsets());
    }

    #[test]
    fn max_len_caps_depth() {
        let db = paper_table1();
        let r = BruteForce::with_max_len(1)
            .mine_expected_ratio(&db, 0.25)
            .unwrap();
        assert_eq!(r.max_len(), 1);
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn empty_db_yields_empty() {
        let db = UncertainDatabase::from_transactions(vec![]);
        assert!(BruteForce::new()
            .mine_expected_ratio(&db, 0.5)
            .unwrap()
            .is_empty());
        assert!(BruteForce::new()
            .mine_probabilistic_raw(&db, 0.5, 0.9)
            .unwrap()
            .is_empty());
    }
}
