//! **NDUApriori** — Normal-approximation probabilistic mining in the
//! Apriori framework (Calders, Garboni, Goethals 2010; paper §3.3.2).
//!
//! By the Lyapunov CLT, `sup(X) → N(esup, Var)` as the database grows; one
//! counting pass that accumulates the variance alongside the expected
//! support therefore yields the (approximate) frequent probability
//!
//! `Pr(X) ≈ 1 − Φ((msup − 0.5 − esup)/√Var)`
//!
//! at expected-support cost — the paper's "bridge" between the two frequent
//! itemset definitions. Unlike PDUApriori, NDUApriori *does* report
//! per-itemset frequent probabilities.

use crate::common::measure::{mine_level_wise, NormalApprox};
use ufim_core::prelude::*;

/// The NDUApriori miner.
#[derive(Clone, Debug, Default)]
pub struct NDUApriori {
    _private: (),
}

impl NDUApriori {
    /// Creates the miner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MinerInfo for NDUApriori {
    fn name(&self) -> &'static str {
        "NDUApriori"
    }
    fn description(&self) -> &'static str {
        "Normal (CLT) approximation of the frequent probability; Apriori framework"
    }
}

impl ProbabilisticMiner for NDUApriori {
    fn mine_probabilistic(
        &self,
        db: &UncertainDatabase,
        params: MiningParams,
    ) -> Result<MiningResult, CoreError> {
        if db.is_empty() {
            return Ok(MiningResult::default());
        }
        // The measure carries the Normal-tail min_esup bound, so the
        // engine-level threshold pushdown fires for this miner too.
        let measure = NormalApprox::new(params.msup(db.num_transactions()), params.pft.get());
        Ok(mine_level_wise(db, measure, params.engine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use ufim_core::examples::paper_table1;

    #[test]
    fn reports_probabilities_and_moments() {
        let db = paper_table1();
        let r = NDUApriori::new()
            .mine_probabilistic_raw(&db, 0.25, 0.5)
            .unwrap();
        assert!(!r.is_empty());
        for fi in &r.itemsets {
            let (we, wv) = db.support_moments(fi.itemset.items());
            assert!((fi.expected_support - we).abs() < 1e-12);
            assert!((fi.variance.unwrap() - wv).abs() < 1e-12);
            let pr = fi.frequent_prob.unwrap();
            assert!(pr > 0.5 && pr <= 1.0);
        }
    }

    #[test]
    fn matches_exact_mining_on_large_database() {
        // CLT quality test: 500 transactions of 4 items with random
        // probabilities. The approximate and exact result sets should agree
        // except possibly on itemsets whose exact Pr sits within the CLT
        // error of pft.
        let mut rng = StdRng::seed_from_u64(7);
        let transactions: Vec<Transaction> = (0..500)
            .map(|_| {
                let units: Vec<(u32, f64)> = (0..4u32)
                    .filter_map(|i| {
                        if rng.gen_bool(0.7) {
                            Some((i, rng.gen_range(0.2..=1.0)))
                        } else {
                            None
                        }
                    })
                    .collect();
                Transaction::new(units).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 4);
        let approx = NDUApriori::new()
            .mine_probabilistic_raw(&db, 0.4, 0.9)
            .unwrap();
        let exact = BruteForce::new()
            .mine_probabilistic_raw(&db, 0.4, 0.9)
            .unwrap();
        // Compare membership, tolerating only boundary itemsets.
        let exact_loose = BruteForce::new()
            .mine_probabilistic_raw(&db, 0.4, 0.85)
            .unwrap();
        for itemset in approx.sorted_itemsets() {
            assert!(
                exact_loose.get(&itemset).is_some(),
                "{itemset}: accepted by NDUApriori but exact Pr ≤ 0.85"
            );
        }
        for itemset in exact.sorted_itemsets() {
            let found = approx.get(&itemset);
            let pr = exact.get(&itemset).unwrap().frequent_prob.unwrap();
            assert!(
                found.is_some() || pr < 0.95,
                "{itemset}: exact Pr = {pr} but NDUApriori missed it"
            );
        }
    }

    #[test]
    fn probability_error_is_small_at_scale() {
        // Direct numeric comparison of reported Pr vs exact Pr.
        let mut rng = StdRng::seed_from_u64(11);
        let transactions: Vec<Transaction> = (0..400)
            .map(|_| Transaction::new([(0u32, rng.gen_range(0.3..0.9))]).unwrap())
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 1);
        let approx = NDUApriori::new()
            .mine_probabilistic_raw(&db, 0.55, 0.1)
            .unwrap();
        if let Some(fi) = approx.get(&Itemset::singleton(0)) {
            let probs = db.itemset_prob_vector(&[0]);
            let exact = ufim_stats::pb::survival_dp(&probs, 220);
            let got = fi.frequent_prob.unwrap();
            assert!(
                (got - exact).abs() < 0.02,
                "CLT error too large: {got} vs {exact}"
            );
        }
    }

    #[test]
    fn empty_db() {
        let db = UncertainDatabase::from_transactions(vec![]);
        assert!(NDUApriori::new()
            .mine_probabilistic_raw(&db, 0.5, 0.9)
            .unwrap()
            .is_empty());
    }
}
