//! **NDUH-Mine** — the paper's own contribution (§3.3.3): UH-Mine's
//! hyper-structure married to the Normal approximation.
//!
//! UH-Mine dominates the expected-support miners on sparse data; the Normal
//! approximation turns `(esup, Var)` into a frequent probability at no extra
//! asymptotic cost. NDUH-Mine therefore runs the UH-Mine depth-first walk
//! with variance accumulation switched on and judges each extension by
//! `Pr(X) ≈ 1 − Φ((msup − 0.5 − esup)/√Var) > pft` — "a win-win partnership
//! in sparse uncertain databases".
//!
//! Implementation note: this module is intentionally thin. The whole
//! algorithm is the depth-first hyper-structure traversal judged by the
//! [`NormalApprox`] measure — literally `DepthFirst<NormalApprox>`, exactly
//! as the paper derives it from UH-Mine.

use crate::common::measure::NormalApprox;
use crate::uh_mine::mine_hyper;
use ufim_core::prelude::*;

/// The NDUH-Mine miner.
#[derive(Clone, Debug, Default)]
pub struct NDUHMine {
    _private: (),
}

impl NDUHMine {
    /// Creates the miner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MinerInfo for NDUHMine {
    fn name(&self) -> &'static str {
        "NDUH-Mine"
    }
    fn description(&self) -> &'static str {
        "UH-Mine hyper-structure + Normal (CLT) frequent-probability judgment (the paper's novel algorithm)"
    }
}

impl ProbabilisticMiner for NDUHMine {
    fn mine_probabilistic(
        &self,
        db: &UncertainDatabase,
        params: MiningParams,
    ) -> Result<MiningResult, CoreError> {
        if db.is_empty() {
            return Ok(MiningResult::default());
        }
        let measure = NormalApprox::new(params.msup(db.num_transactions()), params.pft.get());
        Ok(mine_hyper(db, &measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use crate::ndu_apriori::NDUApriori;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use ufim_core::examples::paper_table1;

    #[test]
    fn reports_probabilities() {
        let db = paper_table1();
        let r = NDUHMine::new()
            .mine_probabilistic_raw(&db, 0.25, 0.5)
            .unwrap();
        assert!(!r.is_empty());
        for fi in &r.itemsets {
            assert!(fi.frequent_prob.is_some());
            assert!(fi.variance.is_some());
        }
    }

    #[test]
    fn agrees_with_nduapriori_everywhere() {
        // Same approximation, different search strategy ⇒ identical answer
        // sets and probabilities (up to float noise).
        let mut rng = StdRng::seed_from_u64(42);
        let transactions: Vec<Transaction> = (0..200)
            .map(|_| {
                let units: Vec<(u32, f64)> = (0..5u32)
                    .filter_map(|i| {
                        if rng.gen_bool(0.6) {
                            Some((i, rng.gen_range(0.1..=1.0)))
                        } else {
                            None
                        }
                    })
                    .collect();
                Transaction::new(units).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 5);
        for (min_sup, pft) in [(0.3, 0.9), (0.2, 0.5), (0.45, 0.7)] {
            let a = NDUHMine::new()
                .mine_probabilistic_raw(&db, min_sup, pft)
                .unwrap();
            let b = NDUApriori::new()
                .mine_probabilistic_raw(&db, min_sup, pft)
                .unwrap();
            assert_eq!(
                a.sorted_itemsets(),
                b.sorted_itemsets(),
                "min_sup={min_sup} pft={pft}"
            );
            for fi in &a.itemsets {
                let other = b.get(&fi.itemset).unwrap();
                assert!(
                    (fi.frequent_prob.unwrap() - other.frequent_prob.unwrap()).abs() < 1e-9,
                    "{}",
                    fi.itemset
                );
            }
        }
    }

    #[test]
    fn tracks_exact_mining_at_scale() {
        let mut rng = StdRng::seed_from_u64(13);
        let transactions: Vec<Transaction> = (0..400)
            .map(|_| {
                let units: Vec<(u32, f64)> = (0..4u32)
                    .filter_map(|i| {
                        if rng.gen_bool(0.65) {
                            Some((i, rng.gen_range(0.3..=1.0)))
                        } else {
                            None
                        }
                    })
                    .collect();
                Transaction::new(units).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 4);
        let approx = NDUHMine::new()
            .mine_probabilistic_raw(&db, 0.4, 0.9)
            .unwrap();
        let exact_loose = BruteForce::new()
            .mine_probabilistic_raw(&db, 0.4, 0.85)
            .unwrap();
        for itemset in approx.sorted_itemsets() {
            assert!(
                exact_loose.get(&itemset).is_some(),
                "{itemset}: accepted but exact Pr ≤ 0.85"
            );
        }
    }

    #[test]
    fn empty_db() {
        let db = UncertainDatabase::from_transactions(vec![]);
        assert!(NDUHMine::new()
            .mine_probabilistic_raw(&db, 0.5, 0.9)
            .unwrap()
            .is_empty());
    }
}
