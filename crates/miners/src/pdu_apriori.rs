//! **PDUApriori** — Poisson-approximation probabilistic mining
//! (Wang et al. 2010; paper §3.3.1).
//!
//! The support of an itemset is Poisson-Binomial; Le Cam's theorem
//! approximates it by Poisson(λ = esup). Because the Poisson survival
//! function is monotone increasing in λ, the probabilistic condition
//! `Pr{Poisson(esup) ≥ msup} > pft` is equivalent to a plain
//! expected-support threshold `esup > λ*` where λ\* solves
//! `Pr{Poisson(λ*) ≥ msup} = pft`. PDUApriori computes λ\* once
//! ([`ufim_stats::poisson::poisson_lambda_for_survival`]) and delegates to
//! UApriori — the entire probabilistic semantics collapses into one
//! threshold inversion, which is why the algorithm runs at
//! expected-support-miner speed.
//!
//! As the paper notes, PDUApriori "cannot return the frequent probability
//! values": it reports membership only (`frequent_prob = None`).

use crate::common::measure::{mine_level_wise, PoissonApprox};
use ufim_core::prelude::*;
use ufim_stats::poisson::poisson_lambda_for_survival;

/// The PDUApriori miner.
#[derive(Clone, Debug, Default)]
pub struct PDUApriori {
    _private: (),
}

impl PDUApriori {
    /// Creates the miner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The derived expected-support threshold λ\* for a given database size
    /// and parameters — exposed for tests and the experiment harness.
    pub fn lambda_star(n: usize, params: MiningParams) -> f64 {
        let msup = params.msup(n);
        let pft = params.pft.get();
        if pft >= 1.0 {
            // Survival can never strictly exceed 1; unreachable via Ratio,
            // kept as a guard for direct callers.
            return f64::INFINITY;
        }
        poisson_lambda_for_survival(msup, pft)
    }
}

impl MinerInfo for PDUApriori {
    fn name(&self) -> &'static str {
        "PDUApriori"
    }
    fn description(&self) -> &'static str {
        "Poisson approximation folded into an expected-support threshold; UApriori framework"
    }
}

impl ProbabilisticMiner for PDUApriori {
    fn mine_probabilistic(
        &self,
        db: &UncertainDatabase,
        params: MiningParams,
    ) -> Result<MiningResult, CoreError> {
        if db.is_empty() {
            return Ok(MiningResult::default());
        }
        // The whole probabilistic semantics lives in the measure's one-time
        // λ* inversion; the traversal is a plain expected-support run.
        match PoissonApprox::from_params(db.num_transactions(), &params)? {
            // λ* > N: esup(X) ≤ N for every itemset, nothing can qualify.
            None => Ok(MiningResult::default()),
            Some(measure) => Ok(mine_level_wise(db, measure, params.engine)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use crate::uapriori::UApriori;
    use ufim_core::examples::paper_table1;
    use ufim_stats::poisson::poisson_survival;

    #[test]
    fn lambda_star_solves_the_survival_equation() {
        let params = MiningParams::new(0.5, 0.9).unwrap();
        let lambda = PDUApriori::lambda_star(100, params);
        assert!((poisson_survival(50, lambda) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn reports_membership_without_probabilities() {
        let db = paper_table1();
        let r = PDUApriori::new()
            .mine_probabilistic_raw(&db, 0.25, 0.5)
            .unwrap();
        assert!(!r.is_empty());
        for fi in &r.itemsets {
            assert!(fi.frequent_prob.is_none(), "{}", fi.itemset);
        }
    }

    #[test]
    fn equivalent_to_uapriori_at_lambda_star() {
        let db = paper_table1();
        let params = MiningParams::new(0.5, 0.7).unwrap();
        let lambda = PDUApriori::lambda_star(db.num_transactions(), params);
        let direct = PDUApriori::new().mine_probabilistic(&db, params).unwrap();
        let manual = UApriori::new()
            .mine_expected_ratio(&db, lambda / db.num_transactions() as f64)
            .unwrap();
        assert_eq!(direct.sorted_itemsets(), manual.sorted_itemsets());
    }

    #[test]
    fn approximates_oracle_reasonably_on_small_db() {
        // The Poisson approximation is coarse at N=4, but the *direction*
        // must hold: anything PDUApriori accepts at a high pft has
        // substantial exact frequent probability.
        let db = paper_table1();
        let approx = PDUApriori::new()
            .mine_probabilistic_raw(&db, 0.25, 0.6)
            .unwrap();
        let exact = BruteForce::new()
            .mine_probabilistic_raw(&db, 0.25, 0.2)
            .unwrap();
        for itemset in approx.sorted_itemsets() {
            assert!(
                exact.get(&itemset).is_some(),
                "{itemset} accepted by PDUApriori but has exact Pr ≤ 0.2"
            );
        }
    }

    #[test]
    fn infeasible_lambda_yields_empty() {
        // min_sup = 1.0 and pft = 0.99 on a tiny DB: λ* exceeds N.
        let db = paper_table1();
        let r = PDUApriori::new()
            .mine_probabilistic_raw(&db, 1.0, 0.99)
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn empty_db() {
        let db = UncertainDatabase::from_transactions(vec![]);
        assert!(PDUApriori::new()
            .mine_probabilistic_raw(&db, 0.5, 0.9)
            .unwrap()
            .is_empty());
    }
}
