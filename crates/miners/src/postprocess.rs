//! Result post-processing: maximal / closed condensation and top-k
//! selection.
//!
//! Frequent itemset result sets are subset-closed (downward closure), so
//! they grow combinatorially on dense data; applications usually want a
//! condensed view. The paper's own follow-on line of work mines
//! *threshold-based frequent closed itemsets over probabilistic data*
//! (Tong, Chen, Ding, ICDE 2012 — its reference \[30\]); these utilities
//! provide the corresponding condensations as post-passes over any
//! [`MiningResult`] produced by the miners in this crate:
//!
//! * [`maximal`] — itemsets with no frequent proper superset;
//! * [`closed`] — itemsets with no frequent proper superset of (nearly)
//!   equal expected support;
//! * [`top_k_by_expected_support`] — the k strongest itemsets, optionally
//!   restricted to a minimum size.

use ufim_core::{FrequentItemset, FxHashMap, ItemId, MiningResult};

/// Indexes result itemsets by length for superset queries.
fn by_len(result: &MiningResult) -> FxHashMap<usize, Vec<&FrequentItemset>> {
    let mut map: FxHashMap<usize, Vec<&FrequentItemset>> = FxHashMap::default();
    for fi in &result.itemsets {
        map.entry(fi.itemset.len()).or_default().push(fi);
    }
    map
}

/// True iff some *proper* superset of `fi` in `index` satisfies `pred`.
fn has_superset<'a>(
    fi: &FrequentItemset,
    index: &FxHashMap<usize, Vec<&'a FrequentItemset>>,
    mut pred: impl FnMut(&'a FrequentItemset) -> bool,
) -> bool {
    let len = fi.itemset.len();
    for (&other_len, group) in index.iter() {
        if other_len <= len {
            continue;
        }
        for other in group {
            if fi.itemset.is_subset_of_sorted(other.itemset.items()) && pred(other) {
                return true;
            }
        }
    }
    false
}

/// The **maximal** frequent itemsets: those with no frequent proper
/// superset. The smallest lossless-for-membership condensation ("X is
/// frequent ⇔ X ⊆ some maximal itemset").
pub fn maximal(result: &MiningResult) -> Vec<&FrequentItemset> {
    let index = by_len(result);
    result
        .itemsets
        .iter()
        .filter(|fi| !has_superset(fi, &index, |_| true))
        .collect()
}

/// The **closed** frequent itemsets under expected support: itemsets with
/// no frequent proper superset whose expected support matches within
/// `tolerance`. With `tolerance = 0.0` this is the classical definition
/// transplanted to `esup` (a strict-equality closure is fragile under
/// floating point, hence the knob; `1e-9` is a good default).
///
/// Closedness is lossless for (membership, esup): every frequent itemset's
/// expected support equals that of its smallest closed superset.
pub fn closed(result: &MiningResult, tolerance: f64) -> Vec<&FrequentItemset> {
    let index = by_len(result);
    result
        .itemsets
        .iter()
        .filter(|fi| {
            !has_superset(fi, &index, |other| {
                (other.expected_support - fi.expected_support).abs() <= tolerance
            })
        })
        .collect()
}

/// The `k` itemsets of largest expected support among those with at least
/// `min_len` items. Ties break lexicographically for determinism.
pub fn top_k_by_expected_support(
    result: &MiningResult,
    k: usize,
    min_len: usize,
) -> Vec<&FrequentItemset> {
    let mut v: Vec<&FrequentItemset> = result
        .itemsets
        .iter()
        .filter(|fi| fi.itemset.len() >= min_len)
        .collect();
    v.sort_by(|a, b| {
        b.expected_support
            .partial_cmp(&a.expected_support)
            .expect("esup is finite")
            .then_with(|| a.itemset.cmp(&b.itemset))
    });
    v.truncate(k);
    v
}

/// Restricts a result to itemsets containing all of `anchor` — "what
/// co-occurs with these items?", the interactive drill-down query.
pub fn containing<'a>(result: &'a MiningResult, anchor: &[ItemId]) -> Vec<&'a FrequentItemset> {
    let mut sorted = anchor.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    result
        .itemsets
        .iter()
        .filter(|fi| {
            sorted
                .iter()
                .all(|&a| fi.itemset.items().binary_search(&a).is_ok())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uapriori::UApriori;
    use ufim_core::examples::paper_table1;
    use ufim_core::prelude::*;

    fn result() -> MiningResult {
        // min_esup = 0.25 on Table 1: six singletons + {A,C} + {C,E}.
        UApriori::new()
            .mine_expected_ratio(&paper_table1(), 0.25)
            .unwrap()
    }

    #[test]
    fn maximal_drops_dominated_singletons() {
        let r = result();
        let max: Vec<_> = maximal(&r).iter().map(|f| f.itemset.clone()).collect();
        // {A}, {C}, {E} are dominated by pairs; B, D, F have no superset.
        assert!(max.contains(&Itemset::from_items([0, 2])));
        assert!(max.contains(&Itemset::from_items([2, 4])));
        assert!(max.contains(&Itemset::singleton(1)));
        assert!(max.contains(&Itemset::singleton(3)));
        assert!(max.contains(&Itemset::singleton(5)));
        assert!(!max.contains(&Itemset::singleton(0)));
        assert!(!max.contains(&Itemset::singleton(2)));
        assert_eq!(max.len(), 5);
    }

    #[test]
    fn membership_reconstructs_from_maximal() {
        let r = result();
        let max = maximal(&r);
        for fi in &r.itemsets {
            assert!(
                max.iter()
                    .any(|m| fi.itemset.is_subset_of_sorted(m.itemset.items())),
                "{} not covered",
                fi.itemset
            );
        }
    }

    #[test]
    fn closed_keeps_distinct_supports() {
        let r = result();
        let closed_sets: Vec<_> = closed(&r, 1e-9).iter().map(|f| f.itemset.clone()).collect();
        // All supports in Table 1 are distinct across subset chains, so
        // every itemset is closed here…
        assert_eq!(closed_sets.len(), r.len());

        // …whereas a constructed plateau collapses: {x} and {x,y} with the
        // same esup ⇒ {x} is not closed.
        let db = UncertainDatabase::from_transactions(vec![
            Transaction::new([(0, 0.5), (1, 1.0)])
                .unwrap();
            4
        ]);
        let r2 = UApriori::new().mine_expected_ratio(&db, 0.25).unwrap();
        let c2: Vec<_> = closed(&r2, 1e-9)
            .iter()
            .map(|f| f.itemset.clone())
            .collect();
        assert!(c2.contains(&Itemset::from_items([0, 1])));
        assert!(
            !c2.contains(&Itemset::singleton(0)),
            "esup({{0}}) == esup({{0,1}})"
        );
        assert!(c2.contains(&Itemset::singleton(1)), "esup({{1}}) = 4 > 2");
    }

    #[test]
    fn closed_is_superset_of_maximal() {
        let r = result();
        let max: Vec<_> = maximal(&r).iter().map(|f| f.itemset.clone()).collect();
        let cls: Vec<_> = closed(&r, 1e-9).iter().map(|f| f.itemset.clone()).collect();
        for m in &max {
            assert!(cls.contains(m), "maximal {m} must be closed");
        }
    }

    #[test]
    fn top_k_orders_by_esup() {
        let r = result();
        let top = top_k_by_expected_support(&r, 3, 1);
        assert_eq!(top[0].itemset, Itemset::singleton(2)); // C: 2.6
        assert_eq!(top[1].itemset, Itemset::singleton(0)); // A: 2.1
        assert_eq!(top[2].itemset, Itemset::from_items([0, 2])); // {A,C}: 1.84
                                                                 // Size restriction.
        let pairs = top_k_by_expected_support(&r, 10, 2);
        assert_eq!(pairs.len(), 2);
        // k larger than the result is fine.
        assert_eq!(top_k_by_expected_support(&r, 100, 1).len(), r.len());
    }

    #[test]
    fn containing_filters_by_anchor() {
        let r = result();
        let with_c: Vec<_> = containing(&r, &[2])
            .iter()
            .map(|f| f.itemset.clone())
            .collect();
        assert_eq!(with_c.len(), 3); // {C}, {A,C}, {C,E}
        let with_ac: Vec<_> = containing(&r, &[0, 2])
            .iter()
            .map(|f| f.itemset.clone())
            .collect();
        assert_eq!(with_ac, vec![Itemset::from_items([0, 2])]);
        assert!(containing(&r, &[0, 3]).is_empty());
    }
}
