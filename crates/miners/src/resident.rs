//! Mining *into* and answering *from* a resident memo — the library half
//! of the query-serving layer's cross-query reuse.
//!
//! A [`ResidentLattice`] is the frequent lattice of one dataset mined once
//! at a **basis** threshold, retained together with every kept candidate's
//! raw engine statistics ([`RetainedRecord`]). Because each measure's
//! keep-set shrinks monotonically as its threshold tightens (the same
//! anti-monotonicity that drives Apriori pruning, here applied along the
//! *parameter* axis), any query whose parameters are **covered** by the
//! basis — `t' ≥ t₀` in the measure's own threshold geometry — is answered
//! by re-judging the retained records: zero database scans, zero tid-list
//! intersections, and records **bit-identical** to a cold
//! [`MatrixMiner`](crate::matrix::MatrixMiner) run at the query parameters
//! (the engine statistics of a candidate do not depend on the threshold,
//! and `judge` is a pure function of those statistics).
//!
//! Coverage per measure kind (same dataset, `n` transactions):
//!
//! | measure | basis mined at | covers query iff |
//! |---|---|---|
//! | `esup` | `N·min_sup₀` | `N·min_sup' ≥ N·min_sup₀` (pft ignored) |
//! | `poisson` | `λ*(msup₀, pft₀)` | `λ*' ≥ λ*₀` (infeasible `λ*'` ⇒ empty) |
//! | `normal` | `(msup₀, pft₀)` | `msup' ≥ msup₀ ∧ pft' ≥ pft₀` |
//! | `exact-dp`/`dc` | `(msup₀, pft₀)` | `msup' ≥ msup₀ ∧ pft' ≥ pft₀` |
//!
//! Queries *below* the basis are not answerable from residency; the serving
//! layer re-mines at the lower threshold (capturing again) and swaps the
//! resident snapshot — a memo *extension*. The lattice itself is an
//! immutable snapshot, which is what makes sharing it across concurrent
//! queries trivially safe.

use crate::common::measure::{
    mine_level_wise_captured, ExactKernel, ExactMeasure, ExpectedSupport, FrequentnessMeasure,
    NormalApprox, PoissonApprox, RetainedRecord,
};
use ufim_core::prelude::*;

/// The basis threshold of a resident lattice, in the owning measure's own
/// geometry (see the module table).
#[derive(Clone, Copy, Debug, PartialEq)]
enum Basis {
    /// `esup` / `poisson`: a derived expected-support cut, in transactions.
    /// `None` for a Poisson basis whose `λ*` was infeasible (empty lattice).
    EsupCut(Option<f64>),
    /// `normal` / exact kernels: the `(msup, pft)` pair.
    MsupPft(usize, f64),
}

/// One dataset's frequent lattice mined at the lowest threshold seen,
/// retained for warm answers at every covered threshold.
pub struct ResidentLattice {
    measure: MeasureKind,
    engine: EngineKind,
    n: usize,
    basis: Basis,
    records: Vec<RetainedRecord>,
    bytes: u64,
}

/// Builds the measure for one `(kind, params)` cell exactly as
/// [`MatrixMiner`](crate::matrix::MatrixMiner) does (Chernoff screening on
/// — the default `B` variants). `Ok(None)` is the Poisson-infeasible case:
/// the cold answer is empty without mining anything.
///
/// The serving layer judges non-resident probe itemsets through this exact
/// recipe so probe verdicts agree with full mines at the same parameters.
///
/// # Errors
/// Propagates parameter validation from the measure constructors.
pub fn boxed_measure(
    kind: MeasureKind,
    n: usize,
    params: &MiningParams,
) -> Result<Option<Box<dyn FrequentnessMeasure + Send + Sync>>, CoreError> {
    Ok(match kind {
        MeasureKind::ExpectedSupport => Some(Box::new(ExpectedSupport::new(
            params.min_sup.threshold_real(n),
        ))),
        MeasureKind::Poisson => PoissonApprox::from_params(n, params)?
            .map(|m| Box::new(m) as Box<dyn FrequentnessMeasure + Send + Sync>),
        MeasureKind::Normal => Some(Box::new(NormalApprox::new(
            params.msup(n),
            params.pft.get(),
        ))),
        MeasureKind::ExactDp => Some(Box::new(ExactMeasure::new(
            ExactKernel::DynamicProgramming,
            true,
            n,
            params,
        ))),
        MeasureKind::ExactDc => Some(Box::new(ExactMeasure::new(
            ExactKernel::DivideConquer,
            true,
            n,
            params,
        ))),
    })
}

impl ResidentLattice {
    /// Cold-mines `db` at `params` on the level-wise traversal, capturing
    /// the kept candidates' statistics, and returns the resident lattice
    /// plus the cold result (bit-identical to
    /// [`MatrixMiner`](crate::matrix::MatrixMiner) at the same cell).
    ///
    /// # Errors
    /// Propagates parameter validation from the measure constructors.
    pub fn mine(
        db: &UncertainDatabase,
        measure: MeasureKind,
        engine: EngineKind,
        params: &MiningParams,
    ) -> Result<(ResidentLattice, MiningResult), CoreError> {
        let n = db.num_transactions();
        let (basis, result, records) = if db.is_empty() {
            // Mirror MatrixMiner: an empty database mines to nothing.
            let basis = match measure {
                MeasureKind::ExpectedSupport | MeasureKind::Poisson => Basis::EsupCut(Some(0.0)),
                _ => Basis::MsupPft(params.msup(n), params.pft.get()),
            };
            (basis, MiningResult::default(), Vec::new())
        } else {
            match measure {
                MeasureKind::ExpectedSupport => {
                    let cut = params.min_sup.threshold_real(n);
                    let (r, recs) = mine_level_wise_captured(db, ExpectedSupport::new(cut), engine);
                    (Basis::EsupCut(Some(cut)), r, recs)
                }
                MeasureKind::Poisson => match PoissonApprox::from_params(n, params)? {
                    None => (Basis::EsupCut(None), MiningResult::default(), Vec::new()),
                    Some(m) => {
                        let cut = m.threshold();
                        let (r, recs) = mine_level_wise_captured(db, m, engine);
                        (Basis::EsupCut(Some(cut)), r, recs)
                    }
                },
                MeasureKind::Normal => {
                    let (msup, pft) = (params.msup(n), params.pft.get());
                    let (r, recs) =
                        mine_level_wise_captured(db, NormalApprox::new(msup, pft), engine);
                    (Basis::MsupPft(msup, pft), r, recs)
                }
                MeasureKind::ExactDp | MeasureKind::ExactDc => {
                    let kernel = if measure == MeasureKind::ExactDp {
                        ExactKernel::DynamicProgramming
                    } else {
                        ExactKernel::DivideConquer
                    };
                    let (msup, pft) = (params.msup(n), params.pft.get());
                    let (r, recs) = mine_level_wise_captured(
                        db,
                        ExactMeasure::new(kernel, true, n, params),
                        engine,
                    );
                    (Basis::MsupPft(msup, pft), r, recs)
                }
            }
        };
        let bytes = records.iter().map(RetainedRecord::mem_bytes).sum::<u64>()
            + std::mem::size_of::<ResidentLattice>() as u64;
        let lattice = ResidentLattice {
            measure,
            engine,
            n,
            basis,
            records,
            bytes,
        };
        Ok((lattice, result))
    }

    /// The measure kind this lattice was mined under.
    pub fn measure(&self) -> MeasureKind {
        self.measure
    }

    /// The support engine this lattice was mined on.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The transaction count of the dataset at mining time.
    pub fn num_transactions(&self) -> usize {
        self.n
    }

    /// Number of retained records (= frequent itemsets at the basis).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the basis answer was empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate resident weight, the LRU budget currency (same
    /// accounting spirit as [`MinerStats::peak_memo_bytes`]).
    pub fn mem_bytes(&self) -> u64 {
        self.bytes
    }

    /// The retained record of `itemset`, if it was frequent at the basis.
    pub fn lookup(&self, itemset: &Itemset) -> Option<&RetainedRecord> {
        self.records.iter().find(|r| &r.itemset == itemset)
    }

    /// Whether a query at `params` over a database of `n` transactions is
    /// answerable from this lattice (see the module coverage table).
    pub fn covers(&self, n: usize, params: &MiningParams) -> Result<bool, CoreError> {
        if n != self.n {
            return Ok(false);
        }
        Ok(match (self.measure, self.basis) {
            (MeasureKind::ExpectedSupport, Basis::EsupCut(Some(cut))) => {
                params.min_sup.threshold_real(n) >= cut
            }
            (MeasureKind::Poisson, Basis::EsupCut(basis)) => {
                match (PoissonApprox::from_params(n, params)?, basis) {
                    // Infeasible λ*': the cold answer is empty — always
                    // answerable regardless of the basis.
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some(q), Some(cut)) => q.threshold() >= cut,
                }
            }
            (_, Basis::MsupPft(msup0, pft0)) => params.msup(n) >= msup0 && params.pft.get() >= pft0,
            _ => false,
        })
    }

    /// Answers a covered query by re-judging the retained records —
    /// `None` if [`covers`](Self::covers) fails. The returned records are
    /// canonicalized (sorted by itemset) and bit-identical to a cold
    /// level-wise [`MatrixMiner`](crate::matrix::MatrixMiner) mine at
    /// `params` (canonicalized likewise); the stats show the warm cost:
    /// zero scans, zero intersections, `candidates_evaluated` = retained
    /// record count.
    ///
    /// # Errors
    /// Propagates parameter validation from the measure constructors.
    pub fn answer(
        &self,
        n: usize,
        params: &MiningParams,
    ) -> Result<Option<MiningResult>, CoreError> {
        if !self.covers(n, params)? {
            return Ok(None);
        }
        let mut result = MiningResult::default();
        result.stats.candidates_evaluated = self.records.len() as u64;
        // Poisson-infeasible query: the cold answer is empty.
        if let Some(m) = boxed_measure(self.measure, n, params)? {
            for rec in &self.records {
                if let Some(fi) = rec.rejudge(&*m, &mut result.stats) {
                    result.itemsets.push(fi);
                }
            }
        }
        result.canonicalize();
        Ok(Some(result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixMiner;
    use ufim_core::examples::paper_table1;

    fn cold(
        measure: MeasureKind,
        engine: EngineKind,
        db: &UncertainDatabase,
        p: &MiningParams,
    ) -> MiningResult {
        let mut r = MatrixMiner::new(measure, TraversalKind::LevelWise)
            .mine_probabilistic(db, p.with_engine(engine))
            .unwrap();
        r.canonicalize();
        r
    }

    #[test]
    fn warm_answers_match_cold_mines_bit_for_bit() {
        let db = paper_table1();
        let basis = MiningParams::new(0.25, 0.3).unwrap();
        for measure in MeasureKind::ALL {
            for engine in EngineKind::ALL {
                let (lat, _) = ResidentLattice::mine(&db, measure, engine, &basis).unwrap();
                for (ms, pft) in [(0.25, 0.3), (0.5, 0.5), (0.5, 0.7), (0.75, 0.9)] {
                    let q = MiningParams::new(ms, pft).unwrap();
                    assert!(lat.covers(db.num_transactions(), &q).unwrap());
                    let warm = lat.answer(db.num_transactions(), &q).unwrap().unwrap();
                    assert_eq!(warm.stats.intersections, 0, "{measure}×{engine}");
                    assert_eq!(warm.stats.scans, 0, "{measure}×{engine}");
                    let want = cold(measure, engine, &db, &q);
                    assert_eq!(
                        warm.itemsets, want.itemsets,
                        "{measure}×{engine} at ({ms},{pft})"
                    );
                }
            }
        }
    }

    #[test]
    fn uncovered_queries_are_refused() {
        let db = paper_table1();
        let basis = MiningParams::new(0.5, 0.7).unwrap();
        let (lat, _) = ResidentLattice::mine(
            &db,
            MeasureKind::ExpectedSupport,
            EngineKind::default(),
            &basis,
        )
        .unwrap();
        let lower = MiningParams::new(0.25, 0.7).unwrap();
        let n = db.num_transactions();
        assert!(!lat.covers(n, &lower).unwrap());
        assert!(lat.answer(n, &lower).unwrap().is_none());
        // A different database size is never covered.
        assert!(!lat.covers(n + 1, &basis).unwrap());
    }

    #[test]
    fn mine_returns_the_cold_result_and_retains_its_records() {
        let db = paper_table1();
        let p = MiningParams::new(0.5, 0.7).unwrap();
        let (lat, mut mined) =
            ResidentLattice::mine(&db, MeasureKind::ExpectedSupport, EngineKind::default(), &p)
                .unwrap();
        let want = cold(MeasureKind::ExpectedSupport, EngineKind::default(), &db, &p);
        mined.canonicalize();
        assert_eq!(mined.itemsets, want.itemsets);
        assert_eq!(lat.len(), want.len());
        assert!(lat.mem_bytes() > 0);
        for fi in &want.itemsets {
            let rec = lat.lookup(&fi.itemset).unwrap();
            assert_eq!(rec.esup, fi.expected_support);
        }
        assert!(lat.lookup(&Itemset::from_items([0, 1, 2])).is_none());
    }

    #[test]
    fn poisson_infeasible_queries_answer_empty() {
        let db = paper_table1();
        let basis = MiningParams::new(0.25, 0.3).unwrap();
        let (lat, _) =
            ResidentLattice::mine(&db, MeasureKind::Poisson, EngineKind::default(), &basis)
                .unwrap();
        // min_sup 1.0 at pft 0.99 pushes λ* past N: cold answer is empty.
        let q = MiningParams::new(1.0, 0.99).unwrap();
        let n = db.num_transactions();
        assert!(lat.covers(n, &q).unwrap());
        let warm = lat.answer(n, &q).unwrap().unwrap();
        assert!(warm.is_empty());
        assert_eq!(
            warm.itemsets,
            cold(MeasureKind::Poisson, EngineKind::default(), &db, &q).itemsets
        );
    }
}
