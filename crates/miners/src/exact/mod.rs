//! Exact probabilistic frequent itemset mining (paper §3.2): the dynamic
//! programming (DP) and divide-and-conquer (DC) algorithms, each with and
//! without Chernoff-bound pruning (DPB/DPNB/DCB/DCNB).
//!
//! Both algorithms run in the shared Apriori scaffold — frequent probability
//! is anti-monotone (Bernecker et al. 2009), so downward closure justifies
//! level-wise candidate generation — and differ only in the kernel that
//! turns a candidate's per-transaction probability vector into
//! `Pr{sup ≥ msup}`:
//!
//! * **DP**: threshold-truncated dynamic programming,
//!   `O(N · msup)` per itemset ([`ufim_stats::pb::survival_dp`]);
//! * **DC**: divide-and-conquer PMF construction with FFT convolution,
//!   `O(N log N)` per itemset ([`ufim_stats::pb::pmf_divide_conquer`]).
//!   DC materializes the candidates' probability vectors, trading memory
//!   for speed — the paper's Fig 5 memory plots show exactly this.
//!
//! The `B` variants run a cheap pre-pass per level (expected support +
//! nonzero count in one scan), prune candidates whose Chernoff upper bound
//! (§3.2.3, Lemma 1) already fails `pft` — plus the free *count* shortcut
//! `|{t : q_t > 0}| < msup ⇒ Pr = 0` — and only then pay the exact kernel
//! for survivors. The `NB` variants evaluate every candidate exactly.

mod engine;

pub use engine::{DcMiner, DpMiner, ExactKernel};
