//! The exact DP/DC ± Chernoff miner family, instantiated from the shared
//! measure × traversal machinery: an
//! [`ExactMeasure`](crate::common::measure::ExactMeasure) judged level-wise
//! through the generic
//! [`MeasureEvaluator`](crate::common::measure::MeasureEvaluator).

use crate::common::measure::{mine_level_wise, ExactMeasure};
use ufim_core::prelude::*;

pub use crate::common::measure::ExactKernel;

/// The **DP** miner family (paper §3.2.1): `DpMiner::with_pruning()` is DPB,
/// `DpMiner::without_pruning()` is DPNB.
#[derive(Clone, Debug)]
pub struct DpMiner {
    chernoff: bool,
}

impl DpMiner {
    /// DPB: dynamic programming with Chernoff-bound pruning.
    pub fn with_pruning() -> Self {
        DpMiner { chernoff: true }
    }
    /// DPNB: dynamic programming, no bound.
    pub fn without_pruning() -> Self {
        DpMiner { chernoff: false }
    }
}

impl MinerInfo for DpMiner {
    fn name(&self) -> &'static str {
        if self.chernoff {
            "DPB"
        } else {
            "DPNB"
        }
    }
    fn description(&self) -> &'static str {
        "exact frequent probability via O(N·msup) dynamic programming (Apriori framework)"
    }
}

/// The **DC** miner family (paper §3.2.2): `DcMiner::with_pruning()` is DCB,
/// `DcMiner::without_pruning()` is DCNB.
#[derive(Clone, Debug)]
pub struct DcMiner {
    chernoff: bool,
}

impl DcMiner {
    /// DCB: divide-and-conquer with Chernoff-bound pruning.
    pub fn with_pruning() -> Self {
        DcMiner { chernoff: true }
    }
    /// DCNB: divide-and-conquer, no bound.
    pub fn without_pruning() -> Self {
        DcMiner { chernoff: false }
    }
}

impl MinerInfo for DcMiner {
    fn name(&self) -> &'static str {
        if self.chernoff {
            "DCB"
        } else {
            "DCNB"
        }
    }
    fn description(&self) -> &'static str {
        "exact frequent probability via divide-and-conquer + FFT convolution (Apriori framework)"
    }
}

fn mine_exact(
    kernel: ExactKernel,
    chernoff: bool,
    db: &UncertainDatabase,
    params: MiningParams,
) -> MiningResult {
    if db.is_empty() {
        return MiningResult::default();
    }
    let measure = ExactMeasure::new(kernel, chernoff, db.num_transactions(), &params);
    mine_level_wise(db, measure, params.engine)
}

impl ProbabilisticMiner for DpMiner {
    fn mine_probabilistic(
        &self,
        db: &UncertainDatabase,
        params: MiningParams,
    ) -> Result<MiningResult, CoreError> {
        Ok(mine_exact(
            ExactKernel::DynamicProgramming,
            self.chernoff,
            db,
            params,
        ))
    }
}

impl ProbabilisticMiner for DcMiner {
    fn mine_probabilistic(
        &self,
        db: &UncertainDatabase,
        params: MiningParams,
    ) -> Result<MiningResult, CoreError> {
        Ok(mine_exact(
            ExactKernel::DivideConquer,
            self.chernoff,
            db,
            params,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use ufim_core::examples::{deterministic_small, paper_table1};

    fn all_four() -> Vec<(&'static str, Box<dyn ProbabilisticMiner>)> {
        vec![
            ("DPB", Box::new(DpMiner::with_pruning())),
            ("DPNB", Box::new(DpMiner::without_pruning())),
            ("DCB", Box::new(DcMiner::with_pruning())),
            ("DCNB", Box::new(DcMiner::without_pruning())),
        ]
    }

    #[test]
    fn names() {
        assert_eq!(DpMiner::with_pruning().name(), "DPB");
        assert_eq!(DpMiner::without_pruning().name(), "DPNB");
        assert_eq!(DcMiner::with_pruning().name(), "DCB");
        assert_eq!(DcMiner::without_pruning().name(), "DCNB");
    }

    #[test]
    fn all_variants_agree_with_oracle_on_paper_db() {
        let db = paper_table1();
        for (min_sup, pft) in [
            (0.5, 0.7),
            (0.5, 0.85),
            (0.25, 0.5),
            (0.75, 0.3),
            (0.25, 0.9),
        ] {
            let oracle = BruteForce::new()
                .mine_probabilistic_raw(&db, min_sup, pft)
                .unwrap();
            for (name, miner) in all_four() {
                let r = miner.mine_probabilistic_raw(&db, min_sup, pft).unwrap();
                assert_eq!(
                    r.sorted_itemsets(),
                    oracle.sorted_itemsets(),
                    "{name} at min_sup={min_sup}, pft={pft}"
                );
            }
        }
    }

    #[test]
    fn frequent_probabilities_are_exact() {
        let db = paper_table1();
        let oracle = BruteForce::new()
            .mine_probabilistic_raw(&db, 0.25, 0.5)
            .unwrap();
        for (name, miner) in all_four() {
            let r = miner.mine_probabilistic_raw(&db, 0.25, 0.5).unwrap();
            for fi in &r.itemsets {
                let want = oracle.get(&fi.itemset).expect("same sets").frequent_prob;
                let got = fi.frequent_prob.expect("exact miners report Pr");
                assert!(
                    (got - want.unwrap()).abs() < 1e-9,
                    "{name} {}: {got} vs {want:?}",
                    fi.itemset
                );
            }
        }
    }

    #[test]
    fn chernoff_pruning_fires_but_preserves_results() {
        // Deterministic-ish DB where many candidates are hopeless: pruning
        // counters must move, answers must not.
        let db = deterministic_small();
        let with = DpMiner::with_pruning()
            .mine_probabilistic_raw(&db, 0.8, 0.9)
            .unwrap();
        let without = DpMiner::without_pruning()
            .mine_probabilistic_raw(&db, 0.8, 0.9)
            .unwrap();
        assert_eq!(with.sorted_itemsets(), without.sorted_itemsets());
        assert!(
            with.stats.candidates_pruned_chernoff + with.stats.candidates_pruned_count > 0,
            "pruning should fire on hopeless candidates: {:?}",
            with.stats
        );
        assert!(
            with.stats.exact_evaluations <= without.stats.exact_evaluations,
            "pruning must not increase exact evaluations"
        );
    }

    #[test]
    fn deterministic_db_matches_classical_support() {
        // With certainty, Pr{sup ≥ msup} ∈ {0,1}: probabilistic mining at
        // any pft equals classical mining at min_sup.
        let db = deterministic_small();
        let r = DcMiner::with_pruning()
            .mine_probabilistic_raw(&db, 0.6, 0.5)
            .unwrap();
        let classical = BruteForce::new().mine_expected_ratio(&db, 0.6).unwrap();
        assert_eq!(r.sorted_itemsets(), classical.sorted_itemsets());
        for fi in &r.itemsets {
            assert_eq!(fi.frequent_prob, Some(1.0), "{}", fi.itemset);
        }
    }

    #[test]
    fn empty_db() {
        let db = UncertainDatabase::from_transactions(vec![]);
        for (_, miner) in all_four() {
            assert!(miner
                .mine_probabilistic_raw(&db, 0.5, 0.9)
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn dc_and_dp_kernels_agree_on_larger_random_db() {
        // 60 transactions of up to 6 items — large enough for multi-level
        // recursion, small enough for the oracle.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        let transactions: Vec<Transaction> = (0..60)
            .map(|_| {
                let units: Vec<(u32, f64)> = (0..6u32)
                    .filter_map(|i| {
                        if rng.gen_bool(0.5) {
                            Some((i, rng.gen_range(0.05..=1.0)))
                        } else {
                            None
                        }
                    })
                    .collect();
                Transaction::new(units).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 6);
        let oracle = BruteForce::new()
            .mine_probabilistic_raw(&db, 0.3, 0.6)
            .unwrap();
        for (name, miner) in all_four() {
            let r = miner.mine_probabilistic_raw(&db, 0.3, 0.6).unwrap();
            assert_eq!(
                r.sorted_itemsets(),
                oracle.sorted_itemsets(),
                "{name} diverged from oracle"
            );
        }
    }
}
