//! **UH-Mine** — expected-support mining over the UH-Struct hyper-structure
//! (Aggarwal et al. 2009, extending H-Mine; paper §3.1.3).
//!
//! All frequent-item-filtered transactions are materialized once into a flat
//! arena of `(item, probability)` cells, sorted per transaction by global
//! frequency rank (the paper's Figure 2). Mining is depth-first: a *head
//! table* for prefix `P` holds, per extension item `y`, the projected rows —
//! pointers into the arena plus the accumulated prefix multiplier
//! `m_t = Π_{x∈P} p_t(x)` — and the running expected support
//! `Σ_t m_t · p_t(y)` (Figure 3). Recursing on `y` just advances each row's
//! pointer and multiplies in `p_t(y)`; no structure is ever copied, which is
//! why UH-Mine shines exactly where UFP-growth drowns (sparse data, low
//! thresholds).
//!
//! The walker accumulates whatever statistics the active
//! [`FrequentnessMeasure`] requests — expected support always, the variance
//! `Σ q_t(1 − q_t)` for Normal-approximation measures, and (because each
//! head-table row's multiplier *is* the prefix's containment probability in
//! that transaction) the full per-transaction probability vector for the
//! exact measures. Swapping the measure is the entire difference between
//! UH-Mine, the paper's novel NDUH-Mine (§3.3.3), and the previously
//! unbuildable exact-DP/DC-on-UH-Mine cells of the matrix.
//!
//! ## Parallelism
//!
//! The walk decomposes **recursively**: at every level of the depth-first
//! expansion, a kept extension whose projected rows clear
//! `SPAWN_MIN_ROWS` (and whose prefix is shorter than
//! `SPAWN_MAX_DEPTH`) is re-spawned as a nested task on the
//! work-stealing pool ([`ufim_core::parallel::scope`]); smaller subtrees
//! recurse inline. The arena is shared read-only — subtrees never touch
//! each other's rows — so a single dominant first-level subtree (deep
//! skew) splits again below the root instead of serializing on one
//! worker. Each task mines into its own [`MiningResult`] and pushes it
//! into an [`OrderedSink`] under a spawn-order key; the sink merges in
//! key order. Because the spawn decisions are a pure function of the
//! input (sizes and depths — identical for every pool size > 1, and pool
//! size 1 runs everything inline), every float is computed within exactly
//! one task and merged counters are integer sums/maxes, output records
//! *and* [`MinerStats`] are bit-identical for every `UFIM_THREADS`.

use crate::common::measure::{select_items, CandidateStats, FrequentnessMeasure, Screen};
use crate::common::order::FrequencyOrder;
use ufim_core::parallel::{child_key, scope, OrderedSink, Scope};
use ufim_core::prelude::*;

/// Projected-row count above which a kept extension's whole subtree is
/// spawned as a nested pool task instead of recursing inline. Chosen so
/// task overhead (~a queue push and an allocation) is noise against the
/// head-table pass it buys, and so tiny databases never spawn at all.
const SPAWN_MIN_ROWS: usize = 1 << 10;

/// Prefix length beyond which subtrees always recurse inline — a
/// backstop bounding task bookkeeping on pathologically deep lattices
/// (row counts shrink monotonically, so this is rarely the binding cut).
const SPAWN_MAX_DEPTH: usize = 24;

/// The UH-Mine miner.
#[derive(Clone, Debug, Default)]
pub struct UHMine {
    /// Also accumulate per-itemset support variance (used by NDUH-Mine).
    pub compute_variance: bool,
}

impl UHMine {
    /// Plain UH-Mine.
    pub fn new() -> Self {
        Self::default()
    }

    /// UH-Mine recording each itemset's support variance.
    pub fn with_variance() -> Self {
        UHMine {
            compute_variance: true,
        }
    }
}

impl MinerInfo for UHMine {
    fn name(&self) -> &'static str {
        "UH-Mine"
    }
    fn description(&self) -> &'static str {
        "depth-first search over the UH-Struct (head tables + pointer arena)"
    }
}

/// One arena cell: item (as frequency rank) and its probability.
#[derive(Clone, Copy)]
struct Cell {
    rank: u32,
    prob: f64,
}

/// A projected transaction row: the cells still ahead of the prefix, plus
/// the prefix containment probability.
#[derive(Clone, Copy)]
pub(crate) struct Row {
    /// Arena index of the first remaining cell.
    next: u32,
    /// Arena index one past the transaction's last cell.
    end: u32,
    /// `Π p_t(x)` over the prefix items.
    mult: f64,
}

/// The shared mining engine. The measure decides whether an extension is
/// output *and* expanded — every measure in the matrix is anti-monotone
/// under its own semantics (the approximations by construction), so a
/// failing prefix never hides a passing extension.
pub(crate) struct UhEngine<'a, M: FrequentnessMeasure> {
    arena: Vec<Cell>,
    order: &'a FrequencyOrder,
    measure: &'a M,
}

impl<'a, M: FrequentnessMeasure> UhEngine<'a, M> {
    /// Builds the UH-Struct and returns the engine plus the initial rows.
    pub(crate) fn build(
        db: &UncertainDatabase,
        order: &'a FrequencyOrder,
        measure: &'a M,
        stats: &mut MinerStats,
    ) -> (Self, Vec<Row>) {
        let mut arena = Vec::new();
        let mut rows = Vec::new();
        for t in db.transactions() {
            let proj = order.project(t.items(), t.probs());
            if proj.is_empty() {
                continue;
            }
            let start = arena.len() as u32;
            arena.extend(proj.iter().map(|&(rank, prob)| Cell { rank, prob }));
            rows.push(Row {
                next: start,
                end: arena.len() as u32,
                mult: 1.0,
            });
        }
        stats.scans += 1;
        stats.peak_structure_nodes = stats.peak_structure_nodes.max(arena.len() as u64);
        (
            UhEngine {
                arena,
                order,
                measure,
            },
            rows,
        )
    }

    /// Builds the head table for `rows` — per extension rank, the
    /// accumulated `(esup, var)` and the projected rows — returned in
    /// ascending-rank order (descending global esup), and charges the pass
    /// as one projection scan.
    fn head_table(&self, rows: &[Row], out: &mut MiningResult) -> Vec<(u32, f64, f64, Vec<Row>)> {
        let needs = self.measure.needs();
        // Rank-keyed dense storage would waste memory on wide
        // vocabularies, so use a hash table (the paper's head tables are
        // equally per-prefix structures).
        let mut head: FxHashMap<u32, (f64, f64, Vec<Row>)> = FxHashMap::default();
        for row in rows {
            let mut pos = row.next;
            while pos < row.end {
                let cell = self.arena[pos as usize];
                let q = row.mult * cell.prob;
                let entry = head
                    .entry(cell.rank)
                    .or_insert_with(|| (0.0, 0.0, Vec::new()));
                entry.0 += q;
                if needs.variance {
                    entry.1 += q * (1.0 - q);
                }
                entry.2.push(Row {
                    next: pos + 1,
                    end: row.end,
                    mult: q,
                });
                pos += 1;
            }
        }
        out.stats.scans += 1;
        let mut entries: Vec<(u32, f64, f64, Vec<Row>)> = head
            .into_iter()
            .map(|(rank, (esup, var, rows))| (rank, esup, var, rows))
            .collect();
        entries.sort_unstable_by_key(|&(rank, ..)| rank);
        entries
    }

    /// Judges one head-table entry. On keep, pushes `order.item(rank)`
    /// onto `prefix`, emits the record, and returns `true` — the caller
    /// recurses into the entry's rows and pops afterwards.
    fn judge_entry(
        &self,
        prefix: &mut Vec<ItemId>,
        rank: u32,
        esup: f64,
        var: f64,
        next_rows: &[Row],
        out: &mut MiningResult,
    ) -> bool {
        out.stats.candidates_evaluated += 1;
        match self.measure.screen(esup, next_rows.len() as u64) {
            Screen::Keep => {}
            Screen::PruneCount => {
                out.stats.candidates_pruned_count += 1;
                return false;
            }
            Screen::PruneBound => {
                out.stats.candidates_pruned_chernoff += 1;
                return false;
            }
        }
        // Each projected row's multiplier is exactly the candidate's
        // containment probability in that transaction, in transaction
        // order — the exact kernels' input, gathered for free.
        let qs: Option<Vec<f64>> = self
            .measure
            .needs()
            .prob_vector
            .then(|| next_rows.iter().map(|r| r.mult).collect());
        let c = CandidateStats {
            esup,
            variance: var,
            count: next_rows.len() as u64,
            probs: qs.as_deref(),
        };
        let Some(j) = self.measure.judge(&c, &mut out.stats) else {
            return false;
        };
        prefix.push(self.order.item(rank));
        out.itemsets.push(FrequentItemset {
            itemset: Itemset::from_items(prefix.iter().copied()),
            expected_support: j.expected_support,
            variance: j.variance,
            frequent_prob: j.frequent_prob,
        });
        true
    }

    /// Depth-first expansion of `prefix` over `rows` — one head-table
    /// pass, then [`UhEngine::expand_entries`] over its output.
    #[allow(clippy::too_many_arguments)] // one recursion context, kept flat like the sequential original
    pub(crate) fn mine_scoped<'env>(
        &'env self,
        s: &Scope<'env>,
        sink: &'env OrderedSink<MiningResult>,
        task_key: &[u32],
        spawn_seq: &mut u32,
        prefix: &mut Vec<ItemId>,
        rows: &[Row],
        out: &mut MiningResult,
    ) {
        let entries = self.head_table(rows, out);
        self.expand_entries(s, sink, task_key, spawn_seq, prefix, entries, out);
    }

    /// Judges and expands one level's head-table entries, re-spawning
    /// large subtrees as nested pool tasks (see the module docs on the
    /// cutoffs and the determinism argument). Split from
    /// [`UhEngine::mine_scoped`] so the root level can free its row
    /// projection between the head-table pass and the expansion.
    ///
    /// `task_key`/`spawn_seq` identify the enclosing task and its running
    /// spawn ordinal: a spawned child gets `child_key(task_key,
    /// spawn_seq)`, mines into a fresh local result, and pushes it into
    /// `sink` under that key; inline recursion keeps extending the same
    /// `out` under the same key/counter. Results merged in key order
    /// reproduce the sequential spawn order exactly.
    #[allow(clippy::too_many_arguments)] // one recursion context, kept flat like the sequential original
    fn expand_entries<'env>(
        &'env self,
        s: &Scope<'env>,
        sink: &'env OrderedSink<MiningResult>,
        task_key: &[u32],
        spawn_seq: &mut u32,
        prefix: &mut Vec<ItemId>,
        entries: Vec<(u32, f64, f64, Vec<Row>)>,
        out: &mut MiningResult,
    ) {
        for (rank, esup, var, next_rows) in entries {
            if self.judge_entry(prefix, rank, esup, var, &next_rows, out) {
                if s.threads() > 1
                    && prefix.len() < SPAWN_MAX_DEPTH
                    && next_rows.len() >= SPAWN_MIN_ROWS
                {
                    let key = child_key(task_key, spawn_seq);
                    let child_prefix = prefix.clone();
                    s.spawn(move |s| {
                        let mut local = MiningResult::default();
                        let mut child_prefix = child_prefix;
                        let mut child_seq = 0;
                        self.mine_scoped(
                            s,
                            sink,
                            &key,
                            &mut child_seq,
                            &mut child_prefix,
                            &next_rows,
                            &mut local,
                        );
                        sink.push(key, local);
                    });
                } else {
                    self.mine_scoped(s, sink, task_key, spawn_seq, prefix, &next_rows, out);
                }
                prefix.pop();
            }
        }
    }
}

/// Runs the depth-first hyper-structure traversal of `measure` — the
/// `HyperStructure` column of the matrix as one function. Item-level
/// selection, the UH-Struct build, and the recursive walk all consult the
/// same measure, exactly as UH-Mine (expected support) and NDUH-Mine
/// (Normal approximation) always did.
///
/// The walk re-spawns large subtrees at every level (see the module docs
/// on the cutoffs and the determinism of the merge).
pub(crate) fn mine_hyper<M: FrequentnessMeasure>(
    db: &UncertainDatabase,
    measure: &M,
) -> MiningResult {
    let mut result = MiningResult::default();
    if db.is_empty() {
        return result;
    }
    // Level-1 filtering: one scan judges every item; only survivors enter
    // the structure, which keeps it proportional to the frequent item mass
    // (the whole point of UH-Mine on sparse data). Sound because every
    // measure is anti-monotone under its own semantics.
    let selection = select_items(db, measure, &mut result.stats);
    let order = FrequencyOrder::from_selection(db.num_items(), selection);
    if order.is_empty() {
        return result;
    }
    let (engine, rows) = UhEngine::build(db, &order, measure, &mut result.stats);

    // The whole walk runs inside one work-stealing scope: the root call
    // mines into `result` directly (key ε), spawned subtrees push their
    // local results into the sink, and the sink merges in spawn-key order
    // once the scope has drained — bit-identical for every pool size.
    // The root projection is freed right after the root head-table pass
    // (the entries own their projected rows), so it never overlaps the
    // subtree mining — peak_bytes is a tracked, baselined metric.
    let sink = OrderedSink::new();
    scope(|s| {
        let entries = engine.head_table(&rows, &mut result);
        drop(rows);
        let mut prefix = Vec::new();
        let mut spawn_seq = 0;
        engine.expand_entries(
            s,
            &sink,
            &[],
            &mut spawn_seq,
            &mut prefix,
            entries,
            &mut result,
        );
    });
    for sub in sink.into_sorted_values() {
        result.stats.absorb(&sub.stats);
        result.itemsets.extend(sub.itemsets);
    }
    result.canonicalize();
    result
}

impl ExpectedSupportMiner for UHMine {
    fn mine_expected(
        &self,
        db: &UncertainDatabase,
        min_esup: Ratio,
    ) -> Result<MiningResult, CoreError> {
        let threshold = min_esup.threshold_real(db.num_transactions());
        let measure = if self.compute_variance {
            crate::common::measure::ExpectedSupport::with_variance(threshold)
        } else {
            crate::common::measure::ExpectedSupport::new(threshold)
        };
        Ok(mine_hyper(db, &measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use ufim_core::examples::{deterministic_small, paper_table1};

    #[test]
    fn example1_matches_paper() {
        let db = paper_table1();
        let r = UHMine::new().mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::singleton(0), Itemset::singleton(2)]
        );
        assert!((r.get(&Itemset::singleton(2)).unwrap().expected_support - 2.6).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_oracle_across_thresholds() {
        let db = paper_table1();
        for min_esup in [0.1, 0.2, 0.25, 0.3, 0.45, 0.6, 0.9] {
            let fast = UHMine::new().mine_expected_ratio(&db, min_esup).unwrap();
            let slow = BruteForce::new()
                .mine_expected_ratio(&db, min_esup)
                .unwrap();
            assert_eq!(
                fast.sorted_itemsets(),
                slow.sorted_itemsets(),
                "min_esup={min_esup}"
            );
        }
    }

    #[test]
    fn esup_values_match_definition() {
        let db = paper_table1();
        let r = UHMine::new().mine_expected_ratio(&db, 0.25).unwrap();
        for fi in &r.itemsets {
            let want = db.expected_support(fi.itemset.items());
            assert!(
                (fi.expected_support - want).abs() < 1e-9,
                "{}: {} vs {}",
                fi.itemset,
                fi.expected_support,
                want
            );
        }
    }

    #[test]
    fn variance_mode_matches_definition() {
        let db = paper_table1();
        let r = UHMine::with_variance()
            .mine_expected_ratio(&db, 0.25)
            .unwrap();
        for fi in &r.itemsets {
            let (we, wv) = db.support_moments(fi.itemset.items());
            assert!((fi.expected_support - we).abs() < 1e-9);
            assert!(
                (fi.variance.unwrap() - wv).abs() < 1e-9,
                "{}: {} vs {}",
                fi.itemset,
                fi.variance.unwrap(),
                wv
            );
        }
    }

    #[test]
    fn deterministic_db_matches_oracle() {
        let db = deterministic_small();
        for min_esup in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let fast = UHMine::new().mine_expected_ratio(&db, min_esup).unwrap();
            let slow = BruteForce::new()
                .mine_expected_ratio(&db, min_esup)
                .unwrap();
            assert_eq!(fast.sorted_itemsets(), slow.sorted_itemsets());
        }
    }

    #[test]
    fn arena_size_tracks_filtered_units() {
        let db = paper_table1();
        // At threshold 2.0 only C and A are frequent: the arena holds only
        // their cells (C in T1..T3, A in T1..T3 → 6 cells).
        let r = UHMine::new().mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(r.stats.peak_structure_nodes, 6);
    }

    #[test]
    fn empty_db_and_high_threshold() {
        let db = UncertainDatabase::from_transactions(vec![]);
        assert!(UHMine::new()
            .mine_expected_ratio(&db, 0.5)
            .unwrap()
            .is_empty());
        let db = paper_table1();
        assert!(UHMine::new()
            .mine_expected_ratio(&db, 1.0)
            .unwrap()
            .is_empty());
    }
}
