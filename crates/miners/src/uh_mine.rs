//! **UH-Mine** — expected-support mining over the UH-Struct hyper-structure
//! (Aggarwal et al. 2009, extending H-Mine; paper §3.1.3).
//!
//! All frequent-item-filtered transactions are materialized once into a flat
//! arena of `(item, probability)` cells, sorted per transaction by global
//! frequency rank (the paper's Figure 2). Mining is depth-first: a *head
//! table* for prefix `P` holds, per extension item `y`, the projected rows —
//! pointers into the arena plus the accumulated prefix multiplier
//! `m_t = Π_{x∈P} p_t(x)` — and the running expected support
//! `Σ_t m_t · p_t(y)` (Figure 3). Recursing on `y` just advances each row's
//! pointer and multiplies in `p_t(y)`; no structure is ever copied, which is
//! why UH-Mine shines exactly where UFP-growth drowns (sparse data, low
//! thresholds).
//!
//! The walker accumulates whatever statistics the active
//! [`FrequentnessMeasure`] requests — expected support always, the variance
//! `Σ q_t(1 − q_t)` for Normal-approximation measures, and (because each
//! head-table row's multiplier *is* the prefix's containment probability in
//! that transaction) the full per-transaction probability vector for the
//! exact measures. Swapping the measure is the entire difference between
//! UH-Mine, the paper's novel NDUH-Mine (§3.3.3), and the previously
//! unbuildable exact-DP/DC-on-UH-Mine cells of the matrix.
//!
//! ## Parallelism
//!
//! The walk decomposes at the **first projection level**: the root head
//! table is built and judged once, then each kept item's projected rows
//! become an independent subtree task scheduled through
//! [`ufim_core::parallel`]'s work queue (the arena is shared read-only;
//! subtrees never touch each other's rows). Each task mines into its own
//! [`MiningResult`], and the per-task results and [`MinerStats`] are merged
//! in item order — every counter is a sum or a max, and every float is
//! computed within exactly one task — so output records *and* stats are
//! bit-identical for every `UFIM_THREADS`. Small inputs (by projected row
//! mass) stay sequential under the shared
//! [`ufim_core::parallel::DEFAULT_MIN_WORK`] gate.

use crate::common::measure::{select_items, CandidateStats, FrequentnessMeasure, Screen};
use crate::common::order::FrequencyOrder;
use ufim_core::parallel::{par_map_min_len, DEFAULT_MIN_WORK};
use ufim_core::prelude::*;

/// The UH-Mine miner.
#[derive(Clone, Debug, Default)]
pub struct UHMine {
    /// Also accumulate per-itemset support variance (used by NDUH-Mine).
    pub compute_variance: bool,
}

impl UHMine {
    /// Plain UH-Mine.
    pub fn new() -> Self {
        Self::default()
    }

    /// UH-Mine recording each itemset's support variance.
    pub fn with_variance() -> Self {
        UHMine {
            compute_variance: true,
        }
    }
}

impl MinerInfo for UHMine {
    fn name(&self) -> &'static str {
        "UH-Mine"
    }
    fn description(&self) -> &'static str {
        "depth-first search over the UH-Struct (head tables + pointer arena)"
    }
}

/// One arena cell: item (as frequency rank) and its probability.
#[derive(Clone, Copy)]
struct Cell {
    rank: u32,
    prob: f64,
}

/// A projected transaction row: the cells still ahead of the prefix, plus
/// the prefix containment probability.
#[derive(Clone, Copy)]
pub(crate) struct Row {
    /// Arena index of the first remaining cell.
    next: u32,
    /// Arena index one past the transaction's last cell.
    end: u32,
    /// `Π p_t(x)` over the prefix items.
    mult: f64,
}

/// The shared mining engine. The measure decides whether an extension is
/// output *and* expanded — every measure in the matrix is anti-monotone
/// under its own semantics (the approximations by construction), so a
/// failing prefix never hides a passing extension.
pub(crate) struct UhEngine<'a, M: FrequentnessMeasure> {
    arena: Vec<Cell>,
    order: &'a FrequencyOrder,
    measure: &'a M,
}

impl<'a, M: FrequentnessMeasure> UhEngine<'a, M> {
    /// Builds the UH-Struct and returns the engine plus the initial rows.
    pub(crate) fn build(
        db: &UncertainDatabase,
        order: &'a FrequencyOrder,
        measure: &'a M,
        stats: &mut MinerStats,
    ) -> (Self, Vec<Row>) {
        let mut arena = Vec::new();
        let mut rows = Vec::new();
        for t in db.transactions() {
            let proj = order.project(t.items(), t.probs());
            if proj.is_empty() {
                continue;
            }
            let start = arena.len() as u32;
            arena.extend(proj.iter().map(|&(rank, prob)| Cell { rank, prob }));
            rows.push(Row {
                next: start,
                end: arena.len() as u32,
                mult: 1.0,
            });
        }
        stats.scans += 1;
        stats.peak_structure_nodes = stats.peak_structure_nodes.max(arena.len() as u64);
        (
            UhEngine {
                arena,
                order,
                measure,
            },
            rows,
        )
    }

    /// Builds the head table for `rows` — per extension rank, the
    /// accumulated `(esup, var)` and the projected rows — returned in
    /// ascending-rank order (descending global esup), and charges the pass
    /// as one projection scan.
    fn head_table(&self, rows: &[Row], out: &mut MiningResult) -> Vec<(u32, f64, f64, Vec<Row>)> {
        let needs = self.measure.needs();
        // Rank-keyed dense storage would waste memory on wide
        // vocabularies, so use a hash table (the paper's head tables are
        // equally per-prefix structures).
        let mut head: FxHashMap<u32, (f64, f64, Vec<Row>)> = FxHashMap::default();
        for row in rows {
            let mut pos = row.next;
            while pos < row.end {
                let cell = self.arena[pos as usize];
                let q = row.mult * cell.prob;
                let entry = head
                    .entry(cell.rank)
                    .or_insert_with(|| (0.0, 0.0, Vec::new()));
                entry.0 += q;
                if needs.variance {
                    entry.1 += q * (1.0 - q);
                }
                entry.2.push(Row {
                    next: pos + 1,
                    end: row.end,
                    mult: q,
                });
                pos += 1;
            }
        }
        out.stats.scans += 1;
        let mut entries: Vec<(u32, f64, f64, Vec<Row>)> = head
            .into_iter()
            .map(|(rank, (esup, var, rows))| (rank, esup, var, rows))
            .collect();
        entries.sort_unstable_by_key(|&(rank, ..)| rank);
        entries
    }

    /// Judges one head-table entry. On keep, pushes `order.item(rank)`
    /// onto `prefix`, emits the record, and returns `true` — the caller
    /// recurses into the entry's rows and pops afterwards.
    fn judge_entry(
        &self,
        prefix: &mut Vec<ItemId>,
        rank: u32,
        esup: f64,
        var: f64,
        next_rows: &[Row],
        out: &mut MiningResult,
    ) -> bool {
        out.stats.candidates_evaluated += 1;
        match self.measure.screen(esup, next_rows.len() as u64) {
            Screen::Keep => {}
            Screen::PruneCount => {
                out.stats.candidates_pruned_count += 1;
                return false;
            }
            Screen::PruneBound => {
                out.stats.candidates_pruned_chernoff += 1;
                return false;
            }
        }
        // Each projected row's multiplier is exactly the candidate's
        // containment probability in that transaction, in transaction
        // order — the exact kernels' input, gathered for free.
        let qs: Option<Vec<f64>> = self
            .measure
            .needs()
            .prob_vector
            .then(|| next_rows.iter().map(|r| r.mult).collect());
        let c = CandidateStats {
            esup,
            variance: var,
            count: next_rows.len() as u64,
            probs: qs.as_deref(),
        };
        let Some(j) = self.measure.judge(&c, &mut out.stats) else {
            return false;
        };
        prefix.push(self.order.item(rank));
        out.itemsets.push(FrequentItemset {
            itemset: Itemset::from_items(prefix.iter().copied()),
            expected_support: j.expected_support,
            variance: j.variance,
            frequent_prob: j.frequent_prob,
        });
        true
    }

    /// Depth-first expansion of `prefix` over `rows` (sequential; the
    /// fan-out happens one level up, in [`mine_hyper`]).
    pub(crate) fn mine(&self, prefix: &mut Vec<ItemId>, rows: &[Row], out: &mut MiningResult) {
        for (rank, esup, var, next_rows) in self.head_table(rows, out) {
            if self.judge_entry(prefix, rank, esup, var, &next_rows, out) {
                self.mine(prefix, &next_rows, out);
                prefix.pop();
            }
        }
    }
}

/// Runs the depth-first hyper-structure traversal of `measure` — the
/// `HyperStructure` column of the matrix as one function. Item-level
/// selection, the UH-Struct build, and the recursive walk all consult the
/// same measure, exactly as UH-Mine (expected support) and NDUH-Mine
/// (Normal approximation) always did.
///
/// The walk fans out over the kept first-level items (see the module docs
/// on the determinism of the merge).
pub(crate) fn mine_hyper<M: FrequentnessMeasure>(
    db: &UncertainDatabase,
    measure: &M,
) -> MiningResult {
    let mut result = MiningResult::default();
    if db.is_empty() {
        return result;
    }
    // Level-1 filtering: one scan judges every item; only survivors enter
    // the structure, which keeps it proportional to the frequent item mass
    // (the whole point of UH-Mine on sparse data). Sound because every
    // measure is anti-monotone under its own semantics.
    let selection = select_items(db, measure, &mut result.stats);
    let order = FrequencyOrder::from_selection(db.num_items(), selection);
    if order.is_empty() {
        return result;
    }
    let (engine, rows) = UhEngine::build(db, &order, measure, &mut result.stats);

    // Root level, sequential: one head-table pass judges every first-level
    // item; each kept item's projected rows become one subtree task.
    let mut prefix = Vec::new();
    let mut tasks: Vec<(u32, Vec<Row>)> = Vec::new();
    for (rank, esup, var, next_rows) in engine.head_table(&rows, &mut result) {
        if engine.judge_entry(&mut prefix, rank, esup, var, &next_rows, &mut result) {
            prefix.pop();
            tasks.push((rank, next_rows));
        }
    }
    drop(rows);

    // Fan the independent subtrees out over the work queue; the projected
    // row mass gates tiny inputs to the sequential path. Each task mines
    // into a local result; merging in item order keeps records and stats
    // bit-identical for every pool size.
    let task_rows: usize = tasks.iter().map(|(_, r)| r.len()).sum();
    let mean_rows = task_rows / tasks.len().max(1);
    let subtrees = par_map_min_len(
        &tasks,
        mean_rows.max(1),
        DEFAULT_MIN_WORK,
        |(rank, rows)| {
            let mut local = MiningResult::default();
            let mut prefix = vec![engine.order.item(*rank)];
            engine.mine(&mut prefix, rows, &mut local);
            local
        },
    );
    for sub in subtrees {
        result.stats.absorb(&sub.stats);
        result.itemsets.extend(sub.itemsets);
    }
    result.canonicalize();
    result
}

impl ExpectedSupportMiner for UHMine {
    fn mine_expected(
        &self,
        db: &UncertainDatabase,
        min_esup: Ratio,
    ) -> Result<MiningResult, CoreError> {
        let threshold = min_esup.threshold_real(db.num_transactions());
        let measure = if self.compute_variance {
            crate::common::measure::ExpectedSupport::with_variance(threshold)
        } else {
            crate::common::measure::ExpectedSupport::new(threshold)
        };
        Ok(mine_hyper(db, &measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use ufim_core::examples::{deterministic_small, paper_table1};

    #[test]
    fn example1_matches_paper() {
        let db = paper_table1();
        let r = UHMine::new().mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::singleton(0), Itemset::singleton(2)]
        );
        assert!((r.get(&Itemset::singleton(2)).unwrap().expected_support - 2.6).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_oracle_across_thresholds() {
        let db = paper_table1();
        for min_esup in [0.1, 0.2, 0.25, 0.3, 0.45, 0.6, 0.9] {
            let fast = UHMine::new().mine_expected_ratio(&db, min_esup).unwrap();
            let slow = BruteForce::new()
                .mine_expected_ratio(&db, min_esup)
                .unwrap();
            assert_eq!(
                fast.sorted_itemsets(),
                slow.sorted_itemsets(),
                "min_esup={min_esup}"
            );
        }
    }

    #[test]
    fn esup_values_match_definition() {
        let db = paper_table1();
        let r = UHMine::new().mine_expected_ratio(&db, 0.25).unwrap();
        for fi in &r.itemsets {
            let want = db.expected_support(fi.itemset.items());
            assert!(
                (fi.expected_support - want).abs() < 1e-9,
                "{}: {} vs {}",
                fi.itemset,
                fi.expected_support,
                want
            );
        }
    }

    #[test]
    fn variance_mode_matches_definition() {
        let db = paper_table1();
        let r = UHMine::with_variance()
            .mine_expected_ratio(&db, 0.25)
            .unwrap();
        for fi in &r.itemsets {
            let (we, wv) = db.support_moments(fi.itemset.items());
            assert!((fi.expected_support - we).abs() < 1e-9);
            assert!(
                (fi.variance.unwrap() - wv).abs() < 1e-9,
                "{}: {} vs {}",
                fi.itemset,
                fi.variance.unwrap(),
                wv
            );
        }
    }

    #[test]
    fn deterministic_db_matches_oracle() {
        let db = deterministic_small();
        for min_esup in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let fast = UHMine::new().mine_expected_ratio(&db, min_esup).unwrap();
            let slow = BruteForce::new()
                .mine_expected_ratio(&db, min_esup)
                .unwrap();
            assert_eq!(fast.sorted_itemsets(), slow.sorted_itemsets());
        }
    }

    #[test]
    fn arena_size_tracks_filtered_units() {
        let db = paper_table1();
        // At threshold 2.0 only C and A are frequent: the arena holds only
        // their cells (C in T1..T3, A in T1..T3 → 6 cells).
        let r = UHMine::new().mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(r.stats.peak_structure_nodes, 6);
    }

    #[test]
    fn empty_db_and_high_threshold() {
        let db = UncertainDatabase::from_transactions(vec![]);
        assert!(UHMine::new()
            .mine_expected_ratio(&db, 0.5)
            .unwrap()
            .is_empty());
        let db = paper_table1();
        assert!(UHMine::new()
            .mine_expected_ratio(&db, 1.0)
            .unwrap()
            .is_empty());
    }
}
