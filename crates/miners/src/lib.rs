//! # ufim-miners
//!
//! The eight representative frequent-itemset mining algorithms over
//! uncertain databases studied by Tong et al. (VLDB 2012), plus a
//! brute-force oracle, all built on one shared implementation framework —
//! exactly the paper's methodological point ("uniform baseline
//! implementations … adopt common basic operations").
//!
//! | group | miner | paper § | strategy |
//! |---|---|---|---|
//! | expected-support | [`UApriori`] | 3.1.1 | breadth-first, candidate trie |
//! | expected-support | [`UFPGrowth`] | 3.1.2 | depth-first, UFP-tree |
//! | expected-support | [`UHMine`] | 3.1.3 | depth-first, UH-Struct |
//! | exact probabilistic | [`DpMiner`] (DP/DPB/DPNB) | 3.2.1 | Apriori + `O(N·msup)` DP |
//! | exact probabilistic | [`DcMiner`] (DC/DCB/DCNB) | 3.2.2 | Apriori + divide-&-conquer/FFT |
//! | approximate | [`PDUApriori`] | 3.3.1 | Poisson λ-inversion + UApriori |
//! | approximate | [`NDUApriori`] | 3.3.2 | Apriori + Normal CDF |
//! | approximate | [`NDUHMine`] | 3.3.3 | UH-Mine + Normal CDF |
//!
//! The `B`/`NB` suffixes select Chernoff-bound pruning (§3.2.3) on the exact
//! miners. [`BruteForce`] evaluates every itemset directly from the
//! definitions and anchors the test suites.
//!
//! The shared substrate lives in [`common`]: the
//! [`FrequentnessMeasure`](common::measure::FrequentnessMeasure) trait that
//! factors the judgment axis out of every miner, frequency ordering, the
//! candidate prefix-trie used by every Apriori-framework miner, and the
//! level-wise scaffold. Each miner in the table is one *named cell* of the
//! measure × traversal × engine matrix; [`matrix::MatrixMiner`] runs any
//! cell, including the five the paper never built (exact DP/DC on UH-Mine,
//! Poisson on UH-Mine/UFP-growth, Normal on UFP-growth).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod common;
pub mod exact;
pub mod matrix;
pub mod ndu_apriori;
pub mod nduh_mine;
pub mod pdu_apriori;
pub mod postprocess;
pub mod registry;
pub mod resident;
pub mod uapriori;
pub mod ufp_growth;
pub mod uh_mine;

pub use brute::BruteForce;
pub use exact::{DcMiner, DpMiner};
pub use matrix::MatrixMiner;
pub use ndu_apriori::NDUApriori;
pub use nduh_mine::NDUHMine;
pub use pdu_apriori::PDUApriori;
pub use postprocess::{closed, containing, maximal, top_k_by_expected_support};
pub use registry::{Algorithm, AlgorithmGroup};
pub use resident::{boxed_measure, ResidentLattice};
pub use uapriori::UApriori;
pub use ufp_growth::UFPGrowth;
pub use uh_mine::UHMine;

/// Convenient glob-import: `use ufim_miners::prelude::*;`
pub mod prelude {
    pub use crate::brute::BruteForce;
    pub use crate::exact::{DcMiner, DpMiner};
    pub use crate::matrix::MatrixMiner;
    pub use crate::ndu_apriori::NDUApriori;
    pub use crate::nduh_mine::NDUHMine;
    pub use crate::pdu_apriori::PDUApriori;
    pub use crate::registry::{Algorithm, AlgorithmGroup};
    pub use crate::resident::ResidentLattice;
    pub use crate::uapriori::UApriori;
    pub use crate::ufp_growth::UFPGrowth;
    pub use crate::uh_mine::UHMine;
    pub use ufim_core::traits::{ExpectedSupportMiner, MinerInfo, ProbabilisticMiner};
}
