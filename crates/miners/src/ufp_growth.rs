//! **UFP-growth** — depth-first tree-growth mining over a UFP-tree
//! (Leung et al. 2008; paper §3.1.2), generalized over the frequentness
//! measure.
//!
//! The uncertain analog of FP-growth. The UFP-tree stores each node as the
//! triple the paper describes — *(item label, appearance probability, shared
//! count)* — and, crucially, two transactions may share a node **only when
//! both the label and the probability match exactly**. Under continuous
//! probability assignments that almost never happens, so the tree barely
//! compresses; the recursive conditional-tree construction then touches many
//! near-singleton paths. This implementation is deliberately faithful to
//! that design (it is *the point* of the paper's comparison that UFP-growth
//! pays for it; see Fig. 4), only generalizing the per-node count to
//! accumulated weights so conditional trees can carry path multipliers.
//!
//! Mining follows FP-growth: process header items bottom-up (least frequent
//! first); for each item `y`, the statistics of `suffix ∪ {y}` are weighted
//! sums over `y`'s node list; then a conditional tree is built from the
//! prefix paths of those nodes, each path re-weighted by the node's own
//! contribution, and the procedure recurses.
//!
//! **The measure axis.** Because node sharing requires *exact* probability
//! equality along the whole path, every transaction through a node carries
//! the same per-node probability — so the node can accumulate not just
//! `w = Σ_t m_t` (the paper's count, generalized) but also `w₂ = Σ_t m_t²`
//! and the plain transaction count. That is enough to reconstruct, exactly,
//! the expected support `Σ q_t`, the support variance
//! `Σ q_t(1 − q_t) = esup − Σ q_t²`, and the nonzero count of every
//! extension — i.e. everything a moment-based [`FrequentnessMeasure`]
//! (expected support, Poisson, Normal) judges on. What aggregation *does*
//! destroy is the per-transaction probability vector, which is why the
//! exact DP/DC measures cannot run on this traversal (the matrix's one
//! principled hole).

//! **Parallelism.** Mining decomposes **recursively** over the
//! work-stealing pool ([`ufim_core::parallel::scope`]). The global
//! UFP-tree is built once; each occupied header rank becomes a root task
//! over the shared read-only tree when the tree clears
//! [`ufim_core::parallel::DEFAULT_MIN_WORK`], and — the nested part —
//! every conditional tree whose node count clears `SPAWN_MIN_NODES` is
//! re-spawned from inside its task (the conditional tree is *owned* by
//! the child task, so nothing is shared downward). A deep-skewed
//! database, whose one dominant rank used to serialize its entire
//! recursion on one worker, now splits again at every heavy conditional
//! level. Per-task results and [`MinerStats`] merge in spawn-key order
//! through an [`OrderedSink`] (sums and maxes only; every float is
//! computed inside exactly one task), and spawn decisions are a pure
//! function of the input — so records and stats are bit-identical for
//! every `UFIM_THREADS`, pool size 1 running fully inline.

use crate::common::measure::{select_items, CandidateStats, FrequentnessMeasure, Screen};
use crate::common::order::FrequencyOrder;
use ufim_core::parallel::{child_key, scope, OrderedSink, Scope, DEFAULT_MIN_WORK};
use ufim_core::prelude::*;

/// Conditional-tree node count above which the recursion below a kept
/// candidate is spawned as a nested pool task (the child task takes
/// ownership of the conditional tree). Small enough that a skewed rank's
/// heavy conditionals split; large enough that task overhead stays noise
/// against the conditional build that precedes it.
const SPAWN_MIN_NODES: usize = 1 << 9;

/// Suffix length beyond which recursion always stays inline — a backstop
/// against unbounded task bookkeeping on pathological lattices.
const SPAWN_MAX_DEPTH: usize = 24;

/// The UFP-growth miner.
#[derive(Clone, Debug, Default)]
pub struct UFPGrowth {
    _private: (),
}

impl UFPGrowth {
    /// Creates the miner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MinerInfo for UFPGrowth {
    fn name(&self) -> &'static str {
        "UFP-growth"
    }
    fn description(&self) -> &'static str {
        "depth-first divide-and-conquer over a UFP-tree (nodes shared only on equal item AND probability)"
    }
}

/// One UFP-tree node: `(item-rank, probability)` plus the accumulated path
/// weights and tree links. `weight` generalizes the paper's count: at build
/// time it is the number of transactions through the node; in conditional
/// trees it carries the accumulated path multiplier mass `Σ_t m_t`.
/// `weight_sq` (`Σ_t m_t²`) and `count` ride along so moment-based measures
/// can reconstruct variance and nonzero counts exactly (see module docs).
struct UfpNode {
    rank: u32,
    prob: f64,
    weight: f64,
    weight_sq: f64,
    count: u64,
    parent: u32,
    /// Children sorted by `(rank, prob bits)` for binary-search insertion.
    children: Vec<u32>,
}

/// A UFP-tree over rank-encoded items. `header[rank]` lists every node of
/// that rank (the paper's horizontal item links).
struct UfpTree {
    nodes: Vec<UfpNode>,
    header: Vec<Vec<u32>>,
}

const ROOT: u32 = 0;

impl UfpTree {
    fn new(num_ranks: usize) -> Self {
        UfpTree {
            nodes: vec![UfpNode {
                rank: u32::MAX,
                prob: 0.0,
                weight: 0.0,
                weight_sq: 0.0,
                count: 0,
                parent: u32::MAX,
                children: Vec::new(),
            }],
            header: vec![Vec::new(); num_ranks],
        }
    }

    /// Inserts one (rank-sorted) weighted path, sharing nodes only on exact
    /// `(rank, probability)` matches — the defining UFP-tree rule.
    fn insert(&mut self, path: &[(u32, f64)], weight: f64, weight_sq: f64, count: u64) {
        let mut node = ROOT;
        for &(rank, prob) in path {
            let key = (rank, prob.to_bits());
            let found = self.nodes[node as usize].children.binary_search_by(|&c| {
                let cn = &self.nodes[c as usize];
                (cn.rank, cn.prob.to_bits()).cmp(&key)
            });
            node = match found {
                Ok(pos) => {
                    let child = self.nodes[node as usize].children[pos];
                    let n = &mut self.nodes[child as usize];
                    n.weight += weight;
                    n.weight_sq += weight_sq;
                    n.count += count;
                    child
                }
                Err(pos) => {
                    let new_idx = self.nodes.len() as u32;
                    self.nodes.push(UfpNode {
                        rank,
                        prob,
                        weight,
                        weight_sq,
                        count,
                        parent: node,
                        children: Vec::new(),
                    });
                    self.nodes[node as usize].children.insert(pos, new_idx);
                    self.header[rank as usize].push(new_idx);
                    new_idx
                }
            };
        }
    }

    /// The prefix path of a node (exclusive), root-to-parent order.
    fn prefix_path(&self, mut node: u32) -> Vec<(u32, f64)> {
        let mut path = Vec::new();
        node = self.nodes[node as usize].parent;
        while node != ROOT && node != u32::MAX {
            let n = &self.nodes[node as usize];
            path.push((n.rank, n.prob));
            node = n.parent;
        }
        path.reverse();
        path
    }

    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// One header rank's unit of work: judge `suffix ∪ {item(rank)}` from the
/// moments its node list reconstructs and, when kept, emit it, build the
/// conditional tree, and recurse — spawning the recursion as a nested
/// pool task when the conditional tree clears `SPAWN_MIN_NODES` (the
/// task takes ownership of the tree; see the module docs). Shared by the
/// in-task recursion ([`mine_tree_rec`]) and the root fan-out in
/// [`mine_tree`]; the caller guarantees the rank's node list is nonempty.
///
/// `task_key`/`spawn_seq` are the enclosing task's spawn-order identity
/// (see [`child_key`]); spawned children push their local results into
/// `sink` under the minted key. `depth_budget` is **per task**: a spawned
/// child starts a fresh budget, which cannot change results because the
/// (ample) budget is only a runaway guard, never reached in practice.
#[allow(clippy::too_many_arguments)] // one recursion context, kept flat like the sequential original
fn mine_rank<'env, M: FrequentnessMeasure>(
    s: &Scope<'env>,
    sink: &'env OrderedSink<MiningResult>,
    task_key: &[u32],
    spawn_seq: &mut u32,
    tree: &UfpTree,
    order: &'env FrequencyOrder,
    measure: &'env M,
    rank: u32,
    suffix: &[ItemId],
    out: &mut MiningResult,
    depth_budget: &mut u64,
) {
    let needs = measure.needs();
    let nodes = &tree.header[rank as usize];
    out.stats.candidates_evaluated += 1;
    let mut esup = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut count = 0u64;
    for &n in nodes.iter() {
        let node = &tree.nodes[n as usize];
        esup += node.weight * node.prob;
        if needs.variance {
            sum_sq += node.weight_sq * node.prob * node.prob;
        }
        count += node.count;
    }
    match measure.screen(esup, count) {
        Screen::Keep => {}
        Screen::PruneCount => {
            out.stats.candidates_pruned_count += 1;
            return;
        }
        Screen::PruneBound => {
            out.stats.candidates_pruned_chernoff += 1;
            return;
        }
    }
    let c = CandidateStats {
        esup,
        // Σ q_t(1 − q_t) = esup − Σ q_t², reconstructed exactly from the
        // per-node second-moment weights.
        variance: esup - sum_sq,
        count,
        probs: None,
    };
    let Some(j) = measure.judge(&c, &mut out.stats) else {
        return;
    };
    let mut new_suffix = Vec::with_capacity(suffix.len() + 1);
    new_suffix.push(order.item(rank));
    new_suffix.extend_from_slice(suffix);
    out.itemsets.push(FrequentItemset {
        itemset: Itemset::from_items(new_suffix.iter().copied()),
        expected_support: j.expected_support,
        variance: j.variance,
        frequent_prob: j.frequent_prob,
    });

    // Conditional pattern base: prefix paths re-weighted by the node's
    // own contribution (w·p, w₂·p², count carried through).
    let mut cond = UfpTree::new(rank as usize);
    let mut inserted_any = false;
    for &n in nodes.iter() {
        let node = &tree.nodes[n as usize];
        let path = tree.prefix_path(n);
        if path.is_empty() {
            continue;
        }
        cond.insert(
            &path,
            node.weight * node.prob,
            node.weight_sq * node.prob * node.prob,
            node.count,
        );
        inserted_any = true;
    }
    *depth_budget = depth_budget.saturating_sub(1);
    if inserted_any && *depth_budget > 0 {
        if s.threads() > 1
            && new_suffix.len() < SPAWN_MAX_DEPTH
            && cond.num_nodes() >= SPAWN_MIN_NODES
        {
            // Heavy conditional: hand the owned tree to a nested task so
            // the recursion below it runs concurrently with our remaining
            // ranks (and can itself split again).
            let key = child_key(task_key, spawn_seq);
            s.spawn(move |s| {
                let mut local = MiningResult::default();
                let mut child_seq = 0;
                let mut child_budget = u64::MAX;
                mine_tree_rec(
                    s,
                    sink,
                    &key,
                    &mut child_seq,
                    &cond,
                    order,
                    measure,
                    &new_suffix,
                    &mut local,
                    &mut child_budget,
                );
                sink.push(key, local);
            });
        } else {
            mine_tree_rec(
                s,
                sink,
                task_key,
                spawn_seq,
                &cond,
                order,
                measure,
                &new_suffix,
                out,
                depth_budget,
            );
        }
    }
    out.stats.scans += 1; // each conditional build re-reads node lists
}

/// FP-growth-style mining over a conditional tree: bottom-up over the
/// header, one [`mine_rank`] per occupied rank (each of which may spawn
/// its own recursion — the nesting happens there).
#[allow(clippy::too_many_arguments)] // one recursion context, kept flat like the sequential original
fn mine_tree_rec<'env, M: FrequentnessMeasure>(
    s: &Scope<'env>,
    sink: &'env OrderedSink<MiningResult>,
    task_key: &[u32],
    spawn_seq: &mut u32,
    tree: &UfpTree,
    order: &'env FrequencyOrder,
    measure: &'env M,
    suffix: &[ItemId],
    out: &mut MiningResult,
    depth_budget: &mut u64,
) {
    out.stats.peak_structure_nodes = out.stats.peak_structure_nodes.max(tree.num_nodes() as u64);
    // Bottom-up over the header: rank r contributes suffix ∪ {item(r)}.
    for rank in (0..tree.header.len() as u32).rev() {
        if tree.header[rank as usize].is_empty() {
            continue;
        }
        mine_rank(
            s,
            sink,
            task_key,
            spawn_seq,
            tree,
            order,
            measure,
            rank,
            suffix,
            out,
            depth_budget,
        );
    }
}

/// Runs the depth-first tree-growth traversal of `measure` — the
/// `TreeGrowth` column of the matrix as one function.
///
/// The caller guarantees the measure judges from moments only
/// (`!needs().prob_vector`); the UFP-tree's node aggregation cannot serve
/// per-transaction probability vectors.
pub(crate) fn mine_tree<M: FrequentnessMeasure>(
    db: &UncertainDatabase,
    measure: &M,
) -> MiningResult {
    debug_assert!(
        !measure.needs().prob_vector,
        "tree growth cannot serve probability vectors"
    );
    let mut result = MiningResult::default();
    if db.is_empty() {
        return result;
    }
    // Level-1 filtering (one scan), then transactions are projected onto
    // the surviving items sorted by decreasing global expected support
    // (the paper's Figure 1).
    let selection = select_items(db, measure, &mut result.stats);
    let order = FrequencyOrder::from_selection(db.num_items(), selection);
    if order.is_empty() {
        return result;
    }

    let mut tree = UfpTree::new(order.len());
    for t in db.transactions() {
        let path = order.project(t.items(), t.probs());
        if !path.is_empty() {
            tree.insert(&path, 1.0, 1.0, 1);
        }
    }
    result.stats.scans += 1;
    result.stats.peak_structure_nodes = result
        .stats
        .peak_structure_nodes
        .max(tree.num_nodes() as u64);

    // Top level: when the global tree is heavy enough, each occupied
    // header rank — judgment, conditional build, and the recursion below
    // it — becomes one root task over the shared read-only tree (and the
    // recursion re-spawns below it; see the module docs). Light trees run
    // the ranks inline, where the same size cutoffs keep everything
    // sequential. The sink merges per-task results in spawn-key order, so
    // every pool size produces bit-identical output.
    let ranks: Vec<u32> = (0..tree.header.len() as u32)
        .rev()
        .filter(|&r| !tree.header[r as usize].is_empty())
        .collect();
    let sink = OrderedSink::new();
    let tree_ref = &tree;
    let order_ref = &order;
    scope(|s| {
        let spawn_roots = s.threads() > 1 && tree_ref.num_nodes() >= DEFAULT_MIN_WORK;
        let mut spawn_seq = 0;
        // An (ample) per-task recursion budget guards pathological
        // conditional explosions; it is never hit in the experiments but
        // turns a hypothetical runaway into truncated-but-sound output.
        // Per-task (not shared) so exhaustion could never depend on task
        // scheduling.
        let mut root_budget = u64::MAX;
        for &rank in &ranks {
            if spawn_roots {
                let key = child_key(&[], &mut spawn_seq);
                let sink = &sink;
                s.spawn(move |s| {
                    let mut local = MiningResult::default();
                    let mut child_seq = 0;
                    let mut child_budget = u64::MAX;
                    mine_rank(
                        s,
                        sink,
                        &key,
                        &mut child_seq,
                        tree_ref,
                        order_ref,
                        measure,
                        rank,
                        &[],
                        &mut local,
                        &mut child_budget,
                    );
                    sink.push(key, local);
                });
            } else {
                mine_rank(
                    s,
                    &sink,
                    &[],
                    &mut spawn_seq,
                    tree_ref,
                    order_ref,
                    measure,
                    rank,
                    &[],
                    &mut result,
                    &mut root_budget,
                );
            }
        }
    });
    for sub in sink.into_sorted_values() {
        result.stats.absorb(&sub.stats);
        result.itemsets.extend(sub.itemsets);
    }
    result.canonicalize();
    result
}

impl ExpectedSupportMiner for UFPGrowth {
    fn mine_expected(
        &self,
        db: &UncertainDatabase,
        min_esup: Ratio,
    ) -> Result<MiningResult, CoreError> {
        let threshold = min_esup.threshold_real(db.num_transactions());
        let measure = crate::common::measure::ExpectedSupport::new(threshold);
        Ok(mine_tree(db, &measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use ufim_core::examples::{deterministic_small, paper_table1};

    #[test]
    fn example1_matches_paper() {
        let db = paper_table1();
        let r = UFPGrowth::new().mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::singleton(0), Itemset::singleton(2)]
        );
    }

    #[test]
    fn figure1_tree_threshold() {
        // min_esup = 0.25 is the Figure 1 setting: all 6 items frequent.
        let db = paper_table1();
        let r = UFPGrowth::new().mine_expected_ratio(&db, 0.25).unwrap();
        let oracle = BruteForce::new().mine_expected_ratio(&db, 0.25).unwrap();
        assert_eq!(r.sorted_itemsets(), oracle.sorted_itemsets());
        // esup values carried through the tree must match the definition.
        for fi in &r.itemsets {
            let want = db.expected_support(fi.itemset.items());
            assert!(
                (fi.expected_support - want).abs() < 1e-9,
                "{}: {} vs {}",
                fi.itemset,
                fi.expected_support,
                want
            );
        }
    }

    #[test]
    fn agrees_with_oracle_across_thresholds() {
        let db = paper_table1();
        for min_esup in [0.1, 0.2, 0.3, 0.45, 0.6, 0.9] {
            let fast = UFPGrowth::new().mine_expected_ratio(&db, min_esup).unwrap();
            let slow = BruteForce::new()
                .mine_expected_ratio(&db, min_esup)
                .unwrap();
            assert_eq!(
                fast.sorted_itemsets(),
                slow.sorted_itemsets(),
                "min_esup={min_esup}"
            );
        }
    }

    #[test]
    fn node_sharing_requires_equal_probability() {
        // Two transactions, same item, different probabilities → two nodes.
        let db = UncertainDatabase::from_transactions(vec![
            Transaction::new([(0, 0.5)]).unwrap(),
            Transaction::new([(0, 0.6)]).unwrap(),
            Transaction::new([(0, 0.5)]).unwrap(), // shares with the first
        ]);
        let r = UFPGrowth::new().mine_expected_ratio(&db, 0.1).unwrap();
        // esup(0) = 1.6; structure had root + 2 distinct (item,prob) nodes.
        assert!((r.get(&Itemset::singleton(0)).unwrap().expected_support - 1.6).abs() < 1e-12);
        assert_eq!(r.stats.peak_structure_nodes, 3);
    }

    #[test]
    fn deterministic_compresses_like_fp_tree() {
        // With all probabilities 1.0 sharing works, so identical
        // transactions collapse into one path.
        let db = UncertainDatabase::from_transactions(vec![Transaction::certain([0, 1, 2]); 50]);
        let r = UFPGrowth::new().mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(r.stats.peak_structure_nodes, 4); // root + one 3-node path
        assert_eq!(r.len(), 7); // 2^3 - 1 itemsets all frequent
    }

    #[test]
    fn deterministic_db_matches_oracle() {
        let db = deterministic_small();
        for min_esup in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let fast = UFPGrowth::new().mine_expected_ratio(&db, min_esup).unwrap();
            let slow = BruteForce::new()
                .mine_expected_ratio(&db, min_esup)
                .unwrap();
            assert_eq!(
                fast.sorted_itemsets(),
                slow.sorted_itemsets(),
                "min_esup={min_esup}"
            );
        }
    }

    #[test]
    fn tree_reconstructs_variance_and_count_exactly() {
        // The (w, w₂, count) accumulation must reproduce the reference
        // moments for every frequent itemset — the property that makes the
        // Normal measure runnable on this traversal.
        use crate::common::measure::ExpectedSupport;
        let db = paper_table1();
        let measure = ExpectedSupport::with_variance(1.0);
        let r = mine_tree(&db, &measure);
        assert!(!r.is_empty());
        for fi in &r.itemsets {
            let (we, wv) = db.support_moments(fi.itemset.items());
            assert!((fi.expected_support - we).abs() < 1e-9, "{}", fi.itemset);
            assert!(
                (fi.variance.unwrap() - wv).abs() < 1e-9,
                "{}: {} vs {}",
                fi.itemset,
                fi.variance.unwrap(),
                wv
            );
        }
    }

    #[test]
    fn empty_db_and_nothing_frequent() {
        let db = UncertainDatabase::from_transactions(vec![]);
        assert!(UFPGrowth::new()
            .mine_expected_ratio(&db, 0.5)
            .unwrap()
            .is_empty());
        let db = paper_table1();
        assert!(UFPGrowth::new()
            .mine_expected_ratio(&db, 1.0)
            .unwrap()
            .is_empty());
    }
}
