//! **UApriori** — expected-support mining by generate-and-test
//! (Chui et al. 2007/2008; paper §3.1.1).
//!
//! The uncertain extension of classical Apriori: breadth-first level-wise
//! search where a level's candidates are counted in one database pass
//! through the shared [candidate trie](crate::common::trie), and an itemset
//! is frequent iff its *expected* support clears `N · min_esup`. The
//! downward-closure property carries over from deterministic mining, so
//! classical join + subset pruning applies unchanged.
//!
//! A *decremental pruning* pass (the paper credits it to Chui et al.) is
//! available behind [`UApriori::with_decremental_pruning`]: after the count,
//! candidates whose expected support plus the best-possible remaining mass
//! cannot reach the threshold are dropped early during the scan. Its benefit
//! is dataset-dependent (the paper: "the most important pruning method in
//! UApriori is still the traditional Apriori pruning"), so it defaults off
//! and the `fig4` ablation bench quantifies it.

use crate::common::apriori::{run_apriori, LevelEvaluator};
use crate::common::measure::{mine_level_wise, ExpectedSupport};
use ufim_core::prelude::*;

/// The UApriori miner. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct UApriori {
    /// Also accumulate support variance for each reported itemset (one
    /// extra multiply-add per transaction pair; used when UApriori serves as
    /// the engine of Normal-approximation miners).
    pub compute_variance: bool,
    /// Enable the decremental upper-bound pruning inside the counting scan.
    /// Only meaningful on the horizontal backend (it streams transactions);
    /// the vertical backend ignores it.
    pub decremental_pruning: bool,
    /// Support-computation backend (see [`EngineKind`]).
    pub engine: EngineKind,
}

impl UApriori {
    /// Plain UApriori (no variance, no decremental pruning).
    pub fn new() -> Self {
        Self::default()
    }

    /// UApriori that records each itemset's support variance.
    pub fn with_variance() -> Self {
        UApriori {
            compute_variance: true,
            ..Self::default()
        }
    }

    /// UApriori with the decremental pruning variant enabled.
    pub fn with_decremental_pruning() -> Self {
        UApriori {
            decremental_pruning: true,
            ..Self::default()
        }
    }

    /// UApriori on the given support backend.
    pub fn with_engine(engine: EngineKind) -> Self {
        UApriori {
            engine,
            ..Self::default()
        }
    }
}

impl MinerInfo for UApriori {
    fn name(&self) -> &'static str {
        "UApriori"
    }
    fn description(&self) -> &'static str {
        "breadth-first generate-and-test on expected support (Table 3: no auxiliary structure)"
    }
}

/// The decremental-pruning variant's evaluator. The plain (non-decremental)
/// path is the generic measure pipeline —
/// [`MeasureEvaluator`](crate::common::measure::MeasureEvaluator)`<`[`ExpectedSupport`]`>`
/// — shared with every other level-wise miner; only this streaming variant
/// needs bespoke scan control.
struct DecrementalEvaluator {
    threshold: f64,
}

impl LevelEvaluator for DecrementalEvaluator {
    fn evaluate_level(
        &mut self,
        db: &UncertainDatabase,
        _level: usize,
        candidates: &[Itemset],
        stats: &mut MinerStats,
    ) -> Vec<FrequentItemset> {
        stats.candidates_evaluated += candidates.len() as u64;
        self.evaluate_decremental(db, candidates, stats)
    }
}

impl DecrementalEvaluator {
    /// Decremental variant: processes transactions with a per-candidate
    /// *optimistic remainder* — the expected support still attainable if the
    /// candidate appeared with probability 1 in every remaining transaction.
    /// Once `esup_so_far + remaining < threshold` the candidate can never be
    /// frequent; it is dropped from the live set and the trie is rebuilt
    /// without it, shrinking all later matching work. The bound is checked
    /// once per chunk (rebuilding per transaction would cost more than it
    /// saves).
    fn evaluate_decremental(
        &self,
        db: &UncertainDatabase,
        candidates: &[Itemset],
        stats: &mut MinerStats,
    ) -> Vec<FrequentItemset> {
        use crate::common::trie::CandidateTrie;
        let n = db.num_transactions();
        let stride = (n / 16).max(1024);
        let mut esup = vec![0.0f64; candidates.len()];
        // `live[k]` maps the current trie's candidate index k to the
        // original candidate slot.
        let mut live: Vec<u32> = (0..candidates.len() as u32).collect();
        let mut trie = CandidateTrie::build(candidates);
        stats.scans += 1;

        let mut processed = 0usize;
        while processed < n && !live.is_empty() {
            let chunk_end = (processed + stride).min(n);
            for t in &db.transactions()[processed..chunk_end] {
                trie.for_each_contained(t.items(), t.probs(), &mut |idx, q| {
                    esup[live[idx as usize] as usize] += q;
                });
            }
            processed = chunk_end;
            if processed < n {
                let remaining = (n - processed) as f64;
                let before = live.len();
                live.retain(|&orig| esup[orig as usize] + remaining >= self.threshold);
                if live.len() != before {
                    stats.candidates_pruned_structural += (before - live.len()) as u64;
                    let live_sets: Vec<Itemset> = live
                        .iter()
                        .map(|&i| candidates[i as usize].clone())
                        .collect();
                    trie = CandidateTrie::build(&live_sets);
                }
            }
        }
        // Only candidates that stayed live have complete counts — and the
        // pruned ones provably cannot reach the threshold anyway.
        live.iter()
            .filter(|&&orig| esup[orig as usize] >= self.threshold)
            .map(|&orig| {
                FrequentItemset::with_esup(candidates[orig as usize].clone(), esup[orig as usize])
            })
            .collect()
    }
}

impl ExpectedSupportMiner for UApriori {
    fn mine_expected(
        &self,
        db: &UncertainDatabase,
        min_esup: Ratio,
    ) -> Result<MiningResult, CoreError> {
        let threshold = min_esup.threshold_real(db.num_transactions());
        // Decremental pruning streams over transactions; it only exists on
        // the horizontal layout.
        if self.decremental_pruning && self.engine == EngineKind::Horizontal {
            let mut evaluator = DecrementalEvaluator { threshold };
            return Ok(run_apriori(db, &mut evaluator));
        }
        let measure = if self.compute_variance {
            ExpectedSupport::with_variance(threshold)
        } else {
            ExpectedSupport::new(threshold)
        };
        Ok(mine_level_wise(db, measure, self.engine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use ufim_core::examples::{deterministic_small, paper_table1};

    #[test]
    fn example1_matches_paper() {
        let db = paper_table1();
        let r = UApriori::new().mine_expected_ratio(&db, 0.5).unwrap();
        assert_eq!(
            r.sorted_itemsets(),
            vec![Itemset::singleton(0), Itemset::singleton(2)]
        );
        let a = r.get(&Itemset::singleton(0)).unwrap();
        assert!((a.expected_support - 2.1).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_oracle_on_paper_db() {
        let db = paper_table1();
        for min_esup in [0.1, 0.25, 0.3, 0.5, 0.75, 1.0] {
            let fast = UApriori::new().mine_expected_ratio(&db, min_esup).unwrap();
            let slow = BruteForce::new()
                .mine_expected_ratio(&db, min_esup)
                .unwrap();
            assert_eq!(
                fast.sorted_itemsets(),
                slow.sorted_itemsets(),
                "min_esup={min_esup}"
            );
        }
    }

    #[test]
    fn variance_mode_matches_reference_moments() {
        let db = paper_table1();
        let r = UApriori::with_variance()
            .mine_expected_ratio(&db, 0.25)
            .unwrap();
        for fi in &r.itemsets {
            let (we, wv) = db.support_moments(fi.itemset.items());
            assert!((fi.expected_support - we).abs() < 1e-12);
            assert!((fi.variance.unwrap() - wv).abs() < 1e-12, "{}", fi.itemset);
        }
    }

    #[test]
    fn decremental_variant_agrees() {
        let db = deterministic_small();
        for min_esup in [0.2, 0.4, 0.6, 0.8] {
            let plain = UApriori::new().mine_expected_ratio(&db, min_esup).unwrap();
            let dec = UApriori::with_decremental_pruning()
                .mine_expected_ratio(&db, min_esup)
                .unwrap();
            assert_eq!(
                plain.sorted_itemsets(),
                dec.sorted_itemsets(),
                "min_esup={min_esup}"
            );
        }
    }

    #[test]
    fn vertical_backend_agrees_with_horizontal_exactly() {
        let db = paper_table1();
        for min_esup in [0.1, 0.25, 0.3, 0.5, 0.75, 1.0] {
            let h = UApriori::new().mine_expected_ratio(&db, min_esup).unwrap();
            let v = UApriori::with_engine(EngineKind::Vertical)
                .mine_expected_ratio(&db, min_esup)
                .unwrap();
            assert_eq!(h.sorted_itemsets(), v.sorted_itemsets(), "{min_esup}");
            for fi in &v.itemsets {
                let want = h.get(&fi.itemset).unwrap().expected_support;
                // Same multiplication and summation order: bitwise equal.
                assert_eq!(fi.expected_support, want, "{}", fi.itemset);
            }
        }
    }

    #[test]
    fn vertical_backend_pays_one_scan() {
        let db = paper_table1();
        let r = UApriori::with_engine(EngineKind::Vertical)
            .mine_expected_ratio(&db, 0.25)
            .unwrap();
        assert_eq!(r.stats.scans, 1);
        assert!(r.stats.intersections > 0);
    }

    #[test]
    fn reports_scan_counters() {
        let db = paper_table1();
        let r = UApriori::new().mine_expected_ratio(&db, 0.25).unwrap();
        assert!(r.stats.scans >= 2, "one scan per evaluated level");
        assert!(r.stats.candidates_evaluated >= 6);
    }

    #[test]
    fn empty_db() {
        let db = UncertainDatabase::from_transactions(vec![]);
        assert!(UApriori::new()
            .mine_expected_ratio(&db, 0.5)
            .unwrap()
            .is_empty());
    }
}
