//! Frequency-based item ordering.
//!
//! Both depth-first miners (UFP-growth, UH-Mine) reorder items by
//! *decreasing expected support* before building their structures — the
//! paper's §3.1.2: "finds all expected support-based frequent items and
//! orders these items by their expected supports". This module computes that
//! order once and provides the id↔rank remapping both miners share.

use ufim_core::{ItemId, UncertainDatabase};

/// A frequency ordering over the frequent items of a database.
///
/// Rank 0 is the most frequent item; infrequent items have no rank and are
/// dropped by the depth-first miners before any structure is built.
#[derive(Clone, Debug)]
pub struct FrequencyOrder {
    /// `rank_of[item] = Some(rank)` for frequent items.
    rank_of: Vec<Option<u32>>,
    /// `item_of[rank] = item`, decreasing expected support.
    item_of: Vec<ItemId>,
    /// `esup_of[rank]` = the item's expected support.
    esup_of: Vec<f64>,
}

impl FrequencyOrder {
    /// Scans the database once and orders items with
    /// `esup(item) ≥ threshold` by decreasing expected support.
    /// Ties break on item id so the order is total and deterministic.
    pub fn build(db: &UncertainDatabase, threshold: f64) -> Self {
        let esup = db.item_expected_supports();
        let mut frequent: Vec<ItemId> = (0..db.num_items())
            .filter(|&i| esup[i as usize] >= threshold)
            .collect();
        frequent.sort_by(|&a, &b| {
            esup[b as usize]
                .partial_cmp(&esup[a as usize])
                .expect("esup is finite")
                .then(a.cmp(&b))
        });
        let mut rank_of = vec![None; db.num_items() as usize];
        let mut esup_of = Vec::with_capacity(frequent.len());
        for (rank, &item) in frequent.iter().enumerate() {
            rank_of[item as usize] = Some(rank as u32);
            esup_of.push(esup[item as usize]);
        }
        FrequencyOrder {
            rank_of,
            item_of: frequent,
            esup_of,
        }
    }

    /// Builds the order over an explicit `(item, esup)` selection — for
    /// miners whose item-level acceptance test is not a plain expected
    /// support threshold (NDUH-Mine judges items by the Normal-approximated
    /// frequent probability). Ordering is still by decreasing expected
    /// support with id tie-break.
    pub fn from_selection(num_items: u32, mut selection: Vec<(ItemId, f64)>) -> Self {
        selection.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("esup is finite")
                .then(a.0.cmp(&b.0))
        });
        let mut rank_of = vec![None; num_items as usize];
        let mut item_of = Vec::with_capacity(selection.len());
        let mut esup_of = Vec::with_capacity(selection.len());
        for (rank, &(item, esup)) in selection.iter().enumerate() {
            rank_of[item as usize] = Some(rank as u32);
            item_of.push(item);
            esup_of.push(esup);
        }
        FrequencyOrder {
            rank_of,
            item_of,
            esup_of,
        }
    }

    /// Number of frequent items.
    pub fn len(&self) -> usize {
        self.item_of.len()
    }

    /// True when no item is frequent.
    pub fn is_empty(&self) -> bool {
        self.item_of.is_empty()
    }

    /// The rank of an item, if frequent.
    #[inline]
    pub fn rank(&self, item: ItemId) -> Option<u32> {
        self.rank_of.get(item as usize).copied().flatten()
    }

    /// The item at a rank.
    #[inline]
    pub fn item(&self, rank: u32) -> ItemId {
        self.item_of[rank as usize]
    }

    /// Expected support of the item at a rank.
    #[inline]
    pub fn esup(&self, rank: u32) -> f64 {
        self.esup_of[rank as usize]
    }

    /// Projects a transaction onto the frequent items, returning
    /// `(rank, prob)` units sorted by rank (i.e. decreasing global
    /// frequency) — the canonical insertion order for UFP-trees and
    /// UH-Struct rows.
    pub fn project(&self, items: &[ItemId], probs: &[f64]) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = items
            .iter()
            .zip(probs)
            .filter_map(|(&i, &p)| self.rank(i).map(|r| (r, p)))
            .collect();
        v.sort_unstable_by_key(|&(r, _)| r);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    #[test]
    fn paper_figure1_order() {
        // §3.1.2: with min_esup = 0.25 (threshold 1.0) the ordered list is
        // C:2.6, A:2.1, F:1.8, B:1.4, E:1.3, D:1.2.
        let db = paper_table1();
        let order = FrequencyOrder::build(&db, 1.0);
        assert_eq!(order.len(), 6);
        let ranked: Vec<ItemId> = (0..6).map(|r| order.item(r)).collect();
        assert_eq!(ranked, vec![2, 0, 5, 1, 4, 3]); // C A F B E D
        assert!((order.esup(0) - 2.6).abs() < 1e-12);
        assert!((order.esup(5) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn threshold_filters() {
        let db = paper_table1();
        let order = FrequencyOrder::build(&db, 2.0);
        assert_eq!(order.len(), 2); // C and A only
        assert_eq!(order.rank(2), Some(0));
        assert_eq!(order.rank(0), Some(1));
        assert_eq!(order.rank(1), None); // B infrequent
        assert_eq!(order.rank(99), None); // out of vocabulary
    }

    #[test]
    fn project_reorders_and_filters() {
        let db = paper_table1();
        let order = FrequencyOrder::build(&db, 2.0);
        let t1 = &db.transactions()[0]; // A B C D F
        let proj = order.project(t1.items(), t1.probs());
        // Only C (rank 0, p=0.9) and A (rank 1, p=0.8) survive, in rank order.
        assert_eq!(proj, vec![(0, 0.9), (1, 0.8)]);
    }

    #[test]
    fn empty_when_threshold_too_high() {
        let db = paper_table1();
        let order = FrequencyOrder::build(&db, 100.0);
        assert!(order.is_empty());
    }
}
