//! The level-wise (breadth-first) Apriori scaffold shared by UApriori,
//! PDUApriori, NDUApriori and the exact probabilistic miners.
//!
//! The scaffold owns what is common to all of them — candidate generation by
//! prefix join, subset-based structural pruning, and the loop over levels —
//! and delegates the *judgment* (which candidates of a level are frequent,
//! and with what statistics) to a [`LevelEvaluator`]. That split is exactly
//! the paper's observation that the four Apriori-framework algorithms differ
//! only in how they evaluate a candidate's support random variable.

use ufim_core::{FrequentItemset, FxHashSet, Itemset, MinerStats, MiningResult, UncertainDatabase};

/// Judges one level of candidates. Implementations scan the database however
/// they need (once for expectation-based miners, twice for Chernoff-pruned
/// exact miners) and return the surviving itemsets with their records.
pub trait LevelEvaluator {
    /// Evaluates `candidates` (all of size `level`), pushing survivors into
    /// the result and updating `stats`.
    fn evaluate_level(
        &mut self,
        db: &UncertainDatabase,
        level: usize,
        candidates: &[Itemset],
        stats: &mut MinerStats,
    ) -> Vec<FrequentItemset>;
}

/// Runs the level-wise loop: singletons, then join/prune/evaluate until a
/// level produces nothing.
pub fn run_apriori<E: LevelEvaluator>(db: &UncertainDatabase, evaluator: &mut E) -> MiningResult {
    let mut result = MiningResult::default();
    if db.is_empty() {
        return result;
    }

    // Level 1: every item in the vocabulary is a candidate.
    let mut candidates: Vec<Itemset> = (0..db.num_items()).map(Itemset::singleton).collect();
    let mut level = 1usize;

    while !candidates.is_empty() {
        let frequent = evaluator.evaluate_level(db, level, &candidates, &mut result.stats);
        if frequent.is_empty() {
            break;
        }
        candidates = generate_candidates(&frequent, &mut result.stats);
        result.itemsets.extend(frequent);
        level += 1;
    }
    result
}

/// Apriori candidate generation: join frequent k-itemsets sharing a
/// (k−1)-prefix, then prune candidates with any infrequent k-subset
/// (downward closure, which holds for both frequency definitions).
pub fn generate_candidates(frequent: &[FrequentItemset], stats: &mut MinerStats) -> Vec<Itemset> {
    let mut sorted: Vec<&Itemset> = frequent.iter().map(|f| &f.itemset).collect();
    sorted.sort();
    // Keyed by item slices so the subset probes below can test membership
    // from a reused buffer without building an `Itemset` per probe (slice
    // and itemset hashing agree — `Itemset` hashes its item array).
    let frequent_set: FxHashSet<&[ufim_core::ItemId]> = sorted.iter().map(|s| s.items()).collect();

    let mut out = Vec::new();
    // One scratch buffer serves every (k)-subset probe of every candidate:
    // candidate generation runs once per level on the hot path, and the
    // O(k · joins) fresh allocations it used to make were pure churn.
    let mut probe: Vec<ufim_core::ItemId> = Vec::new();
    for i in 0..sorted.len() {
        for j in i + 1..sorted.len() {
            // Sorted order groups equal prefixes together: once the prefix
            // differs, no later j can join with i.
            let Some(joined) = sorted[i].apriori_join(sorted[j]) else {
                break;
            };
            // Subset prune: every (k)-subset of the (k+1)-candidate must be
            // frequent (the two join parents among them, by construction).
            let items = joined.items();
            let ok = (0..items.len()).all(|skip| {
                probe.clear();
                probe.extend_from_slice(&items[..skip]);
                probe.extend_from_slice(&items[skip + 1..]);
                frequent_set.contains(probe.as_slice())
            });
            if ok {
                out.push(joined);
            } else {
                stats.candidates_pruned_structural += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;
    use ufim_core::Ratio;

    /// Minimal evaluator: plain expected-support counting via the reference
    /// database scan (quadratic, test-only).
    struct NaiveEsup {
        threshold: f64,
    }

    impl LevelEvaluator for NaiveEsup {
        fn evaluate_level(
            &mut self,
            db: &UncertainDatabase,
            _level: usize,
            candidates: &[Itemset],
            stats: &mut MinerStats,
        ) -> Vec<FrequentItemset> {
            stats.scans += 1;
            candidates
                .iter()
                .filter_map(|c| {
                    stats.candidates_evaluated += 1;
                    let esup = db.expected_support(c.items());
                    (esup >= self.threshold).then(|| FrequentItemset::with_esup(c.clone(), esup))
                })
                .collect()
        }
    }

    #[test]
    fn scaffold_reproduces_example1() {
        let db = paper_table1();
        let threshold = Ratio::new("min_esup", 0.5).unwrap().threshold_real(4);
        let mut eval = NaiveEsup { threshold };
        let result = run_apriori(&db, &mut eval);
        assert_eq!(
            result.sorted_itemsets(),
            vec![Itemset::singleton(0), Itemset::singleton(2)]
        );
        // {A,C} was generated as a candidate (both parents frequent) but
        // fails the threshold, so level 2 is evaluated and empty.
        assert!(result.stats.scans >= 2);
    }

    #[test]
    fn scaffold_finds_multilevel_itemsets() {
        let db = paper_table1();
        let mut eval = NaiveEsup { threshold: 1.0 }; // min_esup = 0.25
        let result = run_apriori(&db, &mut eval);
        // All six items are frequent; {A,C} has esup 1.84 ≥ 1.0 and more.
        assert!(result.get(&Itemset::from_items([0, 2])).is_some());
        let ac = result.get(&Itemset::from_items([0, 2])).unwrap();
        assert!((ac.expected_support - 1.84).abs() < 1e-12);
        // Triple {A,C,E}: T2 0.8·0.9·0.5 + T3 0.5·0.8·0.8 = 0.36+0.32 = 0.68.
        let ace = result.get(&Itemset::from_items([0, 2, 4]));
        assert!(ace.is_none(), "esup 0.68 < 1.0 must be excluded");
    }

    #[test]
    fn empty_db_short_circuits() {
        let db = UncertainDatabase::from_transactions(vec![]);
        let mut eval = NaiveEsup { threshold: 1.0 };
        let result = run_apriori(&db, &mut eval);
        assert!(result.is_empty());
        assert_eq!(result.stats.scans, 0);
    }

    #[test]
    fn candidate_generation_joins_and_prunes() {
        let mut stats = MinerStats::default();
        let freq: Vec<FrequentItemset> = [[1u32, 2], [1, 3], [2, 3], [2, 4]]
            .iter()
            .map(|pair| FrequentItemset::with_esup(Itemset::from_items(*pair), 1.0))
            .collect();
        let cands = generate_candidates(&freq, &mut stats);
        // {1,2}+{1,3} → {1,2,3}: all subsets frequent ✓
        // {2,3}+{2,4} → {2,3,4}: subset {3,4} missing ✗ (structural prune)
        assert_eq!(cands, vec![Itemset::from_items([1, 2, 3])]);
        assert_eq!(stats.candidates_pruned_structural, 1);
    }

    #[test]
    fn candidate_generation_from_singletons() {
        let mut stats = MinerStats::default();
        let freq: Vec<FrequentItemset> = [5u32, 2, 9]
            .iter()
            .map(|&i| FrequentItemset::with_esup(Itemset::singleton(i), 1.0))
            .collect();
        let mut cands = generate_candidates(&freq, &mut stats);
        cands.sort();
        assert_eq!(
            cands,
            vec![
                Itemset::from_items([2, 5]),
                Itemset::from_items([2, 9]),
                Itemset::from_items([5, 9]),
            ]
        );
    }
}
