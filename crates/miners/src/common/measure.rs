//! The pluggable *frequentness measure* layer — the judgment axis of the
//! paper's two-dimensional taxonomy.
//!
//! The paper classifies uncertain frequent-itemset mining along two
//! independent axes: **what "frequent" means** (expected support, exact
//! probabilistic, or an approximation of the latter) and **how the lattice
//! is explored** (level-wise Apriori vs. depth-first pattern growth). The
//! seed codebase welded each judgment to one traversal; this module factors
//! the judgment out as [`FrequentnessMeasure`], so every traversal framework
//! — the Apriori scaffold ([`run_apriori`](super::apriori::run_apriori) via
//! [`MeasureEvaluator`]), the UH-Struct depth-first walk, and the UFP-tree
//! growth — runs *any* compatible measure. The eight paper miners become
//! named cells of a measure × traversal × engine matrix, and previously
//! unbuildable cells (exact DP on UH-Mine, Poisson on UFP-growth) come for
//! free.
//!
//! A measure consumes per-candidate statistics — expected support, support
//! variance, nonzero-transaction count, and (for exact measures) the
//! candidate's per-transaction containment-probability vector — and renders
//! a keep/prune verdict plus the record to report. It also exports the
//! cheap *bounds* that make the pruning pipeline work: engine-level
//! threshold pushdown ([`FrequentnessMeasure::min_esup_bound`] /
//! [`min_count_bound`](FrequentnessMeasure::min_count_bound)) and the
//! Chernoff / count screen ([`FrequentnessMeasure::screen`]) that exact
//! miners run before paying for a kernel evaluation.

use super::apriori::LevelEvaluator;
use super::engine::{StatRequest, SupportEngine};
use ufim_core::prelude::*;
use ufim_stats::chernoff::chernoff_prunable;
use ufim_stats::normal::{normal_esup_lower_bound, normal_survival_with_continuity};
use ufim_stats::pb::{pmf_divide_conquer, survival_dp};
use ufim_stats::poisson::poisson_lambda_for_survival;

/// Which per-candidate statistics a measure judges on. Traversals use this
/// to skip work (variance accumulation, probability-vector gathering) the
/// active measure will never read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatNeeds {
    /// The support variance `Σ q_t(1 − q_t)`.
    pub variance: bool,
    /// The number of transactions with nonzero containment probability.
    pub count: bool,
    /// The full nonzero containment-probability vector (transaction order).
    pub prob_vector: bool,
}

/// The statistics of one candidate itemset, as accumulated by a traversal.
///
/// Fields the measure did not request through [`StatNeeds`] carry
/// unspecified values (`probs` is `None`).
#[derive(Clone, Copy, Debug)]
pub struct CandidateStats<'a> {
    /// Expected support `esup(X) = Σ_t q_t`.
    pub esup: f64,
    /// Support variance (meaningful iff [`StatNeeds::variance`]).
    pub variance: f64,
    /// Nonzero-transaction count (meaningful iff [`StatNeeds::count`]).
    pub count: u64,
    /// Nonzero containment probabilities in ascending transaction order
    /// (`Some` iff [`StatNeeds::prob_vector`]).
    pub probs: Option<&'a [f64]>,
}

/// Outcome of the cheap pre-kernel screen ([`FrequentnessMeasure::screen`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Screen {
    /// Not provably infrequent: proceed to [`FrequentnessMeasure::judge`].
    Keep,
    /// Fewer nonzero transactions than the support threshold — counted in
    /// [`MinerStats::candidates_pruned_count`].
    PruneCount,
    /// Ruled out by a closed-form tail bound (Chernoff) — counted in
    /// [`MinerStats::candidates_pruned_chernoff`].
    PruneBound,
}

/// The record a measure reports for a kept candidate. The traversal copies
/// these fields into the output [`FrequentItemset`] verbatim, so each
/// measure controls exactly which statistics its miners expose (PDUApriori
/// famously "cannot return the frequent probability values").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Judgment {
    /// Expected support to report.
    pub expected_support: f64,
    /// Support variance to report, if the measure exposes it.
    pub variance: Option<f64>,
    /// Frequent probability to report, if the measure computes one.
    pub frequent_prob: Option<f64>,
}

/// A frequentness definition, decoupled from lattice traversal.
///
/// Implementors map a candidate's support statistics to a keep/prune
/// verdict plus the reported score, and export the prune bounds the
/// traversal and engine layers exploit. All five measures in this module
/// are **anti-monotone** under their own semantics (the approximations by
/// construction, as the paper argues for NDUH-Mine), which is what lets
/// depth-first traversals stop expanding a prefix the moment it fails.
///
/// # Worked example
///
/// Judging the paper's Table 1 itemset `{A}` (esup 2.1, variance 0.69) by
/// two different measures — the same statistics, two different verdicts:
///
/// ```
/// use ufim_miners::common::measure::{
///     CandidateStats, ExpectedSupport, FrequentnessMeasure, NormalApprox,
/// };
/// use ufim_core::MinerStats;
///
/// let stats_of_a = CandidateStats {
///     esup: 2.1,
///     variance: 0.69,
///     count: 3,
///     probs: None,
/// };
/// let mut counters = MinerStats::default();
///
/// // Definition 2 at min_esup = 0.5 over N = 4 transactions: threshold 2.0.
/// let esup = ExpectedSupport::new(2.0);
/// let kept = esup.judge(&stats_of_a, &mut counters).expect("2.1 ≥ 2.0");
/// assert_eq!(kept.expected_support, 2.1);
/// assert_eq!(kept.frequent_prob, None); // Definition 2 has no probability
///
/// // Normal-approximated Definition 4 at msup = 3, pft = 0.9: the CLT tail
/// // 1 − Φ((3 − 0.5 − 2.1)/√0.69) ≈ 0.685 does not clear 0.9 → pruned.
/// let normal = NormalApprox::new(3, 0.9);
/// assert!(normal.needs().variance);
/// assert!(normal.judge(&stats_of_a, &mut counters).is_none());
/// ```
/// (`Sync` is a supertrait: the depth-first traversals share the measure
/// across the worker threads of their first-level fan-out. Measures are
/// plain parameter bundles, so this costs implementors nothing.)
pub trait FrequentnessMeasure: Sync {
    /// Stable lower-case measure name (matches [`MeasureKind::name`]).
    fn name(&self) -> &'static str;

    /// Which statistics [`judge`](Self::judge) reads.
    fn needs(&self) -> StatNeeds;

    /// A sound engine-pushdown threshold: candidates with `esup` strictly
    /// below it are never kept by [`judge`](Self::judge). Engines use it to
    /// drop memoization state early ([`StatRequest::min_esup`]); it never
    /// changes reported results.
    fn min_esup_bound(&self) -> Option<f64> {
        None
    }

    /// A sound nonzero-count pushdown threshold, like
    /// [`min_esup_bound`](Self::min_esup_bound).
    fn min_count_bound(&self) -> Option<u64> {
        None
    }

    /// Cheap screen from the moments alone, run *before* probability
    /// vectors are gathered. A prune verdict must be consistent with
    /// [`judge`](Self::judge) (the judged probability could not have
    /// cleared the threshold).
    fn screen(&self, _esup: f64, _count: u64) -> Screen {
        Screen::Keep
    }

    /// The full verdict: `Some(record)` keeps the candidate (and, in
    /// depth-first traversals, expands it), `None` prunes it. Measures that
    /// run an exact kernel charge [`MinerStats::exact_evaluations`].
    fn judge(&self, c: &CandidateStats<'_>, stats: &mut MinerStats) -> Option<Judgment>;

    /// `Some(t)` when the measure is *equivalent* to the plain expected
    /// support cut `esup ≥ t` (true for [`ExpectedSupport`] and the
    /// λ\*-folded [`PoissonApprox`]). Lets reporting layers treat such
    /// measures as Definition 2 runs.
    fn as_esup_threshold(&self) -> Option<f64> {
        None
    }
}

/// Definition 2: `esup(X) ≥ threshold` (threshold in transactions, i.e.
/// `N · min_esup`).
#[derive(Clone, Copy, Debug)]
pub struct ExpectedSupport {
    threshold: f64,
    record_variance: bool,
}

impl ExpectedSupport {
    /// Plain expected-support judgment.
    pub fn new(threshold: f64) -> Self {
        ExpectedSupport {
            threshold,
            record_variance: false,
        }
    }

    /// Expected-support judgment that also records each kept itemset's
    /// support variance (UApriori's variance mode).
    pub fn with_variance(threshold: f64) -> Self {
        ExpectedSupport {
            threshold,
            record_variance: true,
        }
    }
}

impl FrequentnessMeasure for ExpectedSupport {
    fn name(&self) -> &'static str {
        MeasureKind::ExpectedSupport.name()
    }

    fn needs(&self) -> StatNeeds {
        StatNeeds {
            variance: self.record_variance,
            ..StatNeeds::default()
        }
    }

    fn min_esup_bound(&self) -> Option<f64> {
        Some(self.threshold)
    }

    fn judge(&self, c: &CandidateStats<'_>, _stats: &mut MinerStats) -> Option<Judgment> {
        (c.esup >= self.threshold).then(|| Judgment {
            expected_support: c.esup,
            variance: self.record_variance.then_some(c.variance),
            frequent_prob: None,
        })
    }

    fn as_esup_threshold(&self) -> Option<f64> {
        Some(self.threshold)
    }
}

/// Poisson (Le Cam) approximation of Definition 4, folded into the derived
/// expected-support threshold `λ*` (paper §3.3.1). Membership only.
#[derive(Clone, Copy, Debug)]
pub struct PoissonApprox {
    threshold: f64,
}

impl PoissonApprox {
    /// Solves `Pr{Poisson(λ*) ≥ msup} = pft` for the database size and
    /// parameters, exactly as PDUApriori does. Returns `Ok(None)` when
    /// `λ*` exceeds the transaction count — no itemset can qualify.
    ///
    /// # Errors
    /// Propagates ratio validation of the derived threshold (unreachable
    /// for in-range parameters; kept for parity with PDUApriori).
    pub fn from_params(n: usize, params: &MiningParams) -> Result<Option<Self>, CoreError> {
        let msup = params.msup(n);
        let pft = params.pft.get();
        let lambda = if pft >= 1.0 {
            // Survival can never strictly exceed 1.
            f64::INFINITY
        } else {
            poisson_lambda_for_survival(msup, pft)
        };
        if lambda > n as f64 {
            // esup(X) ≤ N for every itemset: nothing can qualify.
            return Ok(None);
        }
        // Round-trip through Ratio so the threshold is bit-identical to
        // PDUApriori's historical delegation to UApriori at λ*/N.
        let min_esup = Ratio::new("min_esup(λ*/N)", lambda / n as f64)?;
        Ok(Some(PoissonApprox {
            threshold: min_esup.threshold_real(n),
        }))
    }

    /// The derived threshold in transactions (`≈ λ*`).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl FrequentnessMeasure for PoissonApprox {
    fn name(&self) -> &'static str {
        MeasureKind::Poisson.name()
    }

    fn needs(&self) -> StatNeeds {
        StatNeeds::default()
    }

    fn min_esup_bound(&self) -> Option<f64> {
        Some(self.threshold)
    }

    fn judge(&self, c: &CandidateStats<'_>, _stats: &mut MinerStats) -> Option<Judgment> {
        // Membership-only semantics: no variance, no probability.
        (c.esup >= self.threshold).then_some(Judgment {
            expected_support: c.esup,
            variance: None,
            frequent_prob: None,
        })
    }

    fn as_esup_threshold(&self) -> Option<f64> {
        Some(self.threshold)
    }
}

/// Normal (CLT) approximation of Definition 4 from `(esup, Var)` (paper
/// §3.3.2–3.3.3), with a sound `min_esup` pushdown bound derived from the
/// Normal tail at `pft` ([`normal_esup_lower_bound`]).
#[derive(Clone, Copy, Debug)]
pub struct NormalApprox {
    msup: usize,
    pft: f64,
    min_esup: f64,
}

impl NormalApprox {
    /// Creates the measure for an integer support threshold and `pft`.
    pub fn new(msup: usize, pft: f64) -> Self {
        NormalApprox {
            msup,
            pft,
            min_esup: normal_esup_lower_bound(msup, pft),
        }
    }
}

impl FrequentnessMeasure for NormalApprox {
    fn name(&self) -> &'static str {
        MeasureKind::Normal.name()
    }

    fn needs(&self) -> StatNeeds {
        StatNeeds {
            variance: true,
            ..StatNeeds::default()
        }
    }

    fn min_esup_bound(&self) -> Option<f64> {
        // Var ≤ esup for any Poisson-Binomial support, so below this mean
        // the approximated survival cannot clear pft whatever the variance.
        Some(self.min_esup)
    }

    fn judge(&self, c: &CandidateStats<'_>, _stats: &mut MinerStats) -> Option<Judgment> {
        let pr = normal_survival_with_continuity(c.esup, c.variance, self.msup);
        (pr > self.pft).then_some(Judgment {
            expected_support: c.esup,
            variance: Some(c.variance),
            frequent_prob: Some(pr),
        })
    }
}

/// Which exact frequent-probability kernel an [`ExactMeasure`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExactKernel {
    /// Threshold-truncated dynamic programming, `O(N·msup)` per itemset.
    DynamicProgramming,
    /// Divide-and-conquer PMF with FFT convolution, `O(N log N)` per
    /// itemset.
    DivideConquer,
}

/// Exact Definition 4: `Pr{sup(X) ≥ msup} > pft` evaluated by a DP or DC
/// kernel over the candidate's probability vector (paper §3.2), with the
/// optional Chernoff + count screen of §3.2.3.
#[derive(Clone, Copy, Debug)]
pub struct ExactMeasure {
    kernel: ExactKernel,
    chernoff: bool,
    msup: usize,
    msup_real: f64,
    pft: f64,
}

impl ExactMeasure {
    /// Creates the measure for a database of `n` transactions.
    pub fn new(kernel: ExactKernel, chernoff: bool, n: usize, params: &MiningParams) -> Self {
        ExactMeasure {
            kernel,
            chernoff,
            msup: params.msup(n),
            msup_real: params.min_sup.threshold_real(n),
            pft: params.pft.get(),
        }
    }
}

impl FrequentnessMeasure for ExactMeasure {
    fn name(&self) -> &'static str {
        match self.kernel {
            ExactKernel::DynamicProgramming => MeasureKind::ExactDp.name(),
            ExactKernel::DivideConquer => MeasureKind::ExactDc.name(),
        }
    }

    fn needs(&self) -> StatNeeds {
        StatNeeds {
            variance: false,
            count: true,
            prob_vector: true,
        }
    }

    fn min_count_bound(&self) -> Option<u64> {
        // NB variants evaluate every candidate exactly, so their engines
        // must keep everything memoized.
        self.chernoff.then_some(self.msup as u64)
    }

    fn screen(&self, esup: f64, count: u64) -> Screen {
        if !self.chernoff {
            Screen::Keep
        } else if (count as usize) < self.msup {
            Screen::PruneCount
        } else if chernoff_prunable(esup, self.msup_real, self.pft) {
            Screen::PruneBound
        } else {
            Screen::Keep
        }
    }

    fn judge(&self, c: &CandidateStats<'_>, stats: &mut MinerStats) -> Option<Judgment> {
        let probs = c.probs.expect("exact measures require probability vectors");
        stats.exact_evaluations += 1;
        let pr = match self.kernel {
            ExactKernel::DynamicProgramming => survival_dp(probs, self.msup),
            ExactKernel::DivideConquer => {
                // Saturated PMF: index msup is Pr{sup ≥ msup}.
                let pmf = pmf_divide_conquer(probs, Some(self.msup));
                if self.msup < pmf.len() {
                    pmf[self.msup]
                } else {
                    0.0
                }
            }
        };
        (pr > self.pft).then_some(Judgment {
            expected_support: c.esup,
            variance: None,
            frequent_prob: Some(pr),
        })
    }
}

/// One kept candidate's raw engine statistics, retained for later
/// re-judgment at a different threshold of the *same* measure kind.
///
/// These are the exact [`CandidateStats`] fields the basis run's judge saw
/// (bit-exact f64s, cloned probability vectors), which is what makes warm
/// answers provably bit-identical to a cold re-mine: the engine statistics
/// of a candidate do not depend on the threshold (pushdown bounds only drop
/// memo state, never change values), so re-running `judge` on a retained
/// record at a covered query threshold reproduces the cold record exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct RetainedRecord {
    /// The itemset.
    pub itemset: Itemset,
    /// Engine-computed expected support.
    pub esup: f64,
    /// Engine-computed support variance (0.0 when the measure never reads
    /// it — [`StatNeeds::variance`] is a constant per measure kind).
    pub variance: f64,
    /// Engine-computed nonzero-transaction count (0 likewise).
    pub count: u64,
    /// The nonzero containment-probability vector, retained only for exact
    /// measures ([`StatNeeds::prob_vector`]).
    pub probs: Option<Vec<f64>>,
}

impl RetainedRecord {
    /// Approximate heap + inline weight in bytes, for residency budgeting.
    pub fn mem_bytes(&self) -> u64 {
        let probs = self.probs.as_ref().map_or(0, |p| p.len() * 8);
        (std::mem::size_of::<RetainedRecord>() + self.itemset.len() * 4 + probs) as u64
    }

    /// Re-judges this record's retained statistics under `measure`,
    /// producing the same [`FrequentItemset`] a cold mine at that measure's
    /// parameters would emit (or `None` if the record does not qualify).
    pub fn rejudge<M: FrequentnessMeasure + ?Sized>(
        &self,
        measure: &M,
        stats: &mut MinerStats,
    ) -> Option<FrequentItemset> {
        let c = CandidateStats {
            esup: self.esup,
            variance: self.variance,
            count: self.count,
            probs: self.probs.as_deref(),
        };
        measure.judge(&c, stats).map(|j| FrequentItemset {
            itemset: self.itemset.clone(),
            expected_support: j.expected_support,
            variance: j.variance,
            frequent_prob: j.frequent_prob,
        })
    }
}

/// The generic level evaluator: any [`FrequentnessMeasure`] over any
/// [`SupportEngine`]. This is the whole Apriori half of the matrix — the
/// per-miner evaluators (expected-support, Normal, Poisson, exact two-phase)
/// that the seed duplicated across five modules collapse into this one type.
pub struct MeasureEvaluator<'e, M: FrequentnessMeasure> {
    /// The judgment.
    pub measure: M,
    /// The support backend.
    pub engine: Box<dyn SupportEngine + 'e>,
    /// When `Some`, every kept candidate's raw statistics are also pushed
    /// here (the resident-memo capture seam; see [`mine_level_wise_captured`]).
    pub capture: Option<Vec<RetainedRecord>>,
}

impl<M: FrequentnessMeasure> LevelEvaluator for MeasureEvaluator<'_, M> {
    fn evaluate_level(
        &mut self,
        _db: &UncertainDatabase,
        _level: usize,
        candidates: &[Itemset],
        stats: &mut MinerStats,
    ) -> Vec<FrequentItemset> {
        stats.candidates_evaluated += candidates.len() as u64;
        let needs = self.measure.needs();
        let want = StatRequest {
            variance: needs.variance,
            count: needs.count,
            min_esup: self.measure.min_esup_bound(),
            min_count: self.measure.min_count_bound(),
        };
        let sup = self.engine.evaluate(candidates, want, stats);

        // Phase A: the cheap screen over the moments.
        let mut survivors: Vec<u32> = Vec::with_capacity(candidates.len());
        for idx in 0..candidates.len() {
            let count = sup.count.as_ref().map_or(0, |c| c[idx]);
            match self.measure.screen(sup.esup[idx], count) {
                Screen::Keep => survivors.push(idx as u32),
                Screen::PruneCount => stats.candidates_pruned_count += 1,
                Screen::PruneBound => stats.candidates_pruned_chernoff += 1,
            }
        }

        // Phase B: gather probability vectors only when the measure judges
        // on exact distributions, and only for screen survivors.
        let qvecs: Option<Vec<Vec<f64>>> = if needs.prob_vector {
            if survivors.is_empty() {
                self.engine.finish_level(&[]);
                return Vec::new();
            }
            let sets: Vec<Itemset> = survivors
                .iter()
                .map(|&i| candidates[i as usize].clone())
                .collect();
            Some(self.engine.prob_vectors(&sets, stats))
        } else {
            None
        };

        let mut out = Vec::with_capacity(survivors.len());
        for (slot, &idx) in survivors.iter().enumerate() {
            let i = idx as usize;
            let c = CandidateStats {
                esup: sup.esup[i],
                variance: sup.variance.as_ref().map_or(0.0, |v| v[i]),
                count: sup.count.as_ref().map_or(0, |c| c[i]),
                probs: qvecs.as_ref().map(|q| q[slot].as_slice()),
            };
            if let Some(j) = self.measure.judge(&c, stats) {
                if let Some(capture) = &mut self.capture {
                    capture.push(RetainedRecord {
                        itemset: candidates[i].clone(),
                        esup: c.esup,
                        variance: c.variance,
                        count: c.count,
                        probs: c.probs.map(<[f64]>::to_vec),
                    });
                }
                out.push(FrequentItemset {
                    itemset: candidates[i].clone(),
                    expected_support: j.expected_support,
                    variance: j.variance,
                    frequent_prob: j.frequent_prob,
                });
            }
        }
        self.engine.finish_level(&out);
        out
    }
}

/// Runs the level-wise (Apriori) traversal of `measure` on the `engine`
/// backend — the `LevelWise` column of the matrix as one function.
pub fn mine_level_wise<M: FrequentnessMeasure>(
    db: &UncertainDatabase,
    measure: M,
    engine: EngineKind,
) -> MiningResult {
    mine_level_wise_with_plan(
        db,
        measure,
        engine,
        ShardPlan::for_transactions(db.num_transactions()),
    )
}

/// [`mine_level_wise`] with an explicit tid-range shard plan for the
/// support backend. Records are bit-identical for every plan (the sharded
/// engines' merge is exact); the default plan — a pure function of the
/// database size — only engages sharding past one default-width shard.
pub fn mine_level_wise_with_plan<M: FrequentnessMeasure>(
    db: &UncertainDatabase,
    measure: M,
    engine: EngineKind,
    plan: ShardPlan,
) -> MiningResult {
    let mut evaluator = MeasureEvaluator {
        measure,
        engine: super::engine::build_engine_with_plan(engine, db, plan),
        capture: None,
    };
    super::apriori::run_apriori(db, &mut evaluator)
}

/// [`mine_level_wise`], additionally retaining every kept candidate's raw
/// engine statistics — the mine-*into*-a-resident-memo entry point.
///
/// The returned records are in judgment order (level-major), one per output
/// itemset, carrying the bit-exact [`CandidateStats`] the judge consumed.
/// [`RetainedRecord::rejudge`] replays them under any same-kind measure
/// whose answer set is a subset (anti-monotonicity in the threshold), which
/// is how the serving layer answers covered queries with zero intersections.
pub fn mine_level_wise_captured<M: FrequentnessMeasure>(
    db: &UncertainDatabase,
    measure: M,
    engine: EngineKind,
) -> (MiningResult, Vec<RetainedRecord>) {
    let mut evaluator = MeasureEvaluator {
        measure,
        engine: super::engine::build_engine_with_plan(
            engine,
            db,
            ShardPlan::for_transactions(db.num_transactions()),
        ),
        capture: Some(Vec::new()),
    };
    let result = super::apriori::run_apriori(db, &mut evaluator);
    let retained = evaluator.capture.take().unwrap_or_default();
    (result, retained)
}

/// One-scan item-level selection for the depth-first traversals: judges
/// every item of the vocabulary by `measure` and returns the survivors with
/// their expected supports (the input of
/// [`FrequencyOrder::from_selection`](super::order::FrequencyOrder::from_selection)).
///
/// Charges one scan; item-level screens feed the prune counters, and exact
/// measures charge their kernel runs, but items are not counted as
/// candidates — matching how the seed's depth-first miners accounted for
/// their level-1 filtering.
///
/// For exact measures the surviving items' kernels run again when the walk
/// judges the same singletons (the walk needs the judgment's probability
/// for the output record). That one-time `O(F)` duplication is the price
/// of filtering the structure down to the frequent item mass before it is
/// built, which is what keeps the arena small on sparse data.
pub fn select_items<M: FrequentnessMeasure>(
    db: &UncertainDatabase,
    measure: &M,
    stats: &mut MinerStats,
) -> Vec<(ItemId, f64)> {
    let needs = measure.needs();
    let ni = db.num_items() as usize;
    let mut esup = vec![0.0f64; ni];
    let mut var = vec![0.0f64; ni];
    let mut count = vec![0u64; ni];
    let mut qs: Option<Vec<Vec<f64>>> = needs.prob_vector.then(|| vec![Vec::new(); ni]);
    for t in db.transactions() {
        for (item, p) in t.units() {
            let i = item as usize;
            esup[i] += p;
            if needs.variance {
                var[i] += p * (1.0 - p);
            }
            count[i] += 1;
            if let Some(qs) = &mut qs {
                qs[i].push(p);
            }
        }
    }
    stats.scans += 1;

    let mut selection = Vec::new();
    for i in 0..ni {
        match measure.screen(esup[i], count[i]) {
            Screen::Keep => {}
            Screen::PruneCount => {
                stats.candidates_pruned_count += 1;
                continue;
            }
            Screen::PruneBound => {
                stats.candidates_pruned_chernoff += 1;
                continue;
            }
        }
        let c = CandidateStats {
            esup: esup[i],
            variance: var[i],
            count: count[i],
            probs: qs.as_ref().map(|q| q[i].as_slice()),
        };
        if measure.judge(&c, stats).is_some() {
            selection.push((i as ItemId, esup[i]));
        }
    }
    selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    #[test]
    fn expected_support_measure_judges_by_threshold() {
        let mut stats = MinerStats::default();
        let m = ExpectedSupport::new(2.0);
        assert_eq!(m.name(), "esup");
        assert_eq!(m.min_esup_bound(), Some(2.0));
        assert_eq!(m.as_esup_threshold(), Some(2.0));
        assert!(!m.needs().variance && !m.needs().prob_vector);
        let keep = CandidateStats {
            esup: 2.1,
            variance: 0.0,
            count: 3,
            probs: None,
        };
        let j = m.judge(&keep, &mut stats).unwrap();
        assert_eq!(j.expected_support, 2.1);
        assert_eq!(j.variance, None);
        assert_eq!(j.frequent_prob, None);
        let drop = CandidateStats { esup: 1.9, ..keep };
        assert!(m.judge(&drop, &mut stats).is_none());
        // Variance mode records it.
        let mv = ExpectedSupport::with_variance(2.0);
        assert!(mv.needs().variance);
        let j = mv
            .judge(
                &CandidateStats {
                    variance: 0.57,
                    ..keep
                },
                &mut stats,
            )
            .unwrap();
        assert_eq!(j.variance, Some(0.57));
    }

    #[test]
    fn poisson_measure_folds_into_a_threshold() {
        let params = MiningParams::new(0.5, 0.7).unwrap();
        let m = PoissonApprox::from_params(100, &params).unwrap().unwrap();
        assert_eq!(m.name(), "poisson");
        assert!(m.threshold() > 0.0 && m.threshold() <= 100.0);
        assert_eq!(m.as_esup_threshold(), Some(m.threshold()));
        let mut stats = MinerStats::default();
        let j = m
            .judge(
                &CandidateStats {
                    esup: m.threshold() + 1.0,
                    variance: 0.0,
                    count: 60,
                    probs: None,
                },
                &mut stats,
            )
            .unwrap();
        // Membership-only: never a probability, never a variance.
        assert_eq!(j.frequent_prob, None);
        assert_eq!(j.variance, None);
        // Infeasible λ*: min_sup = 1.0, pft = 0.99 on a tiny database.
        let params = MiningParams::new(1.0, 0.99).unwrap();
        assert!(PoissonApprox::from_params(4, &params).unwrap().is_none());
    }

    #[test]
    fn normal_measure_reports_probability_and_bound() {
        let m = NormalApprox::new(3, 0.5);
        assert_eq!(m.name(), "normal");
        assert!(m.needs().variance);
        let bound = m.min_esup_bound().unwrap();
        assert!(bound > 0.0 && bound <= 2.5);
        let mut stats = MinerStats::default();
        // esup 2.6, var 0.86 (paper's {C}): Pr ≈ 0.543 > 0.5 → kept.
        let j = m
            .judge(
                &CandidateStats {
                    esup: 2.6,
                    variance: 0.86,
                    count: 4,
                    probs: None,
                },
                &mut stats,
            )
            .unwrap();
        let pr = j.frequent_prob.unwrap();
        assert!((pr - normal_survival_with_continuity(2.6, 0.86, 3)).abs() < 1e-15);
        assert_eq!(j.variance, Some(0.86));
        // Below the pushdown bound, the verdict must be prune whatever the
        // variance (soundness of the bound at the measure level).
        for frac in [0.1, 0.5, 0.99] {
            let esup = bound * frac;
            for var in [0.0, esup * 0.5, esup] {
                let c = CandidateStats {
                    esup,
                    variance: var,
                    count: 4,
                    probs: None,
                };
                assert!(m.judge(&c, &mut stats).is_none(), "esup={esup} var={var}");
            }
        }
    }

    #[test]
    fn exact_measure_screens_then_judges() {
        let params = MiningParams::new(0.5, 0.7).unwrap();
        let m = ExactMeasure::new(ExactKernel::DynamicProgramming, true, 4, &params);
        assert_eq!(m.name(), "exact-dp");
        assert!(m.needs().prob_vector && m.needs().count);
        assert_eq!(m.min_count_bound(), Some(2));
        // Count screen: one nonzero transaction < msup = 2.
        assert_eq!(m.screen(0.9, 1), Screen::PruneCount);
        // Chernoff screen: tiny mean far below the threshold.
        let m100 = ExactMeasure::new(
            ExactKernel::DynamicProgramming,
            true,
            100,
            &MiningParams::new(0.5, 0.7).unwrap(),
        );
        assert_eq!(m100.screen(1.0, 80), Screen::PruneBound);
        // NB variant never screens.
        let nb = ExactMeasure::new(ExactKernel::DivideConquer, false, 100, &params);
        assert_eq!(nb.screen(1.0, 1), Screen::Keep);
        assert_eq!(nb.min_count_bound(), None);
        assert_eq!(nb.name(), "exact-dc");

        // Kernels agree and charge exact_evaluations.
        let probs = [0.9, 0.8, 0.7, 0.4];
        let mut stats = MinerStats::default();
        let c = CandidateStats {
            esup: probs.iter().sum(),
            variance: 0.0,
            count: probs.len() as u64,
            probs: Some(&probs),
        };
        let dp = m.judge(&c, &mut stats).unwrap();
        let dc = ExactMeasure::new(ExactKernel::DivideConquer, true, 4, &params)
            .judge(&c, &mut stats)
            .unwrap();
        assert_eq!(stats.exact_evaluations, 2);
        assert!((dp.frequent_prob.unwrap() - dc.frequent_prob.unwrap()).abs() < 1e-12);
        assert!((dp.frequent_prob.unwrap() - survival_dp(&probs, 2)).abs() < 1e-15);
    }

    #[test]
    fn level_wise_runner_reproduces_example1_on_both_engines() {
        let db = paper_table1();
        for engine in EngineKind::ALL {
            let r = mine_level_wise(&db, ExpectedSupport::new(2.0), engine);
            assert_eq!(
                r.sorted_itemsets(),
                vec![Itemset::singleton(0), Itemset::singleton(2)],
                "{engine}"
            );
        }
    }

    #[test]
    fn select_items_matches_frequency_order_inputs() {
        use crate::common::order::FrequencyOrder;
        let db = paper_table1();
        let mut stats = MinerStats::default();
        let sel = select_items(&db, &ExpectedSupport::new(2.0), &mut stats);
        assert_eq!(stats.scans, 1);
        // Same survivors and esups as the esup-threshold FrequencyOrder.
        let order = FrequencyOrder::from_selection(db.num_items(), sel);
        let reference = FrequencyOrder::build(&db, 2.0);
        assert_eq!(order.len(), reference.len());
        for rank in 0..order.len() as u32 {
            assert_eq!(order.item(rank), reference.item(rank));
            assert_eq!(order.esup(rank), reference.esup(rank));
        }
    }
}
