//! Shared mining substrate: the "common basic operations" every algorithm in
//! the paper's uniform framework is built from.

pub mod apriori;
pub mod engine;
pub mod incremental;
pub mod measure;
pub mod order;
pub mod scan;
pub mod trie;

pub use apriori::{run_apriori, LevelEvaluator};
pub use engine::{
    build_engine, build_engine_with_plan, HorizontalScan, LevelSupport, ShardPartial, StatRequest,
    SupportEngine, VerticalEngine,
};
pub use incremental::{BorderTracker, IncrementalMiner};
pub use measure::{
    mine_level_wise, mine_level_wise_captured, mine_level_wise_with_plan, CandidateStats,
    ExactKernel, ExactMeasure, ExpectedSupport, FrequentnessMeasure, Judgment, MeasureEvaluator,
    NormalApprox, PoissonApprox, RetainedRecord, Screen, StatNeeds,
};
pub use order::FrequencyOrder;
pub use scan::LevelScan;
pub use trie::CandidateTrie;
