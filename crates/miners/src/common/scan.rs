//! Database-scan primitives over a candidate trie.
//!
//! [`LevelScan`] packs one level's candidates into a [`CandidateTrie`]
//! **once** and exposes every per-candidate statistic as a method over that
//! shared trie — fixing the seed's pattern where `scan_esup`,
//! `scan_esup_var` and `scan_esup_count` each rebuilt the trie from the same
//! candidate list. The historical free functions remain as thin wrappers
//! for callers that need a single statistic.
//!
//! Statistic accumulation uses the workspace's fixed summation shape:
//! [`SUM_STRIPES`] striped partial sums (stripe = transaction id mod 8) per
//! [`SUM_BLOCK_TIDS`]-transaction chunk, stripes folded in ascending stripe
//! order and chunks absorbed in ascending chunk order — on the sequential
//! path *and* across threads (`ufim_core::parallel` maps the same chunks
//! and reduces them in order). Results are therefore deterministic
//! regardless of thread count and bit-identical to the columnar backends'
//! kernels at every database size.

use super::trie::CandidateTrie;
use ufim_core::parallel::par_map;
use ufim_core::vertical::{SUM_BLOCK_TIDS, SUM_STRIPES};
use ufim_core::{Itemset, MinerStats, Transaction, UncertainDatabase};

/// Transactions per summation chunk — the workspace-wide fixed summation
/// block ([`SUM_BLOCK_TIDS`]), shared with the columnar kernels. Chunk
/// boundaries are a pure function of the database size and striped partials
/// are absorbed in chunk order on every path (sequential or parallel),
/// keeping floating-point reduction order — and thus result bits —
/// independent of the worker count *and* identical to the vertical/diffset
/// backends.
const CHUNK: usize = SUM_BLOCK_TIDS;

/// Minimum `transactions × candidates` product before a scan fans out to
/// threads (shared with the vertical backend's candidate fan-out).
const PAR_MIN_WORK: usize = ufim_core::parallel::DEFAULT_MIN_WORK;

/// Generic pass: calls `f(candidate_index, q)` for every
/// (transaction, contained candidate) pair with containment probability `q`.
pub fn scan_with<F: FnMut(u32, f64)>(
    db: &UncertainDatabase,
    trie: &CandidateTrie,
    stats: &mut MinerStats,
    mut f: F,
) {
    stats.scans += 1;
    for t in db.transactions() {
        trie.for_each_contained(t.items(), t.probs(), &mut f);
    }
}

/// One level's candidates packed into a trie, reused across every statistic
/// the level needs.
pub struct LevelScan<'a> {
    db: &'a UncertainDatabase,
    trie: CandidateTrie,
    num_candidates: usize,
}

/// Per-candidate accumulators of one scan pass. Which vectors are populated
/// depends on the [`LevelScan`] method that produced it.
#[derive(Clone, Debug, Default)]
pub struct ScanAccumulators {
    /// Expected supports, always populated.
    pub esup: Vec<f64>,
    /// Support variances (`Σ q(1−q)`), when requested.
    pub var: Option<Vec<f64>>,
    /// Nonzero-transaction counts, when requested.
    pub count: Option<Vec<u64>>,
}

impl ScanAccumulators {
    pub(crate) fn new(n: usize, want_var: bool, want_count: bool) -> Self {
        ScanAccumulators {
            esup: vec![0.0; n],
            var: want_var.then(|| vec![0.0; n]),
            count: want_count.then(|| vec![0u64; n]),
        }
    }

    /// Folds one summation chunk's striped partial into the totals: per
    /// candidate, stripes added in ascending stripe order — the exact fold
    /// the columnar kernels' accumulator performs on block exit. The
    /// horizontal shard seam calls this directly, folding shard partials in
    /// ascending block order.
    pub(crate) fn fold_in(&mut self, part: &StripedPartial) {
        for (i, a) in self.esup.iter_mut().enumerate() {
            for s in 0..SUM_STRIPES {
                *a += part.esup[i * SUM_STRIPES + s];
            }
        }
        if let (Some(a), Some(b)) = (self.var.as_mut(), part.var.as_ref()) {
            for (i, x) in a.iter_mut().enumerate() {
                for s in 0..SUM_STRIPES {
                    *x += b[i * SUM_STRIPES + s];
                }
            }
        }
        if let (Some(a), Some(b)) = (self.count.as_mut(), part.count.as_ref()) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }
}

/// One summation chunk's striped partial sums: [`SUM_STRIPES`] lanes per
/// candidate (`esup`/`var` are `candidates × 8`, indexed `i · 8 + (t mod
/// 8)`), mirroring the columnar kernels' in-block accumulator. Counts are
/// integer and need no striping. Also the horizontal backend's shard-seam
/// payload: one partial per summation block, opaque outside this module.
pub(crate) struct StripedPartial {
    esup: Vec<f64>,
    var: Option<Vec<f64>>,
    count: Option<Vec<u64>>,
}

impl StripedPartial {
    fn new(n: usize, want_var: bool, want_count: bool) -> Self {
        StripedPartial {
            esup: vec![0.0; n * SUM_STRIPES],
            var: want_var.then(|| vec![0.0; n * SUM_STRIPES]),
            count: want_count.then(|| vec![0u64; n]),
        }
    }

    fn zero(&mut self) {
        self.esup.iter_mut().for_each(|x| *x = 0.0);
        if let Some(v) = self.var.as_mut() {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
        if let Some(c) = self.count.as_mut() {
            c.iter_mut().for_each(|x| *x = 0);
        }
    }
}

impl<'a> LevelScan<'a> {
    /// Builds the trie for this level — once.
    pub fn new(db: &'a UncertainDatabase, candidates: &[Itemset]) -> Self {
        LevelScan {
            db,
            trie: CandidateTrie::build(candidates),
            num_candidates: candidates.len(),
        }
    }

    /// The shared trie (for callers composing their own passes).
    pub fn trie(&self) -> &CandidateTrie {
        &self.trie
    }

    /// One pass accumulating every requested statistic. Parallel over
    /// transaction chunks when the level is large enough.
    pub fn accumulate(
        &self,
        want_var: bool,
        want_count: bool,
        stats: &mut MinerStats,
    ) -> ScanAccumulators {
        stats.scans += 1;
        let transactions = self.db.transactions();
        let work = transactions
            .len()
            .saturating_mul(self.num_candidates.max(1));
        let mut total = ScanAccumulators::new(self.num_candidates, want_var, want_count);
        if transactions.len() <= CHUNK {
            // One summation block: accumulate its stripes and fold once.
            let mut part = StripedPartial::new(self.num_candidates, want_var, want_count);
            self.accumulate_into(transactions, &mut part);
            total.fold_in(&part);
            return total;
        }
        let chunks: Vec<&[Transaction]> = transactions.chunks(CHUNK).collect();
        if work < PAR_MIN_WORK {
            // Sequential, but per-chunk striped partials folded in chunk
            // order — the identical summation shape to the parallel path
            // below and to the columnar kernels, so the bits never depend
            // on which path ran.
            let mut part = StripedPartial::new(self.num_candidates, want_var, want_count);
            for chunk in &chunks {
                part.zero();
                self.accumulate_into(chunk, &mut part);
                total.fold_in(&part);
            }
            return total;
        }
        let partials = par_map(&chunks, |part| {
            let mut acc = StripedPartial::new(self.num_candidates, want_var, want_count);
            self.accumulate_into(part, &mut acc);
            acc
        });
        for p in &partials {
            total.fold_in(p);
        }
        total
    }

    /// Number of [`CHUNK`]-transaction summation blocks in the database
    /// (at least one, so an empty database still has a well-formed block
    /// partition).
    pub(crate) fn num_blocks(&self) -> usize {
        self.db.num_transactions().div_ceil(CHUNK).max(1)
    }

    /// The striped partials of the summation blocks with indices in
    /// `blocks` (one [`StripedPartial`] per [`CHUNK`]-transaction block,
    /// ascending) — the horizontal backend's shard-seam unit. Folding the
    /// partials of *all* blocks `0..num_blocks` in ascending order through
    /// [`ScanAccumulators::fold_in`] reproduces [`LevelScan::accumulate`]
    /// bit for bit: both paths build the identical per-block stripes and
    /// fold them in the identical order.
    pub(crate) fn block_partials(
        &self,
        blocks: std::ops::Range<usize>,
        want_var: bool,
        want_count: bool,
    ) -> Vec<StripedPartial> {
        let transactions = self.db.transactions();
        blocks
            .map(|b| {
                let lo = (b * CHUNK).min(transactions.len());
                let hi = transactions.len().min(lo + CHUNK);
                let mut part = StripedPartial::new(self.num_candidates, want_var, want_count);
                self.accumulate_into(&transactions[lo..hi], &mut part);
                part
            })
            .collect()
    }

    /// Accumulates one summation chunk's transactions into striped
    /// partials. `transactions` must start on a [`CHUNK`] boundary of the
    /// database, so the relative index's low bits equal the global
    /// transaction id's (the stripe selector).
    fn accumulate_into(&self, transactions: &[Transaction], acc: &mut StripedPartial) {
        for (r, t) in transactions.iter().enumerate() {
            let stripe = r & (SUM_STRIPES - 1);
            let (esup, var, count) = (&mut acc.esup, &mut acc.var, &mut acc.count);
            self.trie
                .for_each_contained(t.items(), t.probs(), &mut |idx, q| {
                    let i = idx as usize;
                    esup[i * SUM_STRIPES + stripe] += q;
                    if let Some(var) = var.as_mut() {
                        var[i * SUM_STRIPES + stripe] += q * (1.0 - q);
                    }
                    if let Some(count) = count.as_mut() {
                        count[i] += 1;
                    }
                });
        }
    }

    /// Gathers each candidate's nonzero containment-probability vector (in
    /// transaction order) in one pass — the exact miners' phase-B input.
    /// Parallel chunks concatenate in chunk order, preserving transaction
    /// order within each vector.
    pub fn prob_vectors(&self, stats: &mut MinerStats) -> Vec<Vec<f64>> {
        stats.scans += 1;
        let transactions = self.db.transactions();
        let gather = |part: &[Transaction]| {
            let mut vecs: Vec<Vec<f64>> = vec![Vec::new(); self.num_candidates];
            for t in part {
                self.trie
                    .for_each_contained(t.items(), t.probs(), &mut |idx, q| {
                        vecs[idx as usize].push(q);
                    });
            }
            vecs
        };
        let work = transactions
            .len()
            .saturating_mul(self.num_candidates.max(1));
        if work < PAR_MIN_WORK || transactions.len() <= CHUNK {
            return gather(transactions);
        }
        let chunks: Vec<&[Transaction]> = transactions.chunks(CHUNK).collect();
        let partials = par_map(&chunks, |part| gather(part));
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.num_candidates];
        for mut p in partials {
            for (dst, src) in out.iter_mut().zip(p.iter_mut()) {
                dst.append(src);
            }
        }
        out
    }
}

/// One pass accumulating expected supports: `esup[i] = Σ_t q_t(i)`.
pub fn scan_esup(
    db: &UncertainDatabase,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> Vec<f64> {
    LevelScan::new(db, candidates)
        .accumulate(false, false, stats)
        .esup
}

/// One pass accumulating expected supports and variances:
/// `var[i] = Σ_t q_t (1 − q_t)` (the Normal-approximation miners' needs).
pub fn scan_esup_var(
    db: &UncertainDatabase,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> (Vec<f64>, Vec<f64>) {
    let acc = LevelScan::new(db, candidates).accumulate(true, false, stats);
    (acc.esup, acc.var.expect("variance requested"))
}

/// One pass accumulating expected supports and nonzero-transaction counts —
/// the pre-pruning pass of the Chernoff-bounded exact miners.
pub fn scan_esup_count(
    db: &UncertainDatabase,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> (Vec<f64>, Vec<u64>) {
    let acc = LevelScan::new(db, candidates).accumulate(false, true, stats);
    (acc.esup, acc.count.expect("count requested"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    #[test]
    fn scans_agree_with_reference() {
        let db = paper_table1();
        let candidates = vec![
            Itemset::from_items([0]),
            Itemset::from_items([0, 2]),
            Itemset::from_items([1, 3]),
        ];
        let mut stats = MinerStats::default();
        let esup = scan_esup(&db, &candidates, &mut stats);
        let (esup2, var) = scan_esup_var(&db, &candidates, &mut stats);
        let (esup3, count) = scan_esup_count(&db, &candidates, &mut stats);
        assert_eq!(stats.scans, 3);
        for (i, c) in candidates.iter().enumerate() {
            let (want_e, want_v) = db.support_moments(c.items());
            assert!((esup[i] - want_e).abs() < 1e-12);
            assert!((esup2[i] - want_e).abs() < 1e-12);
            assert!((esup3[i] - want_e).abs() < 1e-12);
            assert!((var[i] - want_v).abs() < 1e-12);
            assert_eq!(count[i] as usize, db.itemset_prob_vector(c.items()).len());
        }
    }

    #[test]
    fn level_scan_reuses_one_trie_for_all_statistics() {
        let db = paper_table1();
        let candidates: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        let scan = LevelScan::new(&db, &candidates);
        let mut stats = MinerStats::default();
        let all = scan.accumulate(true, true, &mut stats);
        let qvecs = scan.prob_vectors(&mut stats);
        assert_eq!(stats.scans, 2);
        for (i, c) in candidates.iter().enumerate() {
            let (we, wv) = db.support_moments(c.items());
            assert!((all.esup[i] - we).abs() < 1e-12);
            assert!((all.var.as_ref().unwrap()[i] - wv).abs() < 1e-12);
            let want_vec = db.itemset_prob_vector(c.items());
            assert_eq!(all.count.as_ref().unwrap()[i] as usize, want_vec.len());
            assert_eq!(qvecs[i], want_vec);
        }
    }

    /// The fixed-shape summation: on a database larger than one summation
    /// block, the horizontal scan's esup/var are **bit-identical** to the
    /// vertical index's kernels — sequential path included (the work here
    /// stays under `PAR_MIN_WORK`'s fan-out only for the small candidate
    /// count, which is exactly the regime the old flat accumulation ran
    /// in and drifted at ulp level).
    #[test]
    fn large_scan_is_bit_identical_to_vertical_kernels() {
        use ufim_core::{Transaction, VerticalIndex};
        let transactions: Vec<Transaction> = (0..9_000)
            .map(|i| {
                let p = 0.05 + 0.9 * ((i % 193) as f64 / 192.0);
                let mut units = vec![(0u32, p)];
                if i % 3 != 0 {
                    units.push((1, 1.0 - p * 0.5));
                }
                Transaction::new(units).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 2);
        let candidates = vec![
            Itemset::from_items([0]),
            Itemset::from_items([1]),
            Itemset::from_items([0, 1]),
        ];
        let mut stats = MinerStats::default();
        let acc = LevelScan::new(&db, &candidates).accumulate(true, false, &mut stats);
        let idx = VerticalIndex::build(&db);
        for (i, c) in candidates.iter().enumerate() {
            let v = idx.prob_vector(c.items());
            let (ve, vv) = v.moments();
            assert_eq!(acc.esup[i].to_bits(), ve.to_bits(), "esup bits {i}");
            assert_eq!(
                acc.var.as_ref().unwrap()[i].to_bits(),
                vv.to_bits(),
                "var bits {i}"
            );
        }
        // And against the fused stats path (prefix × postings).
        let (e, v, _) = idx.postings(0).intersect_stats(idx.postings(1));
        assert_eq!(acc.esup[2].to_bits(), e.to_bits());
        assert_eq!(acc.var.as_ref().unwrap()[2].to_bits(), v.to_bits());
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Large enough to cross PAR_MIN_WORK and CHUNK: 3 candidates over
        // ~13k transactions.
        use ufim_core::Transaction;
        let transactions: Vec<Transaction> = (0..13_000)
            .map(|i| {
                let p = 0.1 + 0.8 * ((i % 97) as f64 / 96.0);
                Transaction::new([(0u32, p), (1, 0.5), (2, 0.9)]).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 3);
        let candidates = vec![
            Itemset::from_items([0]),
            Itemset::from_items([0, 1]),
            Itemset::from_items([0, 1, 2]),
        ];
        let scan = LevelScan::new(&db, &candidates);
        let mut stats = MinerStats::default();
        let acc = scan.accumulate(true, true, &mut stats);
        let qvecs = scan.prob_vectors(&mut stats);
        for (i, c) in candidates.iter().enumerate() {
            let (we, wv) = db.support_moments(c.items());
            assert!((acc.esup[i] - we).abs() < 1e-9, "esup {i}");
            assert!((acc.var.as_ref().unwrap()[i] - wv).abs() < 1e-9, "var {i}");
            let want = db.itemset_prob_vector(c.items());
            assert_eq!(acc.count.as_ref().unwrap()[i] as usize, want.len());
            assert_eq!(qvecs[i].len(), want.len());
            for (a, b) in qvecs[i].iter().zip(&want) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
