//! Database-scan primitives over a candidate trie.
//!
//! Each function performs exactly one pass over the database, accumulating a
//! different per-candidate statistic. Every Apriori-framework miner is a
//! composition of these passes with a judgment rule.

use super::trie::CandidateTrie;
use ufim_core::{Itemset, MinerStats, UncertainDatabase};

/// Generic pass: calls `f(candidate_index, q)` for every
/// (transaction, contained candidate) pair with containment probability `q`.
pub fn scan_with<F: FnMut(u32, f64)>(
    db: &UncertainDatabase,
    trie: &CandidateTrie,
    stats: &mut MinerStats,
    mut f: F,
) {
    stats.scans += 1;
    for t in db.transactions() {
        trie.for_each_contained(t.items(), t.probs(), &mut f);
    }
}

/// One pass accumulating expected supports: `esup[i] = Σ_t q_t(i)`.
pub fn scan_esup(
    db: &UncertainDatabase,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> Vec<f64> {
    let trie = CandidateTrie::build(candidates);
    let mut esup = vec![0.0f64; candidates.len()];
    scan_with(db, &trie, stats, |idx, q| esup[idx as usize] += q);
    esup
}

/// One pass accumulating expected supports and variances:
/// `var[i] = Σ_t q_t (1 − q_t)` (the Normal-approximation miners' needs).
pub fn scan_esup_var(
    db: &UncertainDatabase,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> (Vec<f64>, Vec<f64>) {
    let trie = CandidateTrie::build(candidates);
    let mut esup = vec![0.0f64; candidates.len()];
    let mut var = vec![0.0f64; candidates.len()];
    scan_with(db, &trie, stats, |idx, q| {
        esup[idx as usize] += q;
        var[idx as usize] += q * (1.0 - q);
    });
    (esup, var)
}

/// One pass accumulating expected supports and nonzero-transaction counts —
/// the pre-pruning pass of the Chernoff-bounded exact miners.
pub fn scan_esup_count(
    db: &UncertainDatabase,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> (Vec<f64>, Vec<u64>) {
    let trie = CandidateTrie::build(candidates);
    let mut esup = vec![0.0f64; candidates.len()];
    let mut count = vec![0u64; candidates.len()];
    scan_with(db, &trie, stats, |idx, q| {
        esup[idx as usize] += q;
        count[idx as usize] += 1;
    });
    (esup, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    #[test]
    fn scans_agree_with_reference() {
        let db = paper_table1();
        let candidates = vec![
            Itemset::from_items([0]),
            Itemset::from_items([0, 2]),
            Itemset::from_items([1, 3]),
        ];
        let mut stats = MinerStats::default();
        let esup = scan_esup(&db, &candidates, &mut stats);
        let (esup2, var) = scan_esup_var(&db, &candidates, &mut stats);
        let (esup3, count) = scan_esup_count(&db, &candidates, &mut stats);
        assert_eq!(stats.scans, 3);
        for (i, c) in candidates.iter().enumerate() {
            let (want_e, want_v) = db.support_moments(c.items());
            assert!((esup[i] - want_e).abs() < 1e-12);
            assert!((esup2[i] - want_e).abs() < 1e-12);
            assert!((esup3[i] - want_e).abs() < 1e-12);
            assert!((var[i] - want_v).abs() < 1e-12);
            assert_eq!(count[i] as usize, db.itemset_prob_vector(c.items()).len());
        }
    }
}
