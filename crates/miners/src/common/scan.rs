//! Database-scan primitives over a candidate trie.
//!
//! [`LevelScan`] packs one level's candidates into a [`CandidateTrie`]
//! **once** and exposes every per-candidate statistic as a method over that
//! shared trie — fixing the seed's pattern where `scan_esup`,
//! `scan_esup_var` and `scan_esup_count` each rebuilt the trie from the same
//! candidate list. The historical free functions remain as thin wrappers
//! for callers that need a single statistic.
//!
//! Large scans are parallelized by splitting the transaction list into
//! fixed-size chunks mapped across threads (`ufim_core::parallel`); partial
//! accumulators are reduced in chunk order, so results are deterministic
//! for a given database regardless of thread count.

use super::trie::CandidateTrie;
use ufim_core::parallel::par_map;
use ufim_core::{Itemset, MinerStats, Transaction, UncertainDatabase};

/// Transactions per parallel chunk. Chunk boundaries are a pure function of
/// the database size, keeping floating-point reduction order — and thus
/// results — independent of the worker count.
const CHUNK: usize = 4096;

/// Minimum `transactions × candidates` product before a scan fans out to
/// threads (shared with the vertical backend's candidate fan-out).
const PAR_MIN_WORK: usize = ufim_core::parallel::DEFAULT_MIN_WORK;

/// Generic pass: calls `f(candidate_index, q)` for every
/// (transaction, contained candidate) pair with containment probability `q`.
pub fn scan_with<F: FnMut(u32, f64)>(
    db: &UncertainDatabase,
    trie: &CandidateTrie,
    stats: &mut MinerStats,
    mut f: F,
) {
    stats.scans += 1;
    for t in db.transactions() {
        trie.for_each_contained(t.items(), t.probs(), &mut f);
    }
}

/// One level's candidates packed into a trie, reused across every statistic
/// the level needs.
pub struct LevelScan<'a> {
    db: &'a UncertainDatabase,
    trie: CandidateTrie,
    num_candidates: usize,
}

/// Per-candidate accumulators of one scan pass. Which vectors are populated
/// depends on the [`LevelScan`] method that produced it.
#[derive(Clone, Debug, Default)]
pub struct ScanAccumulators {
    /// Expected supports, always populated.
    pub esup: Vec<f64>,
    /// Support variances (`Σ q(1−q)`), when requested.
    pub var: Option<Vec<f64>>,
    /// Nonzero-transaction counts, when requested.
    pub count: Option<Vec<u64>>,
}

impl ScanAccumulators {
    fn new(n: usize, want_var: bool, want_count: bool) -> Self {
        ScanAccumulators {
            esup: vec![0.0; n],
            var: want_var.then(|| vec![0.0; n]),
            count: want_count.then(|| vec![0u64; n]),
        }
    }

    fn absorb(&mut self, other: &ScanAccumulators) {
        for (a, b) in self.esup.iter_mut().zip(&other.esup) {
            *a += b;
        }
        if let (Some(a), Some(b)) = (self.var.as_mut(), other.var.as_ref()) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        if let (Some(a), Some(b)) = (self.count.as_mut(), other.count.as_ref()) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }
}

impl<'a> LevelScan<'a> {
    /// Builds the trie for this level — once.
    pub fn new(db: &'a UncertainDatabase, candidates: &[Itemset]) -> Self {
        LevelScan {
            db,
            trie: CandidateTrie::build(candidates),
            num_candidates: candidates.len(),
        }
    }

    /// The shared trie (for callers composing their own passes).
    pub fn trie(&self) -> &CandidateTrie {
        &self.trie
    }

    /// One pass accumulating every requested statistic. Parallel over
    /// transaction chunks when the level is large enough.
    pub fn accumulate(
        &self,
        want_var: bool,
        want_count: bool,
        stats: &mut MinerStats,
    ) -> ScanAccumulators {
        stats.scans += 1;
        let transactions = self.db.transactions();
        let work = transactions
            .len()
            .saturating_mul(self.num_candidates.max(1));
        if work < PAR_MIN_WORK || transactions.len() <= CHUNK {
            let mut acc = ScanAccumulators::new(self.num_candidates, want_var, want_count);
            self.accumulate_into(transactions, &mut acc);
            return acc;
        }
        let chunks: Vec<&[Transaction]> = transactions.chunks(CHUNK).collect();
        let partials = par_map(&chunks, |part| {
            let mut acc = ScanAccumulators::new(self.num_candidates, want_var, want_count);
            self.accumulate_into(part, &mut acc);
            acc
        });
        let mut total = ScanAccumulators::new(self.num_candidates, want_var, want_count);
        for p in &partials {
            total.absorb(p);
        }
        total
    }

    fn accumulate_into(&self, transactions: &[Transaction], acc: &mut ScanAccumulators) {
        for t in transactions {
            self.trie
                .for_each_contained(t.items(), t.probs(), &mut |idx, q| {
                    let i = idx as usize;
                    acc.esup[i] += q;
                    if let Some(var) = acc.var.as_mut() {
                        var[i] += q * (1.0 - q);
                    }
                    if let Some(count) = acc.count.as_mut() {
                        count[i] += 1;
                    }
                });
        }
    }

    /// Gathers each candidate's nonzero containment-probability vector (in
    /// transaction order) in one pass — the exact miners' phase-B input.
    /// Parallel chunks concatenate in chunk order, preserving transaction
    /// order within each vector.
    pub fn prob_vectors(&self, stats: &mut MinerStats) -> Vec<Vec<f64>> {
        stats.scans += 1;
        let transactions = self.db.transactions();
        let gather = |part: &[Transaction]| {
            let mut vecs: Vec<Vec<f64>> = vec![Vec::new(); self.num_candidates];
            for t in part {
                self.trie
                    .for_each_contained(t.items(), t.probs(), &mut |idx, q| {
                        vecs[idx as usize].push(q);
                    });
            }
            vecs
        };
        let work = transactions
            .len()
            .saturating_mul(self.num_candidates.max(1));
        if work < PAR_MIN_WORK || transactions.len() <= CHUNK {
            return gather(transactions);
        }
        let chunks: Vec<&[Transaction]> = transactions.chunks(CHUNK).collect();
        let partials = par_map(&chunks, |part| gather(part));
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.num_candidates];
        for mut p in partials {
            for (dst, src) in out.iter_mut().zip(p.iter_mut()) {
                dst.append(src);
            }
        }
        out
    }
}

/// One pass accumulating expected supports: `esup[i] = Σ_t q_t(i)`.
pub fn scan_esup(
    db: &UncertainDatabase,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> Vec<f64> {
    LevelScan::new(db, candidates)
        .accumulate(false, false, stats)
        .esup
}

/// One pass accumulating expected supports and variances:
/// `var[i] = Σ_t q_t (1 − q_t)` (the Normal-approximation miners' needs).
pub fn scan_esup_var(
    db: &UncertainDatabase,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> (Vec<f64>, Vec<f64>) {
    let acc = LevelScan::new(db, candidates).accumulate(true, false, stats);
    (acc.esup, acc.var.expect("variance requested"))
}

/// One pass accumulating expected supports and nonzero-transaction counts —
/// the pre-pruning pass of the Chernoff-bounded exact miners.
pub fn scan_esup_count(
    db: &UncertainDatabase,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> (Vec<f64>, Vec<u64>) {
    let acc = LevelScan::new(db, candidates).accumulate(false, true, stats);
    (acc.esup, acc.count.expect("count requested"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    #[test]
    fn scans_agree_with_reference() {
        let db = paper_table1();
        let candidates = vec![
            Itemset::from_items([0]),
            Itemset::from_items([0, 2]),
            Itemset::from_items([1, 3]),
        ];
        let mut stats = MinerStats::default();
        let esup = scan_esup(&db, &candidates, &mut stats);
        let (esup2, var) = scan_esup_var(&db, &candidates, &mut stats);
        let (esup3, count) = scan_esup_count(&db, &candidates, &mut stats);
        assert_eq!(stats.scans, 3);
        for (i, c) in candidates.iter().enumerate() {
            let (want_e, want_v) = db.support_moments(c.items());
            assert!((esup[i] - want_e).abs() < 1e-12);
            assert!((esup2[i] - want_e).abs() < 1e-12);
            assert!((esup3[i] - want_e).abs() < 1e-12);
            assert!((var[i] - want_v).abs() < 1e-12);
            assert_eq!(count[i] as usize, db.itemset_prob_vector(c.items()).len());
        }
    }

    #[test]
    fn level_scan_reuses_one_trie_for_all_statistics() {
        let db = paper_table1();
        let candidates: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        let scan = LevelScan::new(&db, &candidates);
        let mut stats = MinerStats::default();
        let all = scan.accumulate(true, true, &mut stats);
        let qvecs = scan.prob_vectors(&mut stats);
        assert_eq!(stats.scans, 2);
        for (i, c) in candidates.iter().enumerate() {
            let (we, wv) = db.support_moments(c.items());
            assert!((all.esup[i] - we).abs() < 1e-12);
            assert!((all.var.as_ref().unwrap()[i] - wv).abs() < 1e-12);
            let want_vec = db.itemset_prob_vector(c.items());
            assert_eq!(all.count.as_ref().unwrap()[i] as usize, want_vec.len());
            assert_eq!(qvecs[i], want_vec);
        }
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Large enough to cross PAR_MIN_WORK and CHUNK: 3 candidates over
        // ~13k transactions.
        use ufim_core::Transaction;
        let transactions: Vec<Transaction> = (0..13_000)
            .map(|i| {
                let p = 0.1 + 0.8 * ((i % 97) as f64 / 96.0);
                Transaction::new([(0u32, p), (1, 0.5), (2, 0.9)]).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 3);
        let candidates = vec![
            Itemset::from_items([0]),
            Itemset::from_items([0, 1]),
            Itemset::from_items([0, 1, 2]),
        ];
        let scan = LevelScan::new(&db, &candidates);
        let mut stats = MinerStats::default();
        let acc = scan.accumulate(true, true, &mut stats);
        let qvecs = scan.prob_vectors(&mut stats);
        for (i, c) in candidates.iter().enumerate() {
            let (we, wv) = db.support_moments(c.items());
            assert!((acc.esup[i] - we).abs() < 1e-9, "esup {i}");
            assert!((acc.var.as_ref().unwrap()[i] - wv).abs() < 1e-9, "var {i}");
            let want = db.itemset_prob_vector(c.items());
            assert_eq!(acc.count.as_ref().unwrap()[i] as usize, want.len());
            assert_eq!(qvecs[i].len(), want.len());
            for (a, b) in qvecs[i].iter().zip(&want) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
