//! Candidate prefix-trie: the counting structure of every
//! Apriori-framework miner.
//!
//! A level's candidate k-itemsets (sorted item lists) are packed into a
//! trie; one pass over each transaction then enumerates *all candidates
//! contained in the transaction* together with their containment
//! probability `q = Π p`, in a single downward walk. This replaces the
//! classical hash-tree of Agrawal–Srikant with the same asymptotics and a
//! flatter memory layout.
//!
//! The walk is adaptive: at high-fanout nodes it iterates the transaction
//! and binary-searches the children; at low-fanout nodes it iterates the
//! children and binary-searches the transaction — keeping level-1 scans over
//! 40k-item vocabularies and deep scans over 40-item candidates both fast.

use ufim_core::{ItemId, Itemset};

/// One trie node. Children are stored as a sorted `(item, node_index)` list
/// in a shared arena.
struct Node {
    /// Sorted by item id.
    children: Vec<(ItemId, u32)>,
    /// Index of the candidate terminating here, if any.
    candidate: Option<u32>,
}

/// A prefix trie over one level's candidate itemsets.
pub struct CandidateTrie {
    nodes: Vec<Node>,
    num_candidates: usize,
}

impl CandidateTrie {
    /// Builds the trie; `candidates[i]` keeps index `i` in every callback.
    pub fn build(candidates: &[Itemset]) -> Self {
        let mut trie = CandidateTrie {
            nodes: vec![Node {
                children: Vec::new(),
                candidate: None,
            }],
            num_candidates: candidates.len(),
        };
        for (idx, cand) in candidates.iter().enumerate() {
            trie.insert(cand.items(), idx as u32);
        }
        trie
    }

    fn insert(&mut self, items: &[ItemId], idx: u32) {
        let mut node = 0usize;
        for &item in items {
            let pos = self.nodes[node]
                .children
                .binary_search_by_key(&item, |&(i, _)| i);
            node = match pos {
                Ok(p) => self.nodes[node].children[p].1 as usize,
                Err(p) => {
                    let new_idx = self.nodes.len() as u32;
                    self.nodes.push(Node {
                        children: Vec::new(),
                        candidate: None,
                    });
                    self.nodes[node].children.insert(p, (item, new_idx));
                    new_idx as usize
                }
            };
        }
        debug_assert!(
            self.nodes[node].candidate.is_none(),
            "duplicate candidate {items:?}"
        );
        self.nodes[node].candidate = Some(idx);
    }

    /// Number of candidates in the trie.
    pub fn num_candidates(&self) -> usize {
        self.num_candidates
    }

    /// Number of trie nodes (including the root) — a memory diagnostic.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Calls `f(candidate_index, q)` for every candidate contained in the
    /// transaction, where `q` is the product of the members' probabilities.
    ///
    /// `items`/`probs` are the transaction's parallel sorted arrays.
    pub fn for_each_contained<F: FnMut(u32, f64)>(
        &self,
        items: &[ItemId],
        probs: &[f64],
        f: &mut F,
    ) {
        self.walk(0, items, probs, 1.0, f);
    }

    fn walk<F: FnMut(u32, f64)>(
        &self,
        node: usize,
        items: &[ItemId],
        probs: &[f64],
        acc: f64,
        f: &mut F,
    ) {
        let n = &self.nodes[node];
        if let Some(idx) = n.candidate {
            f(idx, acc);
        }
        if n.children.is_empty() || items.is_empty() {
            return;
        }
        if n.children.len() <= items.len() {
            // Few children: binary-search each child item in the transaction.
            for &(item, child) in &n.children {
                if let Ok(j) = items.binary_search(&item) {
                    self.walk(
                        child as usize,
                        &items[j + 1..],
                        &probs[j + 1..],
                        acc * probs[j],
                        f,
                    );
                }
            }
        } else {
            // Few transaction items: binary-search each item in the children.
            for (j, &item) in items.iter().enumerate() {
                if let Ok(p) = n.children.binary_search_by_key(&item, |&(i, _)| i) {
                    let child = n.children[p].1;
                    self.walk(
                        child as usize,
                        &items[j + 1..],
                        &probs[j + 1..],
                        acc * probs[j],
                        f,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;
    use ufim_core::UncertainDatabase;

    fn esups_via_trie(db: &UncertainDatabase, candidates: &[Itemset]) -> Vec<f64> {
        let trie = CandidateTrie::build(candidates);
        let mut esup = vec![0.0; candidates.len()];
        for t in db.transactions() {
            trie.for_each_contained(t.items(), t.probs(), &mut |idx, q| {
                esup[idx as usize] += q;
            });
        }
        esup
    }

    #[test]
    fn singleton_counting_matches_reference() {
        let db = paper_table1();
        let candidates: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        let esup = esups_via_trie(&db, &candidates);
        let want = db.item_expected_supports();
        for (a, b) in esup.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pair_counting_matches_reference() {
        let db = paper_table1();
        let mut candidates = Vec::new();
        for a in 0..6u32 {
            for b in a + 1..6u32 {
                candidates.push(Itemset::from_items([a, b]));
            }
        }
        let esup = esups_via_trie(&db, &candidates);
        for (cand, got) in candidates.iter().zip(&esup) {
            let want = db.expected_support(cand.items());
            assert!(
                (got - want).abs() < 1e-12,
                "{cand}: trie {got} vs reference {want}"
            );
        }
    }

    #[test]
    fn mixed_length_candidates() {
        let db = paper_table1();
        let candidates = vec![
            Itemset::from_items([0]),
            Itemset::from_items([0, 2]),
            Itemset::from_items([0, 2, 4]),
            Itemset::from_items([1, 3, 5]),
        ];
        let esup = esups_via_trie(&db, &candidates);
        for (cand, got) in candidates.iter().zip(&esup) {
            let want = db.expected_support(cand.items());
            assert!((got - want).abs() < 1e-12, "{cand}");
        }
    }

    #[test]
    fn candidate_absent_from_all_transactions() {
        let db = paper_table1();
        // {B, E}: B∈{T1,T2,T4}, E∈{T2,T3}; both only in T2.
        let candidates = vec![Itemset::from_items([1, 4]), Itemset::from_items([3, 4])];
        let esup = esups_via_trie(&db, &candidates);
        assert!((esup[0] - 0.7 * 0.5).abs() < 1e-12);
        assert_eq!(esup[1], 0.0); // D and E never co-occur
    }

    #[test]
    fn empty_trie_and_empty_transaction() {
        let trie = CandidateTrie::build(&[]);
        assert_eq!(trie.num_candidates(), 0);
        let mut called = false;
        trie.for_each_contained(&[1, 2], &[0.5, 0.5], &mut |_, _| called = true);
        assert!(!called);

        let trie = CandidateTrie::build(&[Itemset::singleton(1)]);
        trie.for_each_contained(&[], &[], &mut |_, _| called = true);
        assert!(!called);
        assert_eq!(trie.num_nodes(), 2);
    }

    #[test]
    fn per_transaction_probability_is_product() {
        let db = paper_table1();
        let cand = vec![Itemset::from_items([0, 2])]; // {A, C}
        let trie = CandidateTrie::build(&cand);
        let mut qs = Vec::new();
        for t in db.transactions() {
            trie.for_each_contained(t.items(), t.probs(), &mut |_, q| qs.push(q));
        }
        // A,C co-occur in T1 (0.8·0.9), T2 (0.8·0.9), T3 (0.5·0.8).
        assert_eq!(qs.len(), 3);
        assert!((qs[0] - 0.72).abs() < 1e-12);
        assert!((qs[1] - 0.72).abs() < 1e-12);
        assert!((qs[2] - 0.40).abs() < 1e-12);
    }
}
