//! The pluggable support-computation layer under the Apriori-framework
//! miners.
//!
//! Every Apriori-framework miner (UApriori, PDUApriori, NDUApriori, and the
//! exact DP/DC family) consumes per-candidate support statistics and — for
//! the exact miners — the candidates' nonzero containment-probability
//! vectors. [`SupportEngine`] abstracts *how* those are computed, so the
//! algorithms above the seam stay byte-identical while the data layout and
//! execution strategy below it swap freely:
//!
//! * [`HorizontalScan`] — the paper's layout: one trie-guided pass over the
//!   transaction list per level ([`LevelScan`]), parallelized over
//!   transaction chunks. The reference backend.
//! * [`VerticalEngine`] — columnar tid-lists ([`VerticalIndex`]): one
//!   database pass builds per-item postings; afterwards a `k`-candidate's
//!   vector is the merge-intersection of its `(k−1)`-prefix's **memoized**
//!   vector with the last item's postings (U-Eclat), parallelized over
//!   candidates. `esup`, variance, count and the exact miners' DP/DC input
//!   are all byproducts of that single intersection.
//! * [`DiffsetEngine`] — the dEclat analog of the vertical backend,
//!   optimized for **memory** rather than time: the prefix memo stores
//!   each frequent itemset as a [`DiffVector`] *delta* against its own
//!   prefix (only the tids the extension dropped; survivors gather the
//!   appended item's postings along the prefix chain), with the node's
//!   `(esup, var, count)` cached so `evaluate` under pushdown never
//!   materializes a vector. Each memo node adaptively keeps whichever of
//!   tidset/diffset is smaller — exactly dEclat's per-node choice — so on
//!   dense data, where almost every tid survives every extension, the memo
//!   shrinks from O(level width × N) to the sum of the (small) deltas.
//!
//! All backends produce **bit-identical** results: per-transaction
//! containment probabilities are multiplied in ascending item order and
//! summed in ascending transaction order in every layout, and every
//! statistics accumulation — the columnar kernels' and [`LevelScan`]'s
//! chunk reduction, sequential or parallel — uses the same fixed summation
//! shape (`ufim_core::vertical::SUM_STRIPES` striped partial sums per
//! `ufim_core::vertical::SUM_BLOCK_TIDS` = 4096-transaction block, a
//! transaction landing in stripe `tid % 8`, stripes folded in ascending
//! stripe order and blocks in ascending block order). Results are
//! therefore deterministic for a given database regardless of
//! `UFIM_THREADS` *and* identical across backends at every database size;
//! the cross-backend proptest suite and the large-database scan test pin
//! this bit for bit.
//!
//! Select a backend through [`EngineKind`] (on `MiningParams` or the miner
//! builders) and instantiate per run with [`build_engine`] (or
//! [`build_engine_with_plan`] to pick a shard width). Future backends
//! (async, out-of-core, approximate-sketch) implement the same trait.
//!
//! ## The shard-merge seam
//!
//! Every statistic above is a sum over transaction ids, so any tid-range
//! partition's partial statistics merge associatively and exactly. Each
//! backend therefore also exposes the level evaluation in two halves —
//! [`SupportEngine::evaluate_shard`] producing an opaque [`ShardPartial`]
//! per fixed-width tid-range shard ([`ShardPlan`]), and
//! [`SupportEngine::merge_shards`] folding a full set of partials in
//! ascending shard order into the same [`LevelSupport`] that `evaluate`
//! returns. On databases wide enough for the default plan to yield more
//! than one shard, the columnar backends route `evaluate` itself through
//! the seam: the vertical engine runs `par_map` across candidates ×
//! nested [`Scope::spawn`] tasks across a heavy candidate's shards,
//! fragment partials merged through an [`OrderedSink`] in shard order;
//! the diffset engine runs `par_map` across prefix groups, its delta
//! chains split per (itemset, shard) cell so the memo keeps its memory
//! edge under sharding. Determinism is structural, not
//! incidental: the shard width is a pure function of the database size,
//! every fragment keeps its global chunk keys so the streamed moment
//! accumulator ([`ProbVector::fragments_moments`]) folds the identical
//! blocks in the identical order as the unsharded kernels, and zone-map
//! prune decisions ([`VerticalIndex::zone`]) read only the index — so
//! records *and* counters are bit-identical for every `UFIM_THREADS` and
//! every shard width.
//!
//! [`Scope::spawn`]: ufim_core::parallel::Scope::spawn
//! [`OrderedSink`]: ufim_core::parallel::OrderedSink
//!
//! ## Scratch spaces
//!
//! Both columnar backends run their per-candidate kernels through the
//! zero-allocation `*_into` variants ([`ProbVector::intersect_into`],
//! [`ProbVector::diff_extend_into`]), each worker loop on the persistent
//! work-stealing pool owning one reusable [`ScratchSpace`]
//! (`par_map_min_len_with` builds one state per worker loop — at most the
//! thread budget — whichever pool threads end up running those loops; the
//! sequential path builds exactly one). Steady-state evaluation
//! therefore allocates nothing per candidate: a candidate only pays an
//! exactly-sized export when it survives pruning and enters the memo.
//! Scratch never affects results — the kernels are bit-identical to their
//! allocating twins, which the core test suite pins.

use super::scan::{LevelScan, ScanAccumulators, StripedPartial};
use ufim_core::parallel::{par_map_min_len, par_map_min_len_with, scope, OrderedSink};
use ufim_core::vertical::{BOUND_SLACK, SUM_BLOCK_TIDS};
use ufim_core::{
    BlockMoments, DiffVector, EngineKind, FrequentItemset, FxHashMap, ItemId, Itemset, MinerStats,
    ProbVector, ScratchSpace, ShardPlan, StepProbe, UncertainDatabase, VerticalIndex, WindowStep,
};

/// Which optional statistics [`SupportEngine::evaluate`] must produce, plus
/// optional *memoization pushdown* predicates.
///
/// The pushdown thresholds never change any reported statistic — they tell
/// a memoizing engine which candidates provably cannot be frequent (esup or
/// nonzero count below the miner's own cutoff) so their intersection state
/// need not be retained. On candidate-heavy final levels, where nothing
/// survives, this eliminates the memo entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatRequest {
    /// Also accumulate the support variance `Σ q(1−q)` per candidate.
    pub variance: bool,
    /// Also count transactions with nonzero containment per candidate.
    pub count: bool,
    /// Candidates with `esup` below this can never be frequent.
    pub min_esup: Option<f64>,
    /// Candidates with fewer nonzero transactions can never be frequent.
    pub min_count: Option<u64>,
}

impl StatRequest {
    /// Expected support only.
    pub const ESUP: StatRequest = StatRequest {
        variance: false,
        count: false,
        min_esup: None,
        min_count: None,
    };
    /// Expected support + variance (Normal-approximation miners).
    pub const WITH_VARIANCE: StatRequest = StatRequest {
        variance: true,
        count: false,
        min_esup: None,
        min_count: None,
    };
    /// Expected support + nonzero count (exact miners' pruning phase).
    pub const WITH_COUNT: StatRequest = StatRequest {
        variance: false,
        count: true,
        min_esup: None,
        min_count: None,
    };

    /// Adds an esup memoization-pushdown threshold.
    pub fn with_min_esup(mut self, threshold: f64) -> Self {
        self.min_esup = Some(threshold);
        self
    }

    /// Adds a nonzero-count memoization-pushdown threshold.
    pub fn with_min_count(mut self, threshold: u64) -> Self {
        self.min_count = Some(threshold);
        self
    }
}

/// Per-candidate support statistics for one level.
#[derive(Clone, Debug, Default)]
pub struct LevelSupport {
    /// Expected support per candidate.
    pub esup: Vec<f64>,
    /// Support variance per candidate (iff requested).
    pub variance: Option<Vec<f64>>,
    /// Nonzero-transaction count per candidate (iff requested).
    pub count: Option<Vec<u64>>,
}

/// One backend's partial evaluation of a candidate level over a single
/// tid-range shard — the unit the shard-merge seam moves between
/// [`SupportEngine::evaluate_shard`] and [`SupportEngine::merge_shards`].
///
/// The payload is backend-specific and opaque: the columnar backends carry
/// per-candidate prob-vector fragments, the horizontal backend striped
/// per-summation-block partial sums, and unsharded backends the degenerate
/// single-shard partial (a whole-level result). Partials from different
/// backends or different runs must not be mixed.
pub struct ShardPartial {
    /// Index of the tid-range shard this partial covers.
    pub shard: usize,
    pub(crate) payload: ShardPayload,
}

/// Backend-specific shard-partial payloads (see [`ShardPartial`]).
pub(crate) enum ShardPayload {
    /// Per-candidate prob-vector fragments of this shard's tid range, in
    /// candidate order (`None` = skipped: a zone map proved the fragment
    /// empty, which contributes exactly nothing to the merged moments).
    Fragments(Vec<Option<ProbVector>>),
    /// Striped partial sums of this shard's summation blocks, in ascending
    /// block order (the horizontal backend).
    Blocks(Vec<StripedPartial>),
    /// The degenerate single-shard partial of an unsharded backend: the
    /// whole level, already evaluated.
    Level(LevelSupport),
}

/// Unwraps the degenerate partial set of an unsharded backend: exactly one
/// whole-level payload.
fn merge_single_level(partials: Vec<ShardPartial>) -> LevelSupport {
    let mut it = partials.into_iter();
    match (it.next(), it.next()) {
        (
            Some(ShardPartial {
                payload: ShardPayload::Level(level),
                ..
            }),
            None,
        ) => level,
        _ => panic!("unsharded backend expects exactly one whole-level partial"),
    }
}

/// A support-computation backend, instantiated once per mining run.
///
/// The level-wise protocol is: `evaluate` once per level with all the
/// level's candidates, optionally `prob_vectors` for a subset that needs
/// exact distributions, then `finish_level` with the survivors so memoizing
/// backends can retain exactly the state the next level will extend.
pub trait SupportEngine {
    /// Backend name (matches [`EngineKind::name`]).
    fn name(&self) -> &'static str;

    /// Computes all requested statistics for every candidate in one logical
    /// pass.
    fn evaluate(
        &mut self,
        candidates: &[Itemset],
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport;

    /// The nonzero containment-probability vectors (transaction order) of
    /// `candidates` — the exact DP/DC kernels' input. Candidates must come
    /// from the current level's `evaluate` call (memoizing backends serve
    /// them from memo; the horizontal backend re-gathers in one scan).
    fn prob_vectors(&mut self, candidates: &[Itemset], stats: &mut MinerStats) -> Vec<Vec<f64>>;

    /// Declares which itemsets of the current level are frequent. Memoizing
    /// backends keep exactly these as prefixes for the next level.
    fn finish_level(&mut self, frequent: &[FrequentItemset]);

    /// Peak bytes of memoized prefix state held so far (0 for backends
    /// that memoize nothing, like the horizontal scan, whose per-level
    /// trie is transient). The memory-accounting axis of the backend
    /// comparison; the allocator-level `ufim_metrics::alloc::measure_peak`
    /// number additionally includes transient buffers.
    fn peak_memo_bytes(&self) -> u64 {
        0
    }

    /// The tid-range shard partition this backend evaluates under — a pure
    /// function of the database, never of thread count. Unsharded backends
    /// report the default plan (one shard spans everything they hold).
    fn shard_plan(&self) -> ShardPlan {
        ShardPlan::default()
    }

    /// How many shards [`SupportEngine::evaluate_shard`] accepts (1 for
    /// unsharded backends).
    fn num_shards(&self) -> usize {
        1
    }

    /// Evaluates the candidates over one shard's tid range, returning an
    /// opaque partial. Evaluating every shard `0..num_shards` and folding
    /// the partials through [`SupportEngine::merge_shards`] is
    /// bit-identical to one [`SupportEngine::evaluate`] call. The default
    /// (unsharded) implementation evaluates the whole level as shard 0's
    /// partial.
    fn evaluate_shard(
        &mut self,
        candidates: &[Itemset],
        shard: usize,
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> ShardPartial {
        debug_assert_eq!(shard, 0, "unsharded backend has exactly one shard");
        let level = self.evaluate(candidates, want, stats);
        ShardPartial {
            shard,
            payload: ShardPayload::Level(level),
        }
    }

    /// Merges a complete set of this backend's shard partials (one per
    /// shard; any order — partials are folded in ascending shard index)
    /// into the level's statistics: the associative, exact merge of
    /// `(esup, var, count, prob-vector)` partials. Memoizing backends also
    /// adopt merged survivors as next-level prefixes, exactly like
    /// `evaluate` would.
    fn merge_shards(
        &mut self,
        candidates: &[Itemset],
        partials: Vec<ShardPartial>,
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport {
        let _ = (candidates, want, stats);
        merge_single_level(partials)
    }

    /// Applies one sliding-window step to the backend's own copy of the
    /// data (postings point updates + zone-map refresh) and brings any
    /// retained memo state along: the columnar backends switch into
    /// *streaming* mode on the first step and thereafter keep their
    /// prefix memos across refreshes, point-patching each retained node
    /// — touched vector chunks rewritten in place, cached `(esup, var,
    /// count)` moments re-folded from retained per-4096-tid-block partial
    /// sums — to exactly the state a freshly built engine would
    /// recompute. Nodes the step moved too much (or that fell out of the
    /// last refresh's frequent stream) are evicted instead; evictions are
    /// safe because every backend falls back to a bit-identical cold fold
    /// for prefixes absent from its memo. After a `true` return,
    /// evaluations are bit-identical to a rebuilt engine's.
    ///
    /// `probe` must be [`StepProbe::new`] over the same `step` (the caller
    /// builds it once per step and shares it with the border tracker); the
    /// patch walks use it to detect touched nodes and read new containment
    /// probabilities without re-walking transactions. `stats` receives
    /// [`MinerStats::memo_patched`] / [`MinerStats::memo_rebuilt`] counts
    /// for the patch walk.
    ///
    /// Returns `false` when the backend holds no mutable copy of the data
    /// (the horizontal scan borrows the caller's database) — the caller
    /// must then rebuild the engine over the new window snapshot.
    fn apply_window_step(
        &mut self,
        step: &WindowStep,
        probe: &StepProbe,
        stats: &mut MinerStats,
    ) -> bool {
        let _ = (step, probe, stats);
        false
    }
}

/// Builds the backend selected by `kind` over `db`, under the default
/// shard plan (a pure function of the database size: sharding engages only
/// when the database spans more than one default-width shard).
pub fn build_engine(kind: EngineKind, db: &UncertainDatabase) -> Box<dyn SupportEngine + '_> {
    build_engine_with_plan(kind, db, ShardPlan::for_transactions(db.num_transactions()))
}

/// Builds the backend selected by `kind` over `db` with an explicit
/// tid-range shard plan. A plan yielding one shard reproduces the
/// unsharded engines exactly; any plan yields bit-identical results.
pub fn build_engine_with_plan(
    kind: EngineKind,
    db: &UncertainDatabase,
    plan: ShardPlan,
) -> Box<dyn SupportEngine + '_> {
    match kind {
        EngineKind::Horizontal => Box::new(HorizontalScan::with_plan(db, plan)),
        EngineKind::Vertical => Box::new(VerticalEngine::with_plan(db, plan)),
        EngineKind::Diffset => Box::new(DiffsetEngine::with_plan(db, plan)),
    }
}

/// The reference backend: trie-guided horizontal scans (see [`LevelScan`]).
pub struct HorizontalScan<'a> {
    db: &'a UncertainDatabase,
    /// Shard partition for the seam, normalized to whole summation blocks
    /// (striped partials are exact only at the fixed 4096-tid block
    /// boundaries). `evaluate` itself is block-parallel already and does
    /// not route through the seam.
    plan: ShardPlan,
    /// The current level's scan state, so `prob_vectors` on the same
    /// candidate list reuses the already-built trie.
    current: Option<(Vec<Itemset>, LevelScan<'a>)>,
}

impl<'a> HorizontalScan<'a> {
    /// New backend over `db` (default shard plan).
    pub fn new(db: &'a UncertainDatabase) -> Self {
        Self::with_plan(db, ShardPlan::for_transactions(db.num_transactions()))
    }

    /// New backend over `db` with an explicit shard plan (rounded up to
    /// whole summation blocks — see the `plan` field).
    pub fn with_plan(db: &'a UncertainDatabase, plan: ShardPlan) -> Self {
        HorizontalScan {
            db,
            plan: plan.normalized_to_blocks(),
            current: None,
        }
    }

    fn scan_for(&mut self, candidates: &[Itemset]) -> &LevelScan<'a> {
        // The cache key is a full clone of the candidate list: O(level) per
        // level, small next to the scan it guards, and immune to the
        // address-reuse hazards a pointer-based key would have for direct
        // trait users who skip `finish_level`. The comparison short-circuits
        // on length, so the Chernoff miners' survivor-subset `prob_vectors`
        // call costs O(1) before rebuilding.
        let reusable = matches!(&self.current, Some((c, _)) if c.as_slice() == candidates);
        if !reusable {
            self.current = Some((candidates.to_vec(), LevelScan::new(self.db, candidates)));
        }
        &self.current.as_ref().expect("just set").1
    }
}

impl SupportEngine for HorizontalScan<'_> {
    fn name(&self) -> &'static str {
        EngineKind::Horizontal.name()
    }

    fn evaluate(
        &mut self,
        candidates: &[Itemset],
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport {
        let acc = self
            .scan_for(candidates)
            .accumulate(want.variance, want.count, stats);
        LevelSupport {
            esup: acc.esup,
            variance: acc.var,
            count: acc.count,
        }
    }

    fn prob_vectors(&mut self, candidates: &[Itemset], stats: &mut MinerStats) -> Vec<Vec<f64>> {
        self.scan_for(candidates).prob_vectors(stats)
    }

    fn finish_level(&mut self, _frequent: &[FrequentItemset]) {
        self.current = None;
    }

    fn shard_plan(&self) -> ShardPlan {
        self.plan
    }

    fn num_shards(&self) -> usize {
        self.plan.num_shards(self.db.num_transactions())
    }

    fn evaluate_shard(
        &mut self,
        candidates: &[Itemset],
        shard: usize,
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> ShardPartial {
        let _ = stats; // the single logical pass is charged at merge time
        let blocks_per_shard = self.plan.width_tids() / SUM_BLOCK_TIDS;
        let scan = self.scan_for(candidates);
        let num_blocks = scan.num_blocks();
        let lo = (shard * blocks_per_shard).min(num_blocks);
        let hi = ((shard + 1) * blocks_per_shard).min(num_blocks);
        let blocks = scan.block_partials(lo..hi, want.variance, want.count);
        ShardPartial {
            shard,
            payload: ShardPayload::Blocks(blocks),
        }
    }

    fn merge_shards(
        &mut self,
        candidates: &[Itemset],
        partials: Vec<ShardPartial>,
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport {
        // All shards together visit each transaction once: one scan.
        stats.scans += 1;
        let mut sorted = partials;
        sorted.sort_by_key(|p| p.shard);
        let mut total = ScanAccumulators::new(candidates.len(), want.variance, want.count);
        for partial in &sorted {
            match &partial.payload {
                ShardPayload::Blocks(blocks) => {
                    // Blocks are ascending within a shard and shards are
                    // folded in ascending order, so the fold sequence is
                    // identical to the unsharded accumulate pass.
                    for block in blocks {
                        total.fold_in(block);
                    }
                }
                _ => panic!("horizontal seam expects block partials"),
            }
        }
        LevelSupport {
            esup: total.esup,
            variance: total.var,
            count: total.count,
        }
    }
}

/// Work-size threshold (candidates × mean tid-list length) below which the
/// vertical backend stays sequential (shared with the horizontal scans).
const PAR_MIN_WORK: usize = ufim_core::parallel::DEFAULT_MIN_WORK;

/// Candidate work (summed fragment + postings units over its non-skipped
/// shards) above which a sharded candidate's per-shard kernels fan out as
/// nested scope tasks — the shards × candidates dual parallel axis. A pure
/// function of operand sizes, so spawn structure (and with it every merged
/// bit and counter) never depends on the thread count.
const SHARD_SPAWN_MIN_WORK: usize = ufim_core::parallel::DEFAULT_MIN_WORK;

/// The point updates one window step implies for a retained node of
/// `items`: `(tid, new containment probability)` for every dirty slot
/// whose probability actually changed, ascending by tid. The memoized
/// vector's value at a tid equals the probe's old-row product bit for bit
/// (both are the same ascending left-fold), so the bitwise filter detects
/// untouched nodes exactly like the border tracker does — an empty return
/// means the node is already byte-identical to a rebuild.
fn itemset_updates(probe: &StepProbe, items: &[ItemId]) -> Vec<(u32, f64)> {
    probe.updates(items)
}

/// The ascending, deduplicated summation-block keys a batch of point
/// updates touches — the blocks [`BlockMoments::refresh`] must recompute.
fn touched_block_keys(updates: &[(u32, f64)]) -> Vec<u32> {
    let mut blocks: Vec<u32> = updates
        .iter()
        .map(|&(tid, _)| BlockMoments::block_of_tid(tid))
        .collect();
    blocks.dedup();
    blocks
}

/// Deterministic patch-vs-evict rule for a retained node: patching
/// rewrites only touched chunks, but a step that moves half the node's
/// tids costs as much as the cold re-fold it replaces — evict then and
/// let the next use rebuild. A pure function of the update count and the
/// node's nonzero size, so `memo_patched` / `memo_rebuilt` are identical
/// across thread counts.
fn patch_beats_rebuild(changed: usize, nnz: usize) -> bool {
    changed * 2 <= nnz.max(1)
}

/// One frequent prefix retained by a sharded columnar engine: its
/// prob-vector split at shard boundaries (global chunk keys; empty where
/// the prefix has no tids) plus each fragment's exact probability mass —
/// the prefix-side operand of the zone precheck.
struct ShardedNode {
    frags: Vec<ProbVector>,
    masses: Vec<f64>,
    /// Streaming mode: stamp of the last refresh that kept this prefix
    /// frequent (drives cross-refresh GC); 0 in batch mode.
    stamp: u64,
}

/// The fragment memo the vertical engine runs in sharded mode (the
/// diffset backend keeps per-shard *delta* chains instead — see
/// [`DiffShardedState`]).
#[derive(Default)]
struct ShardedState {
    /// Previous level's frequent itemsets, keyed by item array.
    prev: FxHashMap<Vec<ItemId>, ShardedNode>,
    /// Fragments of every candidate the current level memoized.
    current: FxHashMap<Vec<ItemId>, Vec<ProbVector>>,
}

/// Peak `(units, bytes)` of a sharded fragment memo (fragment payloads
/// only, like the unsharded accounting).
fn sharded_memo_peak(state: &ShardedState) -> (u64, u64) {
    let (mut units, mut bytes) = (0usize, 0usize);
    for v in state
        .prev
        .values()
        .flat_map(|n| n.frags.iter())
        .chain(state.current.values().flatten())
    {
        units += v.mem_units();
        bytes += v.mem_bytes();
    }
    (units as u64, bytes as u64)
}

/// A candidate's prefix operand in sharded mode: the index itself for
/// singleton prefixes, the memo for extensions of a frequent itemset, or a
/// from-scratch per-shard fold for cold prefixes (direct trait users).
enum ShardedPrefix<'a> {
    Item(ItemId),
    Node(&'a ShardedNode),
    Cold(ShardedNode),
}

impl ShardedPrefix<'_> {
    fn resolve<'a>(
        index: &VerticalIndex,
        prev: &'a FxHashMap<Vec<ItemId>, ShardedNode>,
        prefix_items: &[ItemId],
    ) -> ShardedPrefix<'a> {
        if let [item] = prefix_items {
            ShardedPrefix::Item(*item)
        } else if let Some(node) = prev.get(prefix_items) {
            ShardedPrefix::Node(node)
        } else {
            ShardedPrefix::Cold(cold_sharded_node(index, prefix_items))
        }
    }

    fn frag<'b>(&'b self, index: &'b VerticalIndex, shard: usize) -> &'b ProbVector {
        match self {
            ShardedPrefix::Item(item) => index.shard_postings(*item, shard),
            ShardedPrefix::Node(node) => &node.frags[shard],
            ShardedPrefix::Cold(node) => &node.frags[shard],
        }
    }

    fn mass(&self, index: &VerticalIndex, shard: usize) -> f64 {
        match self {
            ShardedPrefix::Item(item) => index.zone(*item, shard).mass,
            ShardedPrefix::Node(node) => node.masses[shard],
            ShardedPrefix::Cold(node) => node.masses[shard],
        }
    }
}

/// From-scratch per-shard postings fold for a cold prefix. Per-shard folds
/// of global-key fragments produce exactly the shard split of the full
/// fold (intersection distributes over the tid-range partition and every
/// chunk's layout is a pure function of its contents).
fn cold_sharded_node(index: &VerticalIndex, items: &[ItemId]) -> ShardedNode {
    let shards = index.num_shards();
    let mut frags = Vec::with_capacity(shards);
    let mut masses = Vec::with_capacity(shards);
    for shard in 0..shards {
        let mut acc = index.shard_postings(items[0], shard).clone();
        for &item in &items[1..] {
            if acc.is_empty() {
                break;
            }
            acc = acc.intersect(index.shard_postings(item, shard));
        }
        masses.push(acc.esup());
        frags.push(acc);
    }
    ShardedNode {
        frags,
        masses,
        stamp: 0,
    }
}

/// Worker result for one candidate of a sharded level evaluation.
struct ShardedEval {
    esup: f64,
    var: f64,
    count: usize,
    /// Fragments to memoize — `None` when a threshold (or the zone
    /// precheck) ruled the candidate out, or for singletons (which resolve
    /// from the index).
    frags: Option<Vec<ProbVector>>,
    /// Per-shard kernel invocations this candidate paid.
    evaluated: u32,
    /// Shard evaluations the zone maps skipped (every shard, when the
    /// whole-candidate precheck fired).
    pruned: u32,
}

/// Upper-bounds one shard's contribution to a candidate's esup from the
/// zone maps alone: `Σ_t q_prefix · q_last` over the shard is at most the
/// last item's mass, and at most its max probability times the prefix
/// mass; for pairs both items' zones sharpen it further. Sound because
/// every factor is an upper bound on the true per-tid product sum.
fn zone_esup_bound(
    index: &VerticalIndex,
    prefix_mass: f64,
    prefix_items: &[ItemId],
    last: ItemId,
    shard: usize,
) -> f64 {
    let z = index.zone(last, shard);
    let mut bound = z.mass.min(z.max_prob * prefix_mass);
    if let [first] = prefix_items {
        let zp = index.zone(*first, shard);
        bound = bound.min(zp.max_prob * z.max_prob * f64::from(zp.nonzero.min(z.nonzero)));
    }
    bound
}

/// Evaluates one candidate across every shard: zone precheck, per-shard
/// intersection kernels (nested scope spawns when heavy), and the
/// shard-order streamed moment merge. Pure function of the index, memo and
/// candidate — never of thread count.
fn sharded_candidate(
    index: &VerticalIndex,
    prev: &FxHashMap<Vec<ItemId>, ShardedNode>,
    candidate: &Itemset,
    want: StatRequest,
) -> ShardedEval {
    let items = candidate.items();
    let shards = index.num_shards();
    let k = items.len();
    if k == 0 {
        return ShardedEval {
            esup: 0.0,
            var: 0.0,
            count: 0,
            frags: None,
            evaluated: 0,
            pruned: 0,
        };
    }
    if k == 1 {
        // Singletons read their postings in place, like the unsharded
        // path; pair prefixes resolve straight from the index.
        let postings = index.postings(items[0]);
        let (esup, var) = postings.moments();
        return ShardedEval {
            esup,
            var,
            count: postings.len(),
            frags: None,
            evaluated: 0,
            pruned: 0,
        };
    }
    let (prefix_items, last) = (&items[..k - 1], items[k - 1]);
    let prefix = ShardedPrefix::resolve(index, prev, prefix_items);

    // Whole-candidate zone precheck: when the per-shard upper bounds
    // already prove the candidate below a pushdown threshold, skip every
    // kernel and report the (decision-equivalent) bounds — exactly the
    // contract of the unsharded bounded kernel's early bail, which also
    // reports partial statistics for candidates it rules out. The esup
    // bound is guarded by `BOUND_SLACK` against rounding; the count bound
    // is integer and exact.
    if want.min_esup.is_some() || want.min_count.is_some() {
        let (mut esup_ub, mut count_ub) = (0.0f64, 0u64);
        for shard in 0..shards {
            let frag = prefix.frag(index, shard);
            let z = index.zone(last, shard);
            if z.nonzero == 0 || frag.is_empty() {
                continue;
            }
            esup_ub += zone_esup_bound(index, prefix.mass(index, shard), prefix_items, last, shard);
            count_ub += u64::from(z.nonzero).min(frag.len() as u64);
        }
        let hopeless = want.min_esup.is_some_and(|t| esup_ub + BOUND_SLACK < t)
            || want.min_count.is_some_and(|t| count_ub < t);
        if hopeless {
            return ShardedEval {
                esup: esup_ub,
                var: 0.0,
                count: count_ub as usize,
                frags: None,
                evaluated: 0,
                pruned: shards as u32,
            };
        }
    }

    // Exact per-shard skip: an empty operand fragment makes the result
    // fragment empty, which contributes exactly nothing to the streamed
    // moments — integer emptiness only, never a float test.
    let evaluable: Vec<usize> = (0..shards)
        .filter(|&shard| {
            index.zone(last, shard).nonzero != 0 && !prefix.frag(index, shard).is_empty()
        })
        .collect();
    let pruned = (shards - evaluable.len()) as u32;
    let mut frags = vec![ProbVector::new(); shards];
    let units: usize = evaluable
        .iter()
        .map(|&shard| prefix.frag(index, shard).len() + index.shard_postings(last, shard).len())
        .sum();
    if evaluable.len() > 1 && units >= SHARD_SPAWN_MIN_WORK {
        // Heavy candidate: nested fan-out across its shards. The sink
        // orders results by shard index, and each kernel is the allocating
        // `intersect` either way, so the spawned and sequential paths
        // produce identical fragments.
        let sink = OrderedSink::new();
        scope(|sc| {
            for &shard in &evaluable {
                let frag = prefix.frag(index, shard);
                let last_frag = index.shard_postings(last, shard);
                let sink = &sink;
                sc.spawn(move |_| {
                    sink.push(vec![shard as u32], (shard, frag.intersect(last_frag)))
                });
            }
        });
        for (shard, frag) in sink.into_sorted_values() {
            frags[shard] = frag;
        }
    } else {
        for &shard in &evaluable {
            frags[shard] = prefix
                .frag(index, shard)
                .intersect(index.shard_postings(last, shard));
        }
    }
    let (esup, var, count) = ProbVector::fragments_moments(frags.iter());
    let survives = !(want.min_esup.is_some_and(|t| esup < t)
        || want.min_count.is_some_and(|t| (count as u64) < t));
    ShardedEval {
        esup,
        var,
        count,
        frags: survives.then_some(frags),
        evaluated: evaluable.len() as u32,
        pruned,
    }
}

/// Sharded level evaluation: `par_map` across candidates × nested spawns
/// across each heavy candidate's shards (see [`sharded_candidate`]),
/// counters summed in candidate order.
fn sharded_evaluate(
    index: &VerticalIndex,
    state: &mut ShardedState,
    candidates: &[Itemset],
    want: StatRequest,
    stats: &mut MinerStats,
) -> LevelSupport {
    let mut out = LevelSupport {
        esup: Vec::with_capacity(candidates.len()),
        variance: want.variance.then(|| Vec::with_capacity(candidates.len())),
        count: want.count.then(|| Vec::with_capacity(candidates.len())),
    };
    let mean_units = index.mean_posting_units();
    let prev = &state.prev;
    let results = par_map_min_len(candidates, mean_units.max(1), PAR_MIN_WORK, |c| {
        sharded_candidate(index, prev, c, want)
    });
    for (candidate, r) in candidates.iter().zip(results) {
        // In sharded mode the intersections counter means per-shard kernel
        // invocations (mode-specific, still thread-deterministic).
        stats.intersections += u64::from(r.evaluated);
        stats.shards_evaluated += u64::from(r.evaluated);
        stats.shards_pruned += u64::from(r.pruned);
        out.esup.push(r.esup);
        if let Some(vs) = out.variance.as_mut() {
            vs.push(r.var);
        }
        if let Some(cs) = out.count.as_mut() {
            cs.push(r.count as u64);
        }
        if let Some(frags) = r.frags {
            state.current.insert(candidate.items().to_vec(), frags);
        }
    }
    out
}

/// Sharded `prob_vectors`: fragment probs concatenate in shard order
/// (fragments keep transaction order globally).
fn sharded_prob_vectors(
    index: &VerticalIndex,
    state: &ShardedState,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> Vec<Vec<f64>> {
    candidates
        .iter()
        .map(|c| match state.current.get(c.items()) {
            Some(frags) => frags.iter().flat_map(|f| f.nonzero_probs()).collect(),
            None => {
                // Cold path (direct trait users): a from-scratch fold
                // costs `len − 1` intersections; charge them.
                stats.intersections += c.len().saturating_sub(1) as u64;
                index.prob_vector(c.items()).nonzero_probs()
            }
        })
        .collect()
}

/// Sharded `finish_level`: survivors keep their fragments, each annotated
/// with its exact mass for the next level's zone prechecks. In batch mode
/// the previous level is replaced wholesale; in streaming mode survivors
/// *accumulate* into the retained cross-refresh memo and re-stamp it
/// (reused frequent itemsets — untouched border entries the engine never
/// re-evaluated — keep their patched fragments and just renew the stamp).
fn sharded_finish_level(
    state: &mut ShardedState,
    frequent: &[FrequentItemset],
    streaming: bool,
    stamp: u64,
) {
    if streaming {
        for f in frequent {
            if let Some(frags) = state.current.remove(f.itemset.items()) {
                let masses = frags.iter().map(|v| v.esup()).collect();
                state.prev.insert(
                    f.itemset.items().to_vec(),
                    ShardedNode {
                        frags,
                        masses,
                        stamp,
                    },
                );
            } else if let Some(node) = state.prev.get_mut(f.itemset.items()) {
                node.stamp = stamp;
            }
        }
        state.current = FxHashMap::default();
        return;
    }
    let mut next = FxHashMap::default();
    for f in frequent {
        if let Some(frags) = state.current.remove(f.itemset.items()) {
            let masses = frags.iter().map(|v| v.esup()).collect();
            next.insert(
                f.itemset.items().to_vec(),
                ShardedNode {
                    frags,
                    masses,
                    stamp: 0,
                },
            );
        }
    }
    state.prev = next;
    state.current = FxHashMap::default();
}

/// The vertical backend's sharded patch walk: drops nodes that fell out
/// of the last refresh's frequent stream, then point-patches each
/// survivor's touched fragments (a dirty tid lands in exactly one shard)
/// and re-folds only those shards' masses. Patched fragments are
/// byte-identical to a rebuilt engine's ([`ProbVector::apply_tid_delta`]
/// commits canonical chunk layouts), and `mass = fragment.esup()` is the
/// exact expression `sharded_finish_level` records — so zone prechecks
/// and kernels downstream see rebuilt-identical operands.
fn patch_sharded_nodes(
    index: &VerticalIndex,
    state: &mut ShardedState,
    probe: &StepProbe,
    keep: u64,
    stats: &mut MinerStats,
) {
    let width = index.shard_plan().width_tids();
    state.prev.retain(|items, node| {
        if node.stamp != keep {
            return false;
        }
        let updates = itemset_updates(probe, items);
        if updates.is_empty() {
            return true;
        }
        let nnz: usize = node.frags.iter().map(ProbVector::len).sum();
        if !patch_beats_rebuild(updates.len(), nnz) {
            stats.memo_rebuilt += 1;
            return false;
        }
        let mut i = 0usize;
        while i < updates.len() {
            let shard = updates[i].0 as usize / width;
            let mut j = i + 1;
            while j < updates.len() && updates[j].0 as usize / width == shard {
                j += 1;
            }
            node.frags[shard].apply_tid_delta(&updates[i..j]);
            node.masses[shard] = node.frags[shard].esup();
            i = j;
        }
        stats.memo_patched += 1;
        true
    });
}

/// One candidate × one shard of the trait seam: the candidate's fragment
/// over the shard's tid range, or `None` when a zone map proves it empty.
/// The whole-candidate precheck does not apply here — it spans shards,
/// which a single-shard call cannot see.
fn sharded_candidate_shard(
    index: &VerticalIndex,
    prev: &FxHashMap<Vec<ItemId>, ShardedNode>,
    candidate: &Itemset,
    shard: usize,
    stats: &mut MinerStats,
) -> Option<ProbVector> {
    let items = candidate.items();
    let k = items.len();
    if k == 0 {
        return None;
    }
    if k == 1 {
        let frag = index.shard_postings(items[0], shard);
        if frag.is_empty() {
            stats.shards_pruned += 1;
            return None;
        }
        stats.shards_evaluated += 1;
        return Some(frag.clone());
    }
    let (prefix_items, last) = (&items[..k - 1], items[k - 1]);
    if index.zone(last, shard).nonzero == 0 {
        stats.shards_pruned += 1;
        return None;
    }
    let prefix = ShardedPrefix::resolve(index, prev, prefix_items);
    let frag = prefix.frag(index, shard);
    if frag.is_empty() {
        stats.shards_pruned += 1;
        return None;
    }
    stats.shards_evaluated += 1;
    stats.intersections += 1;
    Some(frag.intersect(index.shard_postings(last, shard)))
}

/// Reassembles the columnar seam's per-candidate fragment rows in
/// ascending shard order (skipped fragments become empty vectors, which
/// contribute exactly nothing to the streamed moments).
fn assemble_fragment_rows(
    num_candidates: usize,
    partials: Vec<ShardPartial>,
) -> Vec<Vec<ProbVector>> {
    let mut sorted = partials;
    sorted.sort_by_key(|p| p.shard);
    let mut rows: Vec<Vec<ProbVector>> = (0..num_candidates)
        .map(|_| Vec::with_capacity(sorted.len()))
        .collect();
    for partial in sorted {
        match partial.payload {
            ShardPayload::Fragments(frags) => {
                assert_eq!(
                    frags.len(),
                    num_candidates,
                    "every partial covers every candidate"
                );
                for (row, frag) in rows.iter_mut().zip(frags) {
                    row.push(frag.unwrap_or_default());
                }
            }
            _ => panic!("columnar seam expects fragment partials"),
        }
    }
    rows
}

/// The vertical backend's `merge_shards`: reassembles each candidate's
/// fragment row in ascending shard order, streams the moments, and
/// memoizes survivors.
fn fragment_merge_shards(
    state: &mut ShardedState,
    candidates: &[Itemset],
    partials: Vec<ShardPartial>,
    want: StatRequest,
) -> LevelSupport {
    let rows = assemble_fragment_rows(candidates.len(), partials);
    let mut out = LevelSupport {
        esup: Vec::with_capacity(candidates.len()),
        variance: want.variance.then(|| Vec::with_capacity(candidates.len())),
        count: want.count.then(|| Vec::with_capacity(candidates.len())),
    };
    for (candidate, row) in candidates.iter().zip(rows) {
        let (esup, var, count) = ProbVector::fragments_moments(row.iter());
        out.esup.push(esup);
        if let Some(vs) = out.variance.as_mut() {
            vs.push(var);
        }
        if let Some(cs) = out.count.as_mut() {
            cs.push(count as u64);
        }
        let survives = !(want.min_esup.is_some_and(|t| esup < t)
            || want.min_count.is_some_and(|t| (count as u64) < t));
        if survives && candidate.len() > 1 {
            state.current.insert(candidate.items().to_vec(), row);
        }
    }
    out
}

/// One shard's cell of a [`DiffShardedNode`]: dEclat's per-node
/// representation choice applied per (itemset, shard) — whichever of the
/// materialized fragment or the delta against the prefix's fragment is
/// smaller, decided from **exact** byte counts (both representations are
/// in hand when the cell is built, unlike the unsharded path's estimate).
enum ShardRepr {
    /// Materialized fragment (the chain terminator for per-shard
    /// resolution — chosen in the sparse-child regime).
    Tidset(ProbVector),
    /// Delta against the prefix's fragment over the same shard's tid
    /// range (a [`DiffVector`] only ever drops tids of one shard, so the
    /// per-shard chains compose exactly like the global one).
    Diff(DiffVector),
}

impl ShardRepr {
    fn mem_bytes(&self) -> usize {
        match self {
            ShardRepr::Tidset(v) => v.mem_bytes(),
            ShardRepr::Diff(d) => d.mem_bytes(),
        }
    }

    fn mem_units(&self) -> usize {
        match self {
            ShardRepr::Tidset(v) => v.mem_units(),
            ShardRepr::Diff(d) => d.len(),
        }
    }
}

/// One frequent itemset retained by the diffset backend's sharded mode:
/// per-shard delta chains (or fragments, where smaller) plus each shard's
/// exact probability mass and nonzero count — the prefix-side operands of
/// the zone precheck, recorded so prechecks never walk a chain.
struct DiffShardedNode {
    reprs: Vec<ShardRepr>,
    masses: Vec<f64>,
    lens: Vec<u32>,
    /// Cross-refresh GC stamp (streaming mode; 0 in batch mode).
    stamp: u64,
}

/// Sharded-mode state of the diffset backend. Unlike the vertical
/// engine's [`ShardedState`] (whole fragment tidsets, one level deep),
/// the memo is persistent across levels and delta-chained per shard, so
/// the diffset memory edge survives sharding (`bench_memory` asserts the
/// win under a forced multi-shard plan).
#[derive(Default)]
struct DiffShardedState {
    /// Every retained frequent itemset, keyed by its item array. Ancestors
    /// of any retained delta are themselves retained (Apriori closure:
    /// every prefix of a frequent itemset is frequent).
    memo: FxHashMap<Vec<ItemId>, DiffShardedNode>,
    /// Nodes for the current level's survivors, pending `finish_level`.
    current: FxHashMap<Vec<ItemId>, DiffShardedNode>,
}

/// Peak `(units, bytes)` of the diff-sharded memo (repr payloads only,
/// like the unsharded accounting).
fn diff_sharded_memo_peak(state: &DiffShardedState) -> (u64, u64) {
    let (mut units, mut bytes) = (0usize, 0usize);
    for repr in state
        .memo
        .values()
        .chain(state.current.values())
        .flat_map(|n| n.reprs.iter())
    {
        units += repr.mem_units();
        bytes += repr.mem_bytes();
    }
    (units as u64, bytes as u64)
}

/// Reconstructs one shard's fragment of `items` from the per-shard
/// delta-chain memo, counting each `apply_diff` step into `applies`.
/// Falls back to a from-scratch per-shard postings fold for itemsets the
/// memo never saw (direct trait users) — the single-shard slice of
/// [`cold_sharded_node`].
fn resolve_shard_frag<'a>(
    index: &'a VerticalIndex,
    memo: &'a FxHashMap<Vec<ItemId>, DiffShardedNode>,
    items: &[ItemId],
    shard: usize,
    applies: &mut u64,
) -> Resolved<'a> {
    match items.len() {
        0 => Resolved::Owned(ProbVector::new()),
        1 => Resolved::Borrowed(index.shard_postings(items[0], shard)),
        k => match memo.get(items) {
            Some(node) => match &node.reprs[shard] {
                ShardRepr::Tidset(v) => Resolved::Borrowed(v),
                ShardRepr::Diff(d) => {
                    let parent = resolve_shard_frag(index, memo, &items[..k - 1], shard, applies);
                    *applies += 1;
                    Resolved::Owned(
                        parent
                            .get()
                            .apply_diff(d, index.shard_postings(items[k - 1], shard)),
                    )
                }
            },
            None => {
                *applies += items.len().saturating_sub(1) as u64;
                let mut acc = index.shard_postings(items[0], shard).clone();
                for &item in &items[1..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc = acc.intersect(index.shard_postings(item, shard));
                }
                Resolved::Owned(acc)
            }
        },
    }
}

/// A candidate's prefix in diff-sharded mode, exposing the per-shard
/// masses and nonzero counts the zone precheck consumes without walking
/// any chain; fragments themselves resolve lazily per shard.
enum DiffShardedPrefix<'a> {
    Item(ItemId),
    Node(&'a DiffShardedNode),
    Cold(ShardedNode),
}

impl DiffShardedPrefix<'_> {
    fn resolve<'a>(
        index: &VerticalIndex,
        memo: &'a FxHashMap<Vec<ItemId>, DiffShardedNode>,
        prefix_items: &[ItemId],
    ) -> DiffShardedPrefix<'a> {
        if let [item] = prefix_items {
            DiffShardedPrefix::Item(*item)
        } else if let Some(node) = memo.get(prefix_items) {
            DiffShardedPrefix::Node(node)
        } else {
            DiffShardedPrefix::Cold(cold_sharded_node(index, prefix_items))
        }
    }

    /// The prefix's exact probability mass over one shard — the same
    /// value the vertical engine's [`ShardedPrefix::mass`] reads, so the
    /// zone prechecks of the two backends agree bit for bit.
    fn mass(&self, index: &VerticalIndex, shard: usize) -> f64 {
        match self {
            DiffShardedPrefix::Item(item) => index.zone(*item, shard).mass,
            DiffShardedPrefix::Node(node) => node.masses[shard],
            DiffShardedPrefix::Cold(node) => node.masses[shard],
        }
    }

    /// The prefix's nonzero count over one shard (`fragment.len()`
    /// without materializing the fragment).
    fn len(&self, index: &VerticalIndex, shard: usize) -> usize {
        match self {
            DiffShardedPrefix::Item(item) => index.zone(*item, shard).nonzero as usize,
            DiffShardedPrefix::Node(node) => node.lens[shard] as usize,
            DiffShardedPrefix::Cold(node) => node.frags[shard].len(),
        }
    }

    /// The prefix's fragment over one shard — borrowed where the index
    /// (or a cold fold) holds it materialized, reconstructed through the
    /// per-shard chain otherwise.
    fn frag<'b>(
        &'b self,
        index: &'b VerticalIndex,
        memo: &'b FxHashMap<Vec<ItemId>, DiffShardedNode>,
        prefix_items: &[ItemId],
        shard: usize,
        applies: &mut u64,
    ) -> Resolved<'b> {
        match self {
            DiffShardedPrefix::Item(item) => Resolved::Borrowed(index.shard_postings(*item, shard)),
            DiffShardedPrefix::Node(_) => {
                resolve_shard_frag(index, memo, prefix_items, shard, applies)
            }
            DiffShardedPrefix::Cold(node) => Resolved::Borrowed(&node.frags[shard]),
        }
    }
}

/// Worker result for one candidate of a diff-sharded level evaluation.
struct DiffShardedEval {
    esup: f64,
    var: f64,
    count: usize,
    /// Node to memoize — `None` when a threshold (or the zone precheck)
    /// ruled the candidate out, or for singletons (which resolve from the
    /// index).
    node: Option<DiffShardedNode>,
    /// Per-shard kernel invocations this candidate paid.
    evaluated: u32,
    /// Shard evaluations the zone maps skipped.
    pruned: u32,
}

/// Evaluates one prefix group in diff-sharded mode: the shared prefix's
/// fragment resolves (at most) once per shard for the whole group — the
/// per-shard analog of the unsharded path's per-group chain walk — then
/// each candidate runs the whole-candidate zone precheck (identical
/// bounds, from identical per-shard masses and counts, as the vertical
/// engine's [`sharded_candidate`], so prune decisions agree bit for bit)
/// and, per evaluable shard, one `diff_extend` + `apply_dropped` pair:
/// the delta for the memo and the materialized fragment for the streamed
/// moments. Moments must fold the global summation-block sequence
/// ([`ProbVector::fragments_moments`]); per-shard moments are never
/// summed. Pure function of index, memo and candidates — never of thread
/// count.
fn diff_sharded_group(
    index: &VerticalIndex,
    memo: &FxHashMap<Vec<ItemId>, DiffShardedNode>,
    candidates: &[Itemset],
    want: StatRequest,
    scratch: &mut ScratchSpace,
) -> (Vec<DiffShardedEval>, u64) {
    let mut work = 0u64;
    let mut out = Vec::with_capacity(candidates.len());
    let shards = index.num_shards();
    // All group members share a length and (for k > 1) a prefix.
    let k = candidates[0].len();
    if k <= 1 {
        // Singletons read their postings in place, like the unsharded
        // path; no memo entry.
        for c in candidates {
            let (esup, var, count) = match c.items().first() {
                Some(&item) => {
                    let postings = index.postings(item);
                    let (esup, var) = postings.moments();
                    (esup, var, postings.len())
                }
                None => (0.0, 0.0, 0),
            };
            out.push(DiffShardedEval {
                esup,
                var,
                count,
                node: None,
                evaluated: 0,
                pruned: 0,
            });
        }
        return (out, work);
    }
    let prefix_items = &candidates[0].items()[..k - 1];
    let prefix = DiffShardedPrefix::resolve(index, memo, prefix_items);
    // The shared prefix's fragments, resolved lazily (only shards some
    // candidate actually evaluates — zone prechecks cost no chain walk)
    // and at most once per group.
    let mut frag_cache: Vec<Option<Resolved<'_>>> = (0..shards).map(|_| None).collect();
    for c in candidates {
        let last = c.items()[k - 1];
        // Whole-candidate zone precheck — see `sharded_candidate` for the
        // contract (decision-equivalent bounds reported for candidates it
        // rules out).
        if want.min_esup.is_some() || want.min_count.is_some() {
            let (mut esup_ub, mut count_ub) = (0.0f64, 0u64);
            for shard in 0..shards {
                let z = index.zone(last, shard);
                let plen = prefix.len(index, shard);
                if z.nonzero == 0 || plen == 0 {
                    continue;
                }
                esup_ub +=
                    zone_esup_bound(index, prefix.mass(index, shard), prefix_items, last, shard);
                count_ub += u64::from(z.nonzero).min(plen as u64);
            }
            let hopeless = want.min_esup.is_some_and(|t| esup_ub + BOUND_SLACK < t)
                || want.min_count.is_some_and(|t| count_ub < t);
            if hopeless {
                out.push(DiffShardedEval {
                    esup: esup_ub,
                    var: 0.0,
                    count: count_ub as usize,
                    node: None,
                    evaluated: 0,
                    pruned: shards as u32,
                });
                continue;
            }
        }
        // Exact per-shard skip, like the vertical path: an empty operand
        // makes the result fragment empty, which contributes exactly
        // nothing to the streamed moments — integer emptiness only.
        let mut child_frags = vec![ProbVector::new(); shards];
        let mut diffs: Vec<Option<DiffVector>> = (0..shards).map(|_| None).collect();
        let mut evaluated = 0u32;
        for shard in 0..shards {
            if index.zone(last, shard).nonzero == 0 || prefix.len(index, shard) == 0 {
                continue;
            }
            evaluated += 1;
            let pfrag = frag_cache[shard]
                .get_or_insert_with(|| prefix.frag(index, memo, prefix_items, shard, &mut work));
            let postings = index.shard_postings(last, shard);
            // One diff_extend (the delta + per-shard stats, discarded in
            // favor of the global streamed moments) plus one apply_dropped
            // (the fragment the moments and a possible tidset repr need):
            // two intersection-equivalent walks, charged as such.
            work += 2;
            let _ = pfrag.get().diff_extend_into(postings, scratch);
            let frag = pfrag.get().apply_dropped(scratch.dropped(), postings);
            // dEclat's per-node choice, per shard, from exact sizes.
            if std::mem::size_of_val(scratch.dropped()) <= frag.mem_bytes() {
                diffs[shard] = Some(scratch.export_diff());
            }
            child_frags[shard] = frag;
        }
        let pruned = shards as u32 - evaluated;
        let (esup, var, count) = ProbVector::fragments_moments(child_frags.iter());
        let survives = !(want.min_esup.is_some_and(|t| esup < t)
            || want.min_count.is_some_and(|t| (count as u64) < t));
        let node = survives.then(|| {
            let masses = child_frags.iter().map(|f| f.esup()).collect();
            let lens = child_frags.iter().map(|f| f.len() as u32).collect();
            let reprs = child_frags
                .into_iter()
                .zip(std::mem::take(&mut diffs))
                .map(|(f, d)| match d {
                    Some(d) => ShardRepr::Diff(d),
                    None => ShardRepr::Tidset(f),
                })
                .collect();
            DiffShardedNode {
                reprs,
                masses,
                lens,
                stamp: 0,
            }
        });
        out.push(DiffShardedEval {
            esup,
            var,
            count,
            node,
            evaluated,
            pruned,
        });
    }
    (out, work)
}

/// Diff-sharded level evaluation: `par_map` across prefix groups (the
/// shared prefix chain resolves once per group and shard), counters
/// summed in group order — pure functions of the data, so results and
/// counters never depend on thread count.
fn diff_sharded_evaluate(
    index: &VerticalIndex,
    state: &mut DiffShardedState,
    candidates: &[Itemset],
    want: StatRequest,
    stats: &mut MinerStats,
) -> LevelSupport {
    let n = candidates.len();
    let mut out = LevelSupport {
        esup: vec![0.0; n],
        variance: want.variance.then(|| vec![0.0; n]),
        count: want.count.then(|| vec![0u64; n]),
    };
    let groups = DiffsetEngine::prefix_groups(candidates);
    let mean_units = index.mean_posting_units();
    let mean_group = candidates.len().div_ceil(groups.len().max(1));
    let weight = mean_units.max(1).saturating_mul(mean_group.max(1));
    let memo = &state.memo;
    let results = par_map_min_len_with(
        &groups,
        weight,
        PAR_MIN_WORK,
        ScratchSpace::new,
        |scratch, &(s, e)| diff_sharded_group(index, memo, &candidates[s..e], want, scratch),
    );
    for (&(s, _), (evals, work)) in groups.iter().zip(results) {
        stats.intersections += work;
        for (offset, r) in evals.into_iter().enumerate() {
            let i = s + offset;
            stats.shards_evaluated += u64::from(r.evaluated);
            stats.shards_pruned += u64::from(r.pruned);
            out.esup[i] = r.esup;
            if let Some(vs) = out.variance.as_mut() {
                vs[i] = r.var;
            }
            if let Some(cs) = out.count.as_mut() {
                cs[i] = r.count as u64;
            }
            if let Some(node) = r.node {
                state.current.insert(candidates[i].items().to_vec(), node);
            }
        }
    }
    out
}

/// Diff-sharded `prob_vectors`: fragment probs concatenate in shard order
/// (fragments keep transaction order globally); delta cells re-materialize
/// through their chain — the same memory-for-time trade the unsharded
/// diffset path makes.
fn diff_sharded_prob_vectors(
    index: &VerticalIndex,
    state: &DiffShardedState,
    candidates: &[Itemset],
    stats: &mut MinerStats,
) -> Vec<Vec<f64>> {
    let mut extra = 0u64;
    let out = candidates
        .iter()
        .map(|c| match state.current.get(c.items()) {
            Some(node) => {
                let k = c.len();
                let mut probs = Vec::new();
                for (shard, repr) in node.reprs.iter().enumerate() {
                    match repr {
                        ShardRepr::Tidset(v) => probs.extend(v.nonzero_probs()),
                        ShardRepr::Diff(d) => {
                            let prefix = resolve_shard_frag(
                                index,
                                &state.memo,
                                &c.items()[..k - 1],
                                shard,
                                &mut extra,
                            );
                            extra += 1;
                            let v = prefix
                                .get()
                                .apply_diff(d, index.shard_postings(c.items()[k - 1], shard));
                            probs.extend(v.nonzero_probs());
                        }
                    }
                }
                probs
            }
            None => {
                // Cold path (direct trait users): a from-scratch fold
                // costs `len − 1` intersections; charge them.
                extra += c.len().saturating_sub(1) as u64;
                index.prob_vector(c.items()).nonzero_probs()
            }
        })
        .collect();
    stats.intersections += extra;
    out
}

/// Diff-sharded `finish_level`: survivors join the persistent per-shard
/// delta-chain memo (masses and lens were recorded at evaluation time).
/// In streaming mode every frequent itemset of the refresh — freshly
/// evaluated or reused — renews the GC stamp.
fn diff_sharded_finish_level(
    state: &mut DiffShardedState,
    frequent: &[FrequentItemset],
    streaming: bool,
    stamp: u64,
) {
    for f in frequent {
        if let Some(mut node) = state.current.remove(f.itemset.items()) {
            node.stamp = stamp;
            state.memo.insert(f.itemset.items().to_vec(), node);
        } else if streaming {
            if let Some(node) = state.memo.get_mut(f.itemset.items()) {
                node.stamp = stamp;
            }
        }
    }
    state.current = FxHashMap::default();
}

/// The diffset backend's sharded patch walk. Keys are visited parents
/// before children (ascending length, then lexicographic — a
/// deterministic order), each node temporarily removed so its delta cells
/// can re-resolve their *already-patched* prefix fragment through the
/// memo, then reinserted. Per touched shard a `Tidset` cell rewrites only
/// the dirty chunks in place; a `Diff` cell first re-decides membership
/// for every dirty tid where a *member item's* probability moved (`t` is
/// dropped iff the new prefix keeps it while the new child zeroes it —
/// membership can flip even when the child value does not move, but only
/// a member-item change can flip it: untouched member lists leave both
/// products, and so the decision, bit-identical) and then, only when some
/// child value actually changed, re-materializes the fragment to re-fold
/// `masses`/`lens`. Everything lands byte-identical to a rebuilt engine:
/// patched vectors commit canonical layouts and the folded expressions
/// are exactly the ones evaluation records.
fn patch_diff_sharded_nodes(
    index: &VerticalIndex,
    state: &mut DiffShardedState,
    probe: &StepProbe,
    keep: u64,
    stats: &mut MinerStats,
) {
    let width = index.shard_plan().width_tids();
    let mut keys: Vec<Vec<ItemId>> = state.memo.keys().cloned().collect();
    keys.sort_unstable_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    for items in keys {
        let Some(mut node) = state.memo.remove(&items) else {
            continue;
        };
        if node.stamp != keep {
            // Fell out of the last refresh's frequent stream.
            continue;
        }
        let updates = itemset_updates(probe, &items);
        let has_diff_cell = node.reprs.iter().any(|r| matches!(r, ShardRepr::Diff(_)));
        if updates.is_empty() && !has_diff_cell {
            state.memo.insert(items, node);
            continue;
        }
        let nnz: usize = node.lens.iter().map(|&l| l as usize).sum();
        if !updates.is_empty() && !patch_beats_rebuild(updates.len(), nnz) {
            stats.memo_rebuilt += 1;
            continue;
        }
        let k = items.len();
        let (prefix_items, last) = (&items[..k - 1], items[k - 1]);
        let slots = probe.candidate_slots(&items);
        let mut patched = false;
        for shard in 0..node.reprs.len() {
            let changed: Vec<(u32, f64)> = updates
                .iter()
                .copied()
                .filter(|&(t, _)| t as usize / width == shard)
                .collect();
            match &mut node.reprs[shard] {
                ShardRepr::Tidset(v) => {
                    if changed.is_empty() {
                        continue;
                    }
                    v.apply_tid_delta(&changed);
                    node.masses[shard] = v.esup();
                    node.lens[shard] = v.len() as u32;
                    patched = true;
                }
                ShardRepr::Diff(d) => {
                    let membership: Vec<(u32, bool)> = slots
                        .iter()
                        .filter(|&&s| probe.tid(s) as usize / width == shard)
                        .map(|&s| {
                            let drop = probe.new_prob(s, prefix_items) > 0.0
                                && probe.new_prob(s, &items) == 0.0;
                            (probe.tid(s), drop)
                        })
                        .collect();
                    if membership.is_empty() && changed.is_empty() {
                        continue;
                    }
                    d.apply_tid_delta(&membership);
                    if changed.is_empty() {
                        continue;
                    }
                    let mut applies = 0u64;
                    let parent =
                        resolve_shard_frag(index, &state.memo, prefix_items, shard, &mut applies);
                    let frag = parent
                        .get()
                        .apply_diff(d, index.shard_postings(last, shard));
                    node.masses[shard] = frag.esup();
                    node.lens[shard] = frag.len() as u32;
                    patched = true;
                }
            }
        }
        if patched {
            stats.memo_patched += 1;
        }
        state.memo.insert(items, node);
    }
}

/// One candidate × one shard of the diffset backend's trait seam: like
/// [`sharded_candidate_shard`], with the prefix fragment reconstructed
/// through the per-shard delta chain.
fn diff_sharded_candidate_shard(
    index: &VerticalIndex,
    memo: &FxHashMap<Vec<ItemId>, DiffShardedNode>,
    candidate: &Itemset,
    shard: usize,
    stats: &mut MinerStats,
) -> Option<ProbVector> {
    let items = candidate.items();
    let k = items.len();
    if k == 0 {
        return None;
    }
    if k == 1 {
        let frag = index.shard_postings(items[0], shard);
        if frag.is_empty() {
            stats.shards_pruned += 1;
            return None;
        }
        stats.shards_evaluated += 1;
        return Some(frag.clone());
    }
    let (prefix_items, last) = (&items[..k - 1], items[k - 1]);
    if index.zone(last, shard).nonzero == 0 {
        stats.shards_pruned += 1;
        return None;
    }
    let prefix = resolve_shard_frag(index, memo, prefix_items, shard, &mut stats.intersections);
    let frag = prefix.get();
    if frag.is_empty() {
        stats.shards_pruned += 1;
        return None;
    }
    stats.shards_evaluated += 1;
    stats.intersections += 1;
    Some(frag.intersect(index.shard_postings(last, shard)))
}

/// The diffset backend's `merge_shards`: reassembles fragment rows like
/// [`fragment_merge_shards`] and memoizes survivors as materialized
/// per-shard tidsets — the seam moves fragments, not deltas; the main
/// `evaluate` path is where the per-shard delta choice happens.
fn diff_fragment_merge_shards(
    state: &mut DiffShardedState,
    candidates: &[Itemset],
    partials: Vec<ShardPartial>,
    want: StatRequest,
) -> LevelSupport {
    let rows = assemble_fragment_rows(candidates.len(), partials);
    let mut out = LevelSupport {
        esup: Vec::with_capacity(candidates.len()),
        variance: want.variance.then(|| Vec::with_capacity(candidates.len())),
        count: want.count.then(|| Vec::with_capacity(candidates.len())),
    };
    for (candidate, row) in candidates.iter().zip(rows) {
        let (esup, var, count) = ProbVector::fragments_moments(row.iter());
        out.esup.push(esup);
        if let Some(vs) = out.variance.as_mut() {
            vs.push(var);
        }
        if let Some(cs) = out.count.as_mut() {
            cs.push(count as u64);
        }
        let survives = !(want.min_esup.is_some_and(|t| esup < t)
            || want.min_count.is_some_and(|t| (count as u64) < t));
        if survives && candidate.len() > 1 {
            let masses = row.iter().map(|v| v.esup()).collect();
            let lens = row.iter().map(|v| v.len() as u32).collect();
            let reprs = row.into_iter().map(ShardRepr::Tidset).collect();
            state.current.insert(
                candidate.items().to_vec(),
                DiffShardedNode {
                    reprs,
                    masses,
                    lens,
                    stamp: 0,
                },
            );
        }
    }
    out
}

/// One retained prefix of the vertical memo: its prob-vector and its
/// probability mass (the expected support recorded at `finish_level`,
/// which seeds the bounded stats pass's early-exit bound). In streaming
/// mode the node additionally keeps the vector's per-4096-tid-block
/// striped partial sums, so a window step can re-fold only the touched
/// blocks and land bit-identical cached moments, plus the stamp of the
/// last refresh whose frequent stream contained it.
struct PrevNode {
    vector: ProbVector,
    mass: f64,
    /// Block partials of `vector` (`Some` in streaming mode only).
    moments: Option<BlockMoments>,
    /// Cross-refresh GC stamp (streaming mode; 0 in batch mode).
    stamp: u64,
}

/// The columnar backend: per-item postings + memoized prefix intersection.
pub struct VerticalEngine {
    index: VerticalIndex,
    /// Prob-vectors of the previous levels' *frequent* itemsets, keyed by
    /// their item arrays: the prefixes the current level's candidates
    /// extend. Singleton prefixes are served by the index itself. In
    /// batch mode this holds exactly the previous level; in streaming
    /// mode it is the retained cross-refresh memo (the live frequent
    /// lattice), point-patched by each window step.
    prev: FxHashMap<Vec<ItemId>, PrevNode>,
    /// Prob-vectors of every candidate evaluated in the current level.
    current: FxHashMap<Vec<ItemId>, ProbVector>,
    /// Fragment memo, present iff the index is sharded (more than one
    /// shard under its plan); `prev`/`current` stay empty then.
    sharded: Option<ShardedState>,
    /// Whether the one-time index build has been charged to `stats.scans`.
    scan_charged: bool,
    /// Peak `(tid, prob)` units held in memo state (diagnostic).
    peak_memo_units: u64,
    /// Peak bytes of the same memo state ([`SupportEngine::peak_memo_bytes`]).
    peak_memo_bytes: u64,
    /// True once the first window step was applied: the memo is retained
    /// across refreshes from then on and point-patched per step.
    streaming: bool,
    /// Streaming refresh stamp: bumped per applied step; `finish_level`
    /// stamps every frequent itemset of the refresh with the current
    /// value, and the next step's GC drops nodes that missed it.
    stamp: u64,
}

impl VerticalEngine {
    /// Builds the index (the run's single database pass) and an empty memo,
    /// under the default shard plan.
    pub fn new(db: &UncertainDatabase) -> Self {
        Self::with_plan(db, ShardPlan::for_transactions(db.num_transactions()))
    }

    /// Like [`VerticalEngine::new`] with an explicit shard plan. Sharded
    /// evaluation engages iff the plan yields more than one shard; results
    /// are bit-identical either way.
    pub fn with_plan(db: &UncertainDatabase, plan: ShardPlan) -> Self {
        let index = VerticalIndex::build_with_plan(db, plan);
        let sharded = index.is_sharded().then(ShardedState::default);
        VerticalEngine {
            index,
            prev: FxHashMap::default(),
            current: FxHashMap::default(),
            sharded,
            scan_charged: false,
            peak_memo_units: 0,
            peak_memo_bytes: 0,
            streaming: false,
            stamp: 0,
        }
    }

    fn note_sharded_peak(&mut self, stats: &mut MinerStats) {
        if let Some(state) = self.sharded.as_ref() {
            let (units, bytes) = sharded_memo_peak(state);
            self.peak_memo_units = self.peak_memo_units.max(units);
            self.peak_memo_bytes = self.peak_memo_bytes.max(bytes);
        }
        stats.peak_structure_nodes = stats.peak_structure_nodes.max(self.peak_memo_units);
        stats.peak_memo_bytes = stats.peak_memo_bytes.max(self.peak_memo_bytes);
    }

    /// The candidate's prob-vector via the U-Eclat recurrence: prefix memo
    /// (or postings, for singleton prefixes) intersected with the last
    /// item's postings. Falls back to a from-scratch postings fold for
    /// candidates whose prefix was never evaluated (direct trait users).
    fn vector_for(&self, candidate: &Itemset) -> ProbVector {
        vector_for(&self.index, &self.prev, candidate)
    }

    fn note_memo_peak(&mut self) {
        let (mut units, mut bytes) = (0usize, 0usize);
        for node in self.prev.values() {
            units += node.vector.mem_units();
            bytes += node.vector.mem_bytes();
            bytes += node.moments.as_ref().map_or(0, BlockMoments::mem_bytes);
        }
        for v in self.current.values() {
            units += v.mem_units();
            bytes += v.mem_bytes();
        }
        self.peak_memo_units = self.peak_memo_units.max(units as u64);
        self.peak_memo_bytes = self.peak_memo_bytes.max(bytes as u64);
    }
}

impl SupportEngine for VerticalEngine {
    fn name(&self) -> &'static str {
        EngineKind::Vertical.name()
    }

    fn evaluate(
        &mut self,
        candidates: &[Itemset],
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport {
        if !self.scan_charged {
            // The whole run costs one database pass: the index build.
            stats.scans += 1;
            self.scan_charged = true;
        }
        if self.sharded.is_some() {
            let state = self.sharded.as_mut().expect("checked above");
            let out = sharded_evaluate(&self.index, state, candidates, want, stats);
            self.note_sharded_peak(stats);
            return out;
        }
        let mut out = LevelSupport {
            esup: Vec::with_capacity(candidates.len()),
            variance: want.variance.then(|| Vec::with_capacity(candidates.len())),
            count: want.count.then(|| Vec::with_capacity(candidates.len())),
        };
        let record = |out: &mut LevelSupport, esup: f64, var: f64, count: usize| {
            out.esup.push(esup);
            if let Some(vs) = out.variance.as_mut() {
                vs.push(var);
            }
            if let Some(cs) = out.count.as_mut() {
                cs.push(count as u64);
            }
        };

        // Singleton candidates read their postings in place — no
        // intersection, no clone, no memo entry (pair prefixes resolve
        // straight from the index).
        if candidates.iter().all(|c| c.len() == 1) {
            for c in candidates {
                let postings = self.index.postings(c.items()[0]);
                let (esup, var) = postings.moments();
                record(&mut out, esup, var, postings.len());
            }
            return out;
        }

        // Parallel across candidates: each intersection reads only the
        // index and the previous level's memo, through a per-worker
        // scratch (see the module docs — evaluation allocates only for
        // candidates whose vector enters the memo).
        let mean_units = self.index.mean_posting_units();
        let (index, prev) = (&self.index, &self.prev);

        if want.min_esup.is_some() || want.min_count.is_some() {
            stats.intersections += candidates.iter().filter(|c| c.len() > 1).count() as u64;
            // Pushdown strategy: each candidate is visited once, fusing
            // statistics and (survivors-only) materialization — see
            // `evaluate_pushdown` for the bounded / unbounded split. Either
            // way candidates the thresholds rule out never allocate, and on
            // candidate-heavy final levels, where (almost) nothing
            // survives, evaluation degenerates to bounded stats probes that
            // bail at the first summation block ruling them out.
            // The bounded kernel only proves "esup below threshold"; when a
            // count bound is also in play, partial counts could shift which
            // prune verdict fires, so it stays off.
            let esup_bound = if want.min_count.is_none() {
                want.min_esup
            } else {
                None
            };
            // Evaluate tiled by last item, not in candidate order: all
            // candidates whose last items fall in one tile of
            // `LAST_ITEM_TILE` consecutive ids are evaluated together,
            // sorted by prefix within the tile. The tile's postings vectors
            // — the fattest operands — fit in cache and stay resident,
            // while each prefix vector's reads land back-to-back (one
            // DRAM stream-in, then hits) instead of once per last-item
            // group. (Raw candidate order interleaves last items, which
            // re-streams a different postings vector per candidate; on the
            // dense anchor that traffic costs more than the arithmetic.)
            // Results are scattered back to candidate order — per-candidate
            // sums don't depend on evaluation order.
            const LAST_ITEM_TILE: u32 = 8;
            let mut order: Vec<u32> = (0..candidates.len() as u32).collect();
            order.sort_by_key(|&i| {
                let items = candidates[i as usize].items();
                let (last, prefix) = items.split_last().expect("candidates are non-empty");
                (last / LAST_ITEM_TILE, prefix, *last)
            });
            // Levels split into two regimes: candidate-heavy final levels
            // where (almost) nothing survives — the stats-first bounded
            // shape wins because pruned candidates bail early and never
            // touch output buffers — and survivor-heavy middle levels where
            // stats-first pays a *second* materialization walk per survivor
            // for nothing. Which regime a level is in can't be known up
            // front, so probe it: evaluate the first `PILOT_CANDIDATES`
            // (in evaluation order, sequentially) stats-first, and switch
            // the remainder to the fused single-walk shape iff a majority
            // survived. The pilot is a pure function of the candidate data,
            // so the mode — and with it every counter — is identical across
            // thread counts; either shape returns bit-identical moments and
            // vectors for survivors, so results never depend on the choice.
            const PILOT_CANDIDATES: usize = 64;
            let pilot_len = if esup_bound.is_some() {
                order.len().min(PILOT_CANDIDATES)
            } else {
                0
            };
            let mut pilot_results = Vec::with_capacity(pilot_len);
            let fused = {
                let mut scratch = ScratchSpace::new();
                let mut survivors = 0usize;
                for &i in &order[..pilot_len] {
                    let r = evaluate_pushdown(
                        index,
                        prev,
                        &candidates[i as usize],
                        &mut scratch,
                        esup_bound,
                        want.min_esup,
                        want.min_count,
                        false,
                    );
                    survivors += r.1.is_some() as usize;
                    pilot_results.push(r);
                }
                2 * survivors > pilot_len
            };
            let rest = par_map_min_len_with(
                &order[pilot_len..],
                mean_units.max(1),
                PAR_MIN_WORK,
                ScratchSpace::new,
                |scratch, &i| {
                    evaluate_pushdown(
                        index,
                        prev,
                        &candidates[i as usize],
                        scratch,
                        esup_bound,
                        want.min_esup,
                        want.min_count,
                        fused,
                    )
                },
            );
            let results = pilot_results.into_iter().chain(rest);
            let mut moments = vec![(0.0f64, 0.0f64, 0usize); candidates.len()];
            let mut second_walks = 0u64;
            for (&i, (m, vector, double_walked)) in order.iter().zip(results) {
                moments[i as usize] = m;
                second_walks += double_walked as u64;
                if let Some(vector) = vector {
                    self.current
                        .insert(candidates[i as usize].items().to_vec(), vector);
                }
            }
            // Bounded survivors spend a second (materialization) walk on
            // top of the blanket one-per-candidate charge above.
            stats.intersections += second_walks;
            for (esup, var, count) in moments {
                record(&mut out, esup, var, count);
            }
        } else {
            // Streaming refreshes take this unbounded arm. Candidates the
            // patch walk kept current in the retained memo are answered
            // straight from their per-block partials — the payoff of
            // memo-preserving delta evaluation: the fold combines the
            // already-maintained block sums, bit-identical to the cold
            // re-fold a fresh intersection would feed the same accumulator
            // shape. Only memo misses pay an intersection (and only they
            // are charged one).
            let streaming = self.streaming;
            let folded: Vec<Option<(f64, f64, usize)>> = candidates
                .iter()
                .map(|c| {
                    if !streaming {
                        return None;
                    }
                    prev.get(c.items())
                        .and_then(|n| n.moments.as_ref())
                        .map(BlockMoments::fold)
                })
                .collect();
            let misses: Vec<u32> = (0..candidates.len() as u32)
                .filter(|&i| folded[i as usize].is_none())
                .collect();
            stats.intersections += misses
                .iter()
                .filter(|&&i| candidates[i as usize].len() > 1)
                .count() as u64;
            let results = par_map_min_len_with(
                &misses,
                mean_units.max(1),
                PAR_MIN_WORK,
                ScratchSpace::new,
                |scratch, &i| evaluate_with(index, prev, &candidates[i as usize], scratch),
            );
            let mut fresh: FxHashMap<u32, (f64, f64, usize)> = FxHashMap::default();
            for (&i, (vector, esup, var, count)) in misses.iter().zip(results) {
                fresh.insert(i, (esup, var, count));
                self.current
                    .insert(candidates[i as usize].items().to_vec(), vector);
            }
            for i in 0..candidates.len() as u32 {
                let (esup, var, count) = match folded[i as usize] {
                    Some(m) => m,
                    None => fresh[&i],
                };
                record(&mut out, esup, var, count);
            }
        }
        self.note_memo_peak();
        stats.peak_structure_nodes = stats.peak_structure_nodes.max(self.peak_memo_units);
        stats.peak_memo_bytes = stats.peak_memo_bytes.max(self.peak_memo_bytes);
        out
    }

    fn prob_vectors(&mut self, candidates: &[Itemset], stats: &mut MinerStats) -> Vec<Vec<f64>> {
        if let Some(state) = self.sharded.as_ref() {
            return sharded_prob_vectors(&self.index, state, candidates, stats);
        }
        candidates
            .iter()
            .map(|c| match self.current.get(c.items()) {
                Some(v) => v.nonzero_probs(),
                None => {
                    // Cold path (direct trait users): a from-scratch fold
                    // costs `len − 1` intersections; charge them.
                    stats.intersections += c.len().saturating_sub(1) as u64;
                    self.vector_for(c).nonzero_probs()
                }
            })
            .collect()
    }

    fn finish_level(&mut self, frequent: &[FrequentItemset]) {
        if let Some(state) = self.sharded.as_mut() {
            sharded_finish_level(state, frequent, self.streaming, self.stamp);
            return;
        }
        if self.streaming {
            // Streaming mode: survivors accumulate into the retained
            // cross-refresh memo with fresh block partials; reused
            // frequent itemsets (never re-evaluated this refresh) keep
            // their patched node and just renew the GC stamp.
            for f in frequent {
                if let Some(v) = self.current.remove(f.itemset.items()) {
                    let moments = BlockMoments::of(&v);
                    self.prev.insert(
                        f.itemset.items().to_vec(),
                        PrevNode {
                            vector: v,
                            mass: f.expected_support,
                            moments: Some(moments),
                            stamp: self.stamp,
                        },
                    );
                } else if let Some(node) = self.prev.get_mut(f.itemset.items()) {
                    node.stamp = self.stamp;
                }
            }
            self.current = FxHashMap::default();
            self.note_memo_peak();
            return;
        }
        let mut next = FxHashMap::default();
        for f in frequent {
            if let Some(v) = self.current.remove(f.itemset.items()) {
                next.insert(
                    f.itemset.items().to_vec(),
                    PrevNode {
                        vector: v,
                        mass: f.expected_support,
                        moments: None,
                        stamp: 0,
                    },
                );
            }
        }
        self.prev = next;
        self.current = FxHashMap::default();
    }

    fn peak_memo_bytes(&self) -> u64 {
        self.peak_memo_bytes
    }

    fn shard_plan(&self) -> ShardPlan {
        self.index.shard_plan()
    }

    fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    fn evaluate_shard(
        &mut self,
        candidates: &[Itemset],
        shard: usize,
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> ShardPartial {
        if self.sharded.is_none() {
            debug_assert_eq!(shard, 0, "unsharded backend has exactly one shard");
            let level = self.evaluate(candidates, want, stats);
            return ShardPartial {
                shard,
                payload: ShardPayload::Level(level),
            };
        }
        if !self.scan_charged {
            stats.scans += 1;
            self.scan_charged = true;
        }
        let state = self.sharded.as_ref().expect("checked above");
        let frags = candidates
            .iter()
            .map(|c| sharded_candidate_shard(&self.index, &state.prev, c, shard, stats))
            .collect();
        ShardPartial {
            shard,
            payload: ShardPayload::Fragments(frags),
        }
    }

    fn merge_shards(
        &mut self,
        candidates: &[Itemset],
        partials: Vec<ShardPartial>,
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport {
        if self.sharded.is_none() {
            return merge_single_level(partials);
        }
        let state = self.sharded.as_mut().expect("checked above");
        let out = fragment_merge_shards(state, candidates, partials, want);
        self.note_sharded_peak(stats);
        out
    }

    fn apply_window_step(
        &mut self,
        step: &WindowStep,
        probe: &StepProbe,
        stats: &mut MinerStats,
    ) -> bool {
        // The index maintains itself byte-identically to a rebuild over
        // the stepped window. The retained prefix memo is *patched*, not
        // dropped: each live node whose itemset probability changed at a
        // dirty tid gets its touched chunks rewritten in place and its
        // cached block partials re-folded — bit-identical to the cold
        // fold the next refresh would otherwise pay. Peak memory counters
        // deliberately survive: they track the engine lifetime.
        self.index.apply_step(step);
        let keep = self.stamp;
        self.stamp += 1;
        let first = !self.streaming;
        self.streaming = true;
        if let Some(state) = self.sharded.as_mut() {
            if first {
                // Batch-era fragment memo: nodes carry stamp 0 and were
                // never part of a stamped frequent stream — drop them
                // without charging the patch counters.
                *state = ShardedState::default();
            } else {
                patch_sharded_nodes(&self.index, state, probe, keep, stats);
            }
        } else if first {
            self.prev = FxHashMap::default();
            self.current = FxHashMap::default();
        } else {
            self.prev.retain(|items, node| {
                if node.stamp != keep {
                    // Fell out of the last refresh's frequent stream.
                    return false;
                }
                let updates = itemset_updates(probe, items);
                if updates.is_empty() {
                    return true;
                }
                let Some(moments) = node.moments.as_mut() else {
                    stats.memo_rebuilt += 1;
                    return false;
                };
                if !patch_beats_rebuild(updates.len(), node.vector.len()) {
                    stats.memo_rebuilt += 1;
                    return false;
                }
                node.vector.apply_tid_delta(&updates);
                moments.refresh(&node.vector, &touched_block_keys(&updates));
                node.mass = moments.fold().0;
                stats.memo_patched += 1;
                true
            });
        }
        true
    }
}

/// One entry of the [`DiffsetEngine`] memo: a frequent itemset's cached
/// statistics plus whichever representation of its prob-vector is smaller —
/// the full tidset, or the delta against its own prefix.
struct MemoNode {
    repr: NodeRepr,
    esup: f64,
    var: f64,
    count: usize,
    /// Per-4096-tid-block partials of the node's *resolved* vector
    /// (`Some` in streaming mode only): the fixed summation shape that
    /// lets a window step re-fold only the touched blocks and land
    /// cached `(esup, var, count)` bit-identical to a cold re-fold.
    moments: Option<BlockMoments>,
    /// Cross-refresh GC stamp (streaming mode; 0 in batch mode).
    stamp: u64,
}

enum NodeRepr {
    /// Materialized vector (chosen when it is smaller than the delta —
    /// the sparse-child regime, and the chain terminator for resolution).
    Tidset(ProbVector),
    /// Delta against the prefix node (`items[..k-1]`); survivors gather
    /// `postings(items[k-1])` through [`ProbVector::apply_diff`].
    Diff(DiffVector),
}

impl MemoNode {
    fn mem_bytes(&self) -> usize {
        let repr = match &self.repr {
            NodeRepr::Tidset(v) => v.mem_bytes(),
            NodeRepr::Diff(d) => d.mem_bytes(),
        };
        repr + self.moments.as_ref().map_or(0, BlockMoments::mem_bytes)
    }
}

/// The memory-optimized columnar backend: per-item postings + a delta-chain
/// prefix memo (dEclat for uncertain data). See the module docs.
///
/// Unlike [`VerticalEngine`], which keeps whole prob-vectors for one full
/// level of frequent prefixes, this memo retains **every** frequent itemset
/// seen so far — but (on dense data) each as a small [`DiffVector`]. The
/// chain bottoms out at the index's own postings (or at a node that chose
/// the tidset representation), so reconstruction never rescans the
/// database. Reconstruction is amortized per *prefix group*: candidates of
/// a level share `(k−1)`-prefixes, and each group resolves its prefix
/// vector once, transiently.
pub struct DiffsetEngine {
    index: VerticalIndex,
    /// Every retained frequent itemset, keyed by its item array. Ancestors
    /// of any retained delta node are themselves retained (Apriori
    /// closure: every prefix of a frequent itemset is frequent).
    memo: FxHashMap<Vec<ItemId>, MemoNode>,
    /// Nodes for the current level's candidates, pending `finish_level`.
    current: FxHashMap<Vec<ItemId>, MemoNode>,
    /// Per-shard delta-chain memo, present iff the index is sharded (see
    /// [`DiffShardedState`]); `memo`/`current` stay empty then.
    sharded: Option<DiffShardedState>,
    /// Whether the one-time index build has been charged to `stats.scans`.
    scan_charged: bool,
    /// Peak memo bytes ([`SupportEngine::peak_memo_bytes`]).
    peak_memo_bytes: u64,
    /// Peak memo units (a dropped tid or a `(tid, prob)` entry each count
    /// one), reported through `MinerStats::peak_structure_nodes`.
    peak_memo_units: u64,
    /// True once the first window step was applied: the delta-chain memo
    /// is retained across refreshes from then on and point-patched per
    /// step.
    streaming: bool,
    /// Streaming refresh stamp — same protocol as [`VerticalEngine`].
    stamp: u64,
}

/// A resolved prefix vector: borrowed straight from the index or a tidset
/// node when possible, owned when reconstructed through a delta chain.
enum Resolved<'a> {
    Borrowed(&'a ProbVector),
    Owned(ProbVector),
}

impl Resolved<'_> {
    fn get(&self) -> &ProbVector {
        match self {
            Resolved::Borrowed(v) => v,
            Resolved::Owned(v) => v,
        }
    }
}

/// Reconstructs the prob-vector of `items` from the delta-chain memo,
/// counting each `apply_diff` step into `applies` (they are
/// intersection-equivalent work). Falls back to a from-scratch postings
/// fold for itemsets the memo never saw (direct trait users).
fn resolve<'a>(
    index: &'a VerticalIndex,
    memo: &'a FxHashMap<Vec<ItemId>, MemoNode>,
    items: &[ItemId],
    applies: &mut u64,
) -> Resolved<'a> {
    match items.len() {
        0 => Resolved::Owned(ProbVector::new()),
        1 => Resolved::Borrowed(index.postings(items[0])),
        k => match memo.get(items) {
            Some(node) => match &node.repr {
                NodeRepr::Tidset(v) => Resolved::Borrowed(v),
                NodeRepr::Diff(d) => {
                    let parent = resolve(index, memo, &items[..k - 1], applies);
                    *applies += 1;
                    Resolved::Owned(parent.get().apply_diff(d, index.postings(items[k - 1])))
                }
            },
            None => {
                // Cold fallback (direct trait users): a from-scratch fold
                // costs `len − 1` intersections; charge them.
                *applies += items.len().saturating_sub(1) as u64;
                Resolved::Owned(index.prob_vector(items))
            }
        },
    }
}

/// Per-candidate output of one prefix group's evaluation.
struct DiffEval {
    esup: f64,
    var: f64,
    count: usize,
    /// `None` when pushdown ruled the candidate out (nothing memoized).
    node: Option<MemoNode>,
}

impl DiffsetEngine {
    /// Builds the index (the run's single database pass) and empty memos,
    /// under the default shard plan.
    pub fn new(db: &UncertainDatabase) -> Self {
        Self::with_plan(db, ShardPlan::for_transactions(db.num_transactions()))
    }

    /// Like [`DiffsetEngine::new`] with an explicit shard plan. Sharded
    /// evaluation engages iff the plan yields more than one shard; results
    /// are bit-identical either way, and the memo keeps its delta-chain
    /// memory edge (the chains split per shard — see `DiffShardedState`).
    pub fn with_plan(db: &UncertainDatabase, plan: ShardPlan) -> Self {
        let index = VerticalIndex::build_with_plan(db, plan);
        let sharded = index.is_sharded().then(DiffShardedState::default);
        DiffsetEngine {
            index,
            memo: FxHashMap::default(),
            current: FxHashMap::default(),
            sharded,
            scan_charged: false,
            peak_memo_bytes: 0,
            peak_memo_units: 0,
            streaming: false,
            stamp: 0,
        }
    }

    fn note_sharded_peak(&mut self, stats: &mut MinerStats) {
        if let Some(state) = self.sharded.as_ref() {
            let (units, bytes) = diff_sharded_memo_peak(state);
            self.peak_memo_units = self.peak_memo_units.max(units);
            self.peak_memo_bytes = self.peak_memo_bytes.max(bytes);
        }
        stats.peak_structure_nodes = stats.peak_structure_nodes.max(self.peak_memo_units);
        stats.peak_memo_bytes = stats.peak_memo_bytes.max(self.peak_memo_bytes);
    }

    /// Longest run a single group may span. Longer same-prefix runs are
    /// split so one giant group (a candidate-heavy final level with few
    /// prefixes) cannot serialize the parallel map; each extra split only
    /// re-resolves the shared prefix once.
    const MAX_GROUP: usize = 64;

    /// Splits `candidates` into runs (of at most [`Self::MAX_GROUP`])
    /// sharing length and `(k−1)`-prefix. Apriori's join emits same-prefix
    /// candidates contiguously, so this is a single linear pass;
    /// non-contiguous repeats merely resolve their prefix more than once.
    fn prefix_groups(candidates: &[Itemset]) -> Vec<(usize, usize)> {
        let mut groups = Vec::new();
        let mut start = 0usize;
        for i in 1..=candidates.len() {
            let split = i == candidates.len() || i - start >= Self::MAX_GROUP || {
                let (a, b) = (&candidates[i - 1], &candidates[i]);
                a.len() != b.len()
                    || a.len() <= 1
                    || a.items()[..a.len() - 1] != b.items()[..b.len() - 1]
            };
            if split {
                groups.push((start, i));
                start = i;
            }
        }
        groups
    }

    /// Evaluates one prefix group: resolves the shared prefix vector once,
    /// then runs `diff_extend_into` per candidate through the worker's
    /// scratch — a candidate the pushdown rules out costs **no**
    /// allocation; survivors export whichever memo representation is
    /// smaller, exactly sized. Returns the per-candidate results plus the
    /// intersection-equivalent work performed (one per `diff_extend` or
    /// `apply_diff`; cached hits cost none).
    fn evaluate_group(
        &self,
        candidates: &[Itemset],
        want: StatRequest,
        scratch: &mut ScratchSpace,
    ) -> (Vec<DiffEval>, u64) {
        let mut work = 0u64;
        let n = self.index.num_transactions();
        let mut out = Vec::with_capacity(candidates.len());
        // All group members share a length and (for k > 1) a prefix.
        let k = candidates[0].len();
        if k <= 1 {
            for c in candidates {
                let (esup, var, count, node) = match c.items().first() {
                    Some(&item) => {
                        let postings = self.index.postings(item);
                        let (esup, var) = postings.moments();
                        // Singletons live in the index; no memo entry.
                        (esup, var, postings.len(), None)
                    }
                    None => (0.0, 0.0, 0, None),
                };
                out.push(DiffEval {
                    esup,
                    var,
                    count,
                    node,
                });
            }
            return (out, work);
        }
        // Re-evaluated itemsets (direct trait users, repeated runs) are
        // served wholly from the cached per-node statistics.
        if let Some(cached) = candidates
            .iter()
            .map(|c| {
                self.current
                    .get(c.items())
                    .or_else(|| self.memo.get(c.items()))
            })
            .collect::<Option<Vec<&MemoNode>>>()
        {
            for node in cached {
                out.push(DiffEval {
                    esup: node.esup,
                    var: node.var,
                    count: node.count,
                    node: None,
                });
            }
            return (out, work);
        }
        let prefix = resolve(
            &self.index,
            &self.memo,
            &candidates[0].items()[..k - 1],
            &mut work,
        );
        let prefix = prefix.get();
        for c in candidates {
            let last = c.items()[k - 1];
            let postings = self.index.postings(last);
            work += 1;
            // Streaming runs fold through the block-partial kernel so the
            // retained node carries the fixed summation shape a window
            // step patches; both kernels land bit-identical moments.
            let (blocks, esup, var, count) = if self.streaming {
                let (b, esup, var, count) = prefix.diff_extend_blocks_into(postings, scratch);
                (Some(b), esup, var, count)
            } else {
                let (esup, var, count) = prefix.diff_extend_into(postings, scratch);
                (None, esup, var, count)
            };
            let hopeless = want.min_esup.is_some_and(|t| esup < t)
                || want.min_count.is_some_and(|t| (count as u64) < t);
            let node = if hopeless {
                None // nothing exported: the ruled-out candidate cost no allocation
            } else {
                // dEclat's per-node choice: keep whichever representation
                // is smaller. The tidset costs lanes + chunk directory
                // (estimated from the survivor count); the diffset 4 bytes
                // per dropped tid.
                let tidset_bytes = ProbVector::estimate_mem_bytes(count, n);
                let diff_bytes = std::mem::size_of_val(scratch.dropped());
                if diff_bytes <= tidset_bytes {
                    Some(MemoNode {
                        repr: NodeRepr::Diff(scratch.export_diff()),
                        esup,
                        var,
                        count,
                        moments: blocks,
                        stamp: 0,
                    })
                } else {
                    work += 1;
                    let mut v = prefix.apply_dropped(scratch.dropped(), postings);
                    v.shrink_to_fit();
                    Some(MemoNode {
                        repr: NodeRepr::Tidset(v),
                        esup,
                        var,
                        count,
                        moments: blocks,
                        stamp: 0,
                    })
                }
            };
            out.push(DiffEval {
                esup,
                var,
                count,
                node,
            });
        }
        (out, work)
    }

    fn note_memo_peak(&mut self) {
        let (mut units, mut bytes) = (0usize, 0usize);
        for node in self.memo.values().chain(self.current.values()) {
            bytes += node.mem_bytes();
            units += match &node.repr {
                NodeRepr::Tidset(v) => v.mem_units(),
                NodeRepr::Diff(d) => d.len(),
            };
        }
        self.peak_memo_bytes = self.peak_memo_bytes.max(bytes as u64);
        self.peak_memo_units = self.peak_memo_units.max(units as u64);
    }
}

impl SupportEngine for DiffsetEngine {
    fn name(&self) -> &'static str {
        EngineKind::Diffset.name()
    }

    fn evaluate(
        &mut self,
        candidates: &[Itemset],
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport {
        if !self.scan_charged {
            // The whole run costs one database pass: the index build.
            stats.scans += 1;
            self.scan_charged = true;
        }
        if self.sharded.is_some() {
            let state = self.sharded.as_mut().expect("checked above");
            let out = diff_sharded_evaluate(&self.index, state, candidates, want, stats);
            self.note_sharded_peak(stats);
            return out;
        }
        // Intersection-equivalent work (one diff_extend per non-singleton
        // candidate — stats + delta in a single pass, so pushdown never
        // pays a second intersection — plus apply_diff chain resolution
        // and tidset materialization) is counted per group below.

        let n = candidates.len();
        let mut out = LevelSupport {
            esup: vec![0.0; n],
            variance: want.variance.then(|| vec![0.0; n]),
            count: want.count.then(|| vec![0u64; n]),
        };

        let groups = Self::prefix_groups(candidates);
        // Gate and balance on *candidates*, not groups: the weight folds
        // the mean group size back in so this backend fans out at the same
        // scale as the vertical engine, and `prefix_groups` splits long
        // runs so one giant final-level group cannot serialize the map.
        let mean_units = self.index.mean_posting_units();
        let mean_group = candidates.len().div_ceil(groups.len().max(1));
        let weight = mean_units.max(1).saturating_mul(mean_group.max(1));
        let results = par_map_min_len_with(
            &groups,
            weight,
            PAR_MIN_WORK,
            ScratchSpace::new,
            |scratch, &(s, e)| self.evaluate_group(&candidates[s..e], want, scratch),
        );

        for (&(s, _), (evals, work)) in groups.iter().zip(results) {
            stats.intersections += work;
            for (offset, eval) in evals.into_iter().enumerate() {
                let i = s + offset;
                out.esup[i] = eval.esup;
                if let Some(vs) = out.variance.as_mut() {
                    vs[i] = eval.var;
                }
                if let Some(cs) = out.count.as_mut() {
                    cs[i] = eval.count as u64;
                }
                if let Some(node) = eval.node {
                    self.current.insert(candidates[i].items().to_vec(), node);
                }
            }
        }
        self.note_memo_peak();
        stats.peak_structure_nodes = stats.peak_structure_nodes.max(self.peak_memo_units);
        stats.peak_memo_bytes = stats.peak_memo_bytes.max(self.peak_memo_bytes);
        out
    }

    fn prob_vectors(&mut self, candidates: &[Itemset], stats: &mut MinerStats) -> Vec<Vec<f64>> {
        if let Some(state) = self.sharded.as_ref() {
            return diff_sharded_prob_vectors(&self.index, state, candidates, stats);
        }
        let mut extra = 0u64;
        // Candidates arrive sorted, so same-prefix runs are contiguous: a
        // one-entry cache amortizes the chain walk per prefix group like
        // `evaluate` does, instead of re-resolving it per candidate.
        let mut cached: Option<(Vec<ItemId>, ProbVector)> = None;
        // Reused across candidates: each reconstruction overwrites it
        // (capacity retained), so only the returned probs are allocated.
        let mut child = ProbVector::new();
        let out = candidates
            .iter()
            .map(|c| match self.current.get(c.items()) {
                Some(node) => match &node.repr {
                    NodeRepr::Tidset(v) => v.nonzero_probs(),
                    NodeRepr::Diff(d) => {
                        let k = c.len();
                        let prefix_items = &c.items()[..k - 1];
                        if cached.as_ref().is_none_or(|(p, _)| p != prefix_items) {
                            let resolved =
                                resolve(&self.index, &self.memo, prefix_items, &mut extra)
                                    .get()
                                    .clone();
                            cached = Some((prefix_items.to_vec(), resolved));
                        }
                        let (_, prefix) = cached.as_ref().expect("just cached");
                        extra += 1;
                        prefix.apply_diff_into(
                            d,
                            self.index.postings(c.items()[k - 1]),
                            &mut child,
                        );
                        child.nonzero_probs()
                    }
                },
                None => {
                    // Cold path (direct trait users): a from-scratch fold
                    // costs `len − 1` intersections; charge them.
                    extra += c.len().saturating_sub(1) as u64;
                    self.index.prob_vector(c.items()).nonzero_probs()
                }
            })
            .collect();
        stats.intersections += extra;
        out
    }

    fn finish_level(&mut self, frequent: &[FrequentItemset]) {
        if let Some(state) = self.sharded.as_mut() {
            diff_sharded_finish_level(state, frequent, self.streaming, self.stamp);
            return;
        }
        // Frequent nodes join the persistent delta-chain memo; the rest of
        // the level is dropped. Every ancestor a retained delta needs is
        // already in the memo (each prefix of a frequent itemset was itself
        // frequent on an earlier level). In streaming mode every frequent
        // itemset of the refresh — freshly evaluated or served from the
        // retained memo — renews the GC stamp.
        for f in frequent {
            if let Some(mut node) = self.current.remove(f.itemset.items()) {
                node.stamp = self.stamp;
                self.memo.insert(f.itemset.items().to_vec(), node);
            } else if self.streaming {
                if let Some(node) = self.memo.get_mut(f.itemset.items()) {
                    node.stamp = self.stamp;
                }
            }
        }
        self.current = FxHashMap::default();
        if self.streaming {
            self.note_memo_peak();
        }
    }

    fn peak_memo_bytes(&self) -> u64 {
        self.peak_memo_bytes
    }

    fn shard_plan(&self) -> ShardPlan {
        self.index.shard_plan()
    }

    fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    fn evaluate_shard(
        &mut self,
        candidates: &[Itemset],
        shard: usize,
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> ShardPartial {
        if self.sharded.is_none() {
            debug_assert_eq!(shard, 0, "unsharded backend has exactly one shard");
            let level = self.evaluate(candidates, want, stats);
            return ShardPartial {
                shard,
                payload: ShardPayload::Level(level),
            };
        }
        if !self.scan_charged {
            stats.scans += 1;
            self.scan_charged = true;
        }
        let state = self.sharded.as_ref().expect("checked above");
        let frags = candidates
            .iter()
            .map(|c| diff_sharded_candidate_shard(&self.index, &state.memo, c, shard, stats))
            .collect();
        ShardPartial {
            shard,
            payload: ShardPayload::Fragments(frags),
        }
    }

    fn merge_shards(
        &mut self,
        candidates: &[Itemset],
        partials: Vec<ShardPartial>,
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport {
        if self.sharded.is_none() {
            return merge_single_level(partials);
        }
        let state = self.sharded.as_mut().expect("checked above");
        let out = diff_fragment_merge_shards(state, candidates, partials, want);
        self.note_sharded_peak(stats);
        out
    }

    fn apply_window_step(
        &mut self,
        step: &WindowStep,
        probe: &StepProbe,
        stats: &mut MinerStats,
    ) -> bool {
        // Same contract as the vertical engine: the index self-maintains
        // byte-identically to a rebuild, and the retained delta-chain
        // memo is *patched* — each live node re-decides the dirty tids'
        // membership in its delta (or rewrites the dirty chunks of its
        // tidset) and re-folds only the touched summation blocks, so the
        // cached `(esup, var, count)` stay bit-identical to a cold
        // re-fold over the stepped window.
        self.index.apply_step(step);
        let keep = self.stamp;
        self.stamp += 1;
        let first = !self.streaming;
        self.streaming = true;
        if let Some(state) = self.sharded.as_mut() {
            if first {
                *state = DiffShardedState::default();
            } else {
                patch_diff_sharded_nodes(&self.index, state, probe, keep, stats);
            }
        } else if first {
            // Batch-era memo: nodes carry no block partials (and stamp 0)
            // — drop them without charging the patch counters.
            self.memo = FxHashMap::default();
            self.current = FxHashMap::default();
        } else {
            patch_diff_nodes(&self.index, &mut self.memo, probe, keep, stats);
        }
        true
    }
}

/// Reconstructs the fragment of `items` restricted to the listed summation
/// blocks (ascending block keys) from the delta-chain memo: the
/// block-restricted analog of [`resolve`]. Restriction commutes with every
/// chain step — `restrict(parent ∖ dropped) = restrict(parent) ∖
/// restrict(dropped)` — and [`ProbVector::apply_dropped`]'s lockstep
/// membership walk requires its dropped list to contain only tids present
/// in `self`, which is exactly why each chain step filters the dropped
/// tids to the requested blocks. Falls back to a block-restricted postings
/// fold for itemsets the memo does not hold.
fn resolve_restricted(
    index: &VerticalIndex,
    memo: &FxHashMap<Vec<ItemId>, MemoNode>,
    items: &[ItemId],
    blocks: &[u32],
) -> ProbVector {
    match items.len() {
        0 => ProbVector::new(),
        1 => index.postings(items[0]).restrict_to_blocks(blocks),
        k => match memo.get(items) {
            Some(node) => match &node.repr {
                NodeRepr::Tidset(v) => v.restrict_to_blocks(blocks),
                NodeRepr::Diff(d) => {
                    let parent = resolve_restricted(index, memo, &items[..k - 1], blocks);
                    let dropped: Vec<u32> = d
                        .dropped()
                        .iter()
                        .copied()
                        .filter(|&t| blocks.binary_search(&BlockMoments::block_of_tid(t)).is_ok())
                        .collect();
                    parent.apply_dropped(&dropped, index.postings(items[k - 1]))
                }
            },
            None => {
                let mut acc = index.postings(items[0]).restrict_to_blocks(blocks);
                for &item in &items[1..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc = acc.intersect(index.postings(item));
                }
                acc
            }
        },
    }
}

/// The diffset backend's unsharded patch walk. Keys are visited parents
/// before children (ascending length, then lexicographic), each node
/// temporarily removed so its delta can re-resolve through its
/// *already-patched* ancestors, then reinserted. A `Diff` node first
/// re-decides its delta membership at every dirty tid where a member
/// item's probability moved — `t` is dropped iff the new prefix keeps it
/// while the new child zeroes it; membership can flip even when the child
/// value does not move, but never at a tid whose member probabilities all
/// held still — and then, only when some child value actually changed,
/// re-materializes the touched blocks' fragment through
/// [`resolve_restricted`] and re-folds exactly those blocks of its
/// retained partials; a `Tidset` node rewrites the dirty chunks in place.
/// Either way the cached `(esup, var, count)` come out of
/// [`BlockMoments::fold`], bit-identical to a cold re-fold.
fn patch_diff_nodes(
    index: &VerticalIndex,
    memo: &mut FxHashMap<Vec<ItemId>, MemoNode>,
    probe: &StepProbe,
    keep: u64,
    stats: &mut MinerStats,
) {
    let mut keys: Vec<Vec<ItemId>> = memo.keys().cloned().collect();
    keys.sort_unstable_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    for items in keys {
        let Some(mut node) = memo.remove(&items) else {
            continue;
        };
        if node.stamp != keep {
            // Fell out of the last refresh's frequent stream.
            continue;
        }
        let updates = itemset_updates(probe, &items);
        let is_diff = matches!(node.repr, NodeRepr::Diff(_));
        if updates.is_empty() && !is_diff {
            memo.insert(items, node);
            continue;
        }
        if !updates.is_empty() {
            let hopeless =
                node.moments.is_none() || !patch_beats_rebuild(updates.len(), node.count);
            if hopeless {
                stats.memo_rebuilt += 1;
                continue;
            }
        }
        let k = items.len();
        let (prefix_items, last) = (&items[..k - 1], items[k - 1]);
        match &mut node.repr {
            NodeRepr::Tidset(v) => {
                v.apply_tid_delta(&updates);
                let blocks = touched_block_keys(&updates);
                let moments = node.moments.as_mut().expect("checked above");
                moments.refresh(v, &blocks);
                (node.esup, node.var, node.count) = moments.fold();
                stats.memo_patched += 1;
            }
            NodeRepr::Diff(d) => {
                let membership: Vec<(u32, bool)> = probe
                    .candidate_slots(&items)
                    .iter()
                    .map(|&s| {
                        let drop = probe.new_prob(s, prefix_items) > 0.0
                            && probe.new_prob(s, &items) == 0.0;
                        (probe.tid(s), drop)
                    })
                    .collect();
                d.apply_tid_delta(&membership);
                if !updates.is_empty() {
                    let blocks = touched_block_keys(&updates);
                    let parent = resolve_restricted(index, memo, prefix_items, &blocks);
                    let dropped: Vec<u32> = d
                        .dropped()
                        .iter()
                        .copied()
                        .filter(|&t| blocks.binary_search(&BlockMoments::block_of_tid(t)).is_ok())
                        .collect();
                    let frag = parent.apply_dropped(&dropped, index.postings(last));
                    let moments = node.moments.as_mut().expect("checked above");
                    moments.refresh(&frag, &blocks);
                    (node.esup, node.var, node.count) = moments.fold();
                    stats.memo_patched += 1;
                }
            }
        }
        memo.insert(items, node);
    }
}

/// The U-Eclat recurrence as a free function, so the parallel candidate map
/// can borrow the index and memo without aliasing `&mut VerticalEngine`.
fn vector_for(
    index: &VerticalIndex,
    prev: &FxHashMap<Vec<ItemId>, PrevNode>,
    candidate: &Itemset,
) -> ProbVector {
    let items = candidate.items();
    match items.len() {
        0 => ProbVector::new(),
        1 => index.postings(items[0]).clone(),
        k => {
            let (prefix, last) = (&items[..k - 1], items[k - 1]);
            let last_postings = index.postings(last);
            if prefix.len() == 1 {
                index.postings(prefix[0]).intersect(last_postings)
            } else if let Some(node) = prev.get(prefix) {
                node.vector.intersect(last_postings)
            } else {
                index.prob_vector(items)
            }
        }
    }
}

/// [`vector_for`] fused with its statistics, run through a per-worker
/// scratch: one `intersect_into` pass yields `(vector, esup, var, count)`
/// with a single exactly-sized allocation (the export) — the hot path of
/// [`VerticalEngine::evaluate`]. Falls back to the allocating fold for
/// cold prefixes (direct trait users), like [`vector_for`].
fn evaluate_with(
    index: &VerticalIndex,
    prev: &FxHashMap<Vec<ItemId>, PrevNode>,
    candidate: &Itemset,
    scratch: &mut ScratchSpace,
) -> (ProbVector, f64, f64, usize) {
    let items = candidate.items();
    match items.len() {
        0 => (ProbVector::new(), 0.0, 0.0, 0),
        1 => {
            let postings = index.postings(items[0]);
            let (esup, var) = postings.moments();
            (postings.clone(), esup, var, postings.len())
        }
        k => {
            let (prefix, last) = (&items[..k - 1], items[k - 1]);
            let last_postings = index.postings(last);
            let base = if prefix.len() == 1 {
                Some(index.postings(prefix[0]))
            } else {
                prev.get(prefix).map(|n| &n.vector)
            };
            match base {
                Some(v) => {
                    let (esup, var, count) = v.intersect_into(last_postings, scratch);
                    (scratch.export(), esup, var, count)
                }
                None => {
                    let mut v = index.prob_vector(items);
                    v.shrink_to_fit(); // it enters the memo; drop fold slack
                    let (esup, var) = v.moments();
                    let count = v.len();
                    (v, esup, var, count)
                }
            }
        }
    }
}

/// One pushdown visit of a candidate. Returns its moments, the exported
/// memo vector when every threshold keeps it alive, and whether a *second*
/// intersection walk was spent on it (for the work counter).
///
/// Two deterministic shapes, chosen by what is provable:
///
/// * **Bounded** (an `esup_bound` and a memoized prefix whose mass is on
///   record): a stats-only [`ProbVector::intersect_stats_bounded`] walk
///   first — hopeless candidates stop at the first summation block that
///   rules them out and touch no output buffers at all, which is what
///   makes candidate-heavy final levels cheap — then, only for survivors,
///   an immediate stats-free [`ProbVector::intersect_materialize_into`]
///   over the operands the stats walk just streamed (still cache-hot).
/// * **Unbounded** (no threshold, or a singleton prefix with no recorded
///   mass — the pair level): one fused [`ProbVector::intersect_into`] walk
///   yields moments and vector together; only survivors pay the export.
///
/// `fused` forces bounded candidates onto the unbounded single-walk shape
/// too — the caller's survival pilot sets it on levels where most
/// candidates live, so the stats-first shape's second walk per survivor is
/// not worth the early bails it buys. The two shapes return bit-identical
/// moments and vectors for every surviving candidate.
///
/// Falls back to the allocating fold for cold prefixes, like
/// [`vector_for`].
#[allow(clippy::too_many_arguments)]
fn evaluate_pushdown(
    index: &VerticalIndex,
    prev: &FxHashMap<Vec<ItemId>, PrevNode>,
    candidate: &Itemset,
    scratch: &mut ScratchSpace,
    esup_bound: Option<f64>,
    min_esup: Option<f64>,
    min_count: Option<u64>,
    fused: bool,
) -> ((f64, f64, usize), Option<ProbVector>, bool) {
    let survives = |m: &(f64, f64, usize)| {
        !(min_esup.is_some_and(|t| m.0 < t) || min_count.is_some_and(|t| (m.2 as u64) < t))
    };
    let items = candidate.items();
    match items.len() {
        0 => ((0.0, 0.0, 0), None, false),
        1 => {
            let postings = index.postings(items[0]);
            let (esup, var) = postings.moments();
            let m = (esup, var, postings.len());
            let vector = survives(&m).then(|| postings.clone());
            (m, vector, false)
        }
        k => {
            let (prefix, last) = (&items[..k - 1], items[k - 1]);
            let last_postings = index.postings(last);
            // Memoized prefixes carry their own expected support — the
            // bounded kernel's mass; a singleton prefix resolves from the
            // index but has no recorded mass, so it runs unbounded.
            let base = if prefix.len() == 1 {
                Some((index.postings(prefix[0]), None))
            } else {
                prev.get(prefix).map(|n| (&n.vector, Some(n.mass)))
            };
            match base {
                Some((v, mass)) => match (esup_bound, mass) {
                    (Some(t), Some(mass)) if !fused => {
                        let m = v.intersect_stats_bounded(last_postings, mass, t);
                        let vector = survives(&m).then(|| {
                            v.intersect_materialize_into(last_postings, scratch);
                            scratch.export()
                        });
                        let double_walked = vector.is_some();
                        (m, vector, double_walked)
                    }
                    _ => {
                        let m = v.intersect_into(last_postings, scratch);
                        let vector = survives(&m).then(|| scratch.export());
                        (m, vector, false)
                    }
                },
                None => {
                    let mut v = index.prob_vector(items);
                    v.shrink_to_fit(); // it enters the memo; drop fold slack
                    let (esup, var) = v.moments();
                    let m = (esup, var, v.len());
                    let vector = survives(&m).then_some(v);
                    (m, vector, false)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    fn pairs() -> Vec<Itemset> {
        let mut v = Vec::new();
        for a in 0..6u32 {
            for b in a + 1..6u32 {
                v.push(Itemset::from_items([a, b]));
            }
        }
        v
    }

    /// Wraps itemsets as frequent records for `finish_level`.
    fn as_frequent(sets: &[Itemset]) -> Vec<FrequentItemset> {
        sets.iter()
            .map(|s| FrequentItemset::with_esup(s.clone(), 0.0))
            .collect()
    }

    #[test]
    fn backends_agree_on_every_statistic() {
        let db = paper_table1();
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        for kind in EngineKind::ALL {
            let mut engine = build_engine(kind, &db);
            assert_eq!(engine.name(), kind.name());
            let mut stats = MinerStats::default();
            let l1 = engine.evaluate(
                &singletons,
                StatRequest {
                    variance: true,
                    count: true,
                    ..StatRequest::ESUP
                },
                &mut stats,
            );
            engine.finish_level(&as_frequent(&singletons));
            let l2 = engine.evaluate(&pairs(), StatRequest::WITH_COUNT, &mut stats);
            let qvecs = engine.prob_vectors(&pairs(), &mut stats);
            for (i, c) in singletons.iter().enumerate() {
                let (we, wv) = db.support_moments(c.items());
                assert!((l1.esup[i] - we).abs() < 1e-12, "{kind:?} {c}");
                assert!((l1.variance.as_ref().unwrap()[i] - wv).abs() < 1e-12);
            }
            for (i, c) in pairs().iter().enumerate() {
                let want = db.itemset_prob_vector(c.items());
                assert!((l2.esup[i] - db.expected_support(c.items())).abs() < 1e-12);
                assert_eq!(l2.count.as_ref().unwrap()[i] as usize, want.len());
                assert_eq!(qvecs[i], want, "{kind:?} {c}");
            }
        }
    }

    #[test]
    fn vertical_uses_one_scan_and_counts_intersections() {
        let db = paper_table1();
        let mut engine = VerticalEngine::new(&db);
        let mut stats = MinerStats::default();
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        engine.evaluate(&singletons, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&singletons));
        engine.evaluate(&pairs(), StatRequest::ESUP, &mut stats);
        assert_eq!(stats.scans, 1, "vertical pays exactly one database pass");
        assert_eq!(stats.intersections, pairs().len() as u64);
    }

    #[test]
    fn vertical_prefix_memo_survives_level_transition() {
        let db = paper_table1();
        let mut engine = VerticalEngine::new(&db);
        let mut stats = MinerStats::default();
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        engine.evaluate(&singletons, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&singletons));
        let p = pairs();
        engine.evaluate(&p, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&p));
        // {A,C,E} extends prefix {A,C} from memo.
        let triple = vec![Itemset::from_items([0, 2, 4])];
        let sup = engine.evaluate(&triple, StatRequest::ESUP, &mut stats);
        assert!((sup.esup[0] - db.expected_support(&[0, 2, 4])).abs() < 1e-12);
    }

    #[test]
    fn vertical_cold_lookup_falls_back_to_scratch_fold() {
        let db = paper_table1();
        let mut engine = VerticalEngine::new(&db);
        let mut stats = MinerStats::default();
        // No prior levels evaluated: a 3-itemset must still be correct.
        let triple = vec![Itemset::from_items([0, 2, 4])];
        let sup = engine.evaluate(&triple, StatRequest::WITH_COUNT, &mut stats);
        assert!((sup.esup[0] - db.expected_support(&[0, 2, 4])).abs() < 1e-12);
        assert_eq!(
            sup.count.as_ref().unwrap()[0] as usize,
            db.itemset_prob_vector(&[0, 2, 4]).len()
        );
    }

    #[test]
    fn vertical_pushdown_charges_one_walk_per_candidate() {
        let db = paper_table1();
        let mut engine = VerticalEngine::new(&db);
        let mut stats = MinerStats::default();
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        engine.evaluate(&singletons, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&singletons));
        // Pushdown evaluation is one fused walk per candidate — moments
        // and (for survivors) the memo vector from the same intersection —
        // so the charge is one per candidate whether everything survives…
        let p = pairs();
        engine.evaluate(&p, StatRequest::ESUP.with_min_esup(0.0), &mut stats);
        assert_eq!(stats.intersections, p.len() as u64);
        assert_eq!(engine.current.len(), p.len());

        // …or nothing does (the walk just bails early and exports nothing).
        let mut engine = VerticalEngine::new(&db);
        let mut stats = MinerStats::default();
        engine.evaluate(&singletons, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&singletons));
        engine.evaluate(&p, StatRequest::ESUP.with_min_esup(1e9), &mut stats);
        assert_eq!(stats.intersections, p.len() as u64);
        assert!(engine.current.is_empty());
    }

    #[test]
    fn diffset_agrees_with_vertical_across_levels() {
        let db = paper_table1();
        let mut v = VerticalEngine::new(&db);
        let mut d = DiffsetEngine::new(&db);
        let mut vs = MinerStats::default();
        let mut ds = MinerStats::default();
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        let want = StatRequest {
            variance: true,
            count: true,
            ..StatRequest::ESUP
        };
        for level in [singletons, pairs()] {
            let lv = v.evaluate(&level, want, &mut vs);
            let ld = d.evaluate(&level, want, &mut ds);
            for (i, c) in level.iter().enumerate() {
                assert_eq!(lv.esup[i].to_bits(), ld.esup[i].to_bits(), "{c}");
                assert_eq!(
                    lv.variance.as_ref().unwrap()[i].to_bits(),
                    ld.variance.as_ref().unwrap()[i].to_bits()
                );
                assert_eq!(lv.count.as_ref().unwrap()[i], ld.count.as_ref().unwrap()[i]);
            }
            assert_eq!(
                v.prob_vectors(&level, &mut vs),
                d.prob_vectors(&level, &mut ds)
            );
            v.finish_level(&as_frequent(&level));
            d.finish_level(&as_frequent(&level));
        }
        // Level 3 extends memoized pair prefixes through the delta chain.
        let triple = vec![Itemset::from_items([0, 2, 4])];
        let lv = v.evaluate(&triple, want, &mut vs);
        let ld = d.evaluate(&triple, want, &mut ds);
        assert_eq!(lv.esup[0].to_bits(), ld.esup[0].to_bits());
        assert!((ld.esup[0] - db.expected_support(&[0, 2, 4])).abs() < 1e-12);
        assert_eq!(
            v.prob_vectors(&triple, &mut vs),
            d.prob_vectors(&triple, &mut ds)
        );
    }

    #[test]
    fn diffset_pushdown_skips_memoization_but_reports_stats() {
        let db = paper_table1();
        let mut engine = DiffsetEngine::new(&db);
        let mut stats = MinerStats::default();
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        engine.evaluate(&singletons, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&singletons));
        let p = pairs();
        let sup = engine.evaluate(&p, StatRequest::ESUP.with_min_esup(1e9), &mut stats);
        // Statistics are still exact for every candidate…
        for (i, c) in p.iter().enumerate() {
            assert!((sup.esup[i] - db.expected_support(c.items())).abs() < 1e-12);
        }
        // …but nothing was memoized (and nothing materialized: one
        // diff_extend per pair, no apply_diff).
        assert!(engine.current.is_empty());
        assert_eq!(stats.intersections, p.len() as u64);
    }

    #[test]
    fn diffset_cold_lookup_falls_back_to_scratch_fold() {
        let db = paper_table1();
        let mut engine = DiffsetEngine::new(&db);
        let mut stats = MinerStats::default();
        let triple = vec![Itemset::from_items([0, 2, 4])];
        let sup = engine.evaluate(&triple, StatRequest::WITH_COUNT, &mut stats);
        assert!((sup.esup[0] - db.expected_support(&[0, 2, 4])).abs() < 1e-12);
        assert_eq!(
            sup.count.as_ref().unwrap()[0] as usize,
            db.itemset_prob_vector(&[0, 2, 4]).len()
        );
    }

    /// A dense fixture on which the delta memo must be strictly smaller
    /// than the vertical backend's whole-vector memo — the tentpole's
    /// reason to exist.
    #[test]
    fn diffset_memo_is_smaller_on_dense_data() {
        use ufim_core::Transaction;
        // 400 transactions, 8 items, ~every item in every transaction with
        // high probability: every extension keeps almost every tid, so
        // deltas are tiny while whole vectors stay ~N long.
        let transactions: Vec<Transaction> = (0..400)
            .map(|t| {
                let units: Vec<(u32, f64)> = (0..8u32)
                    .filter(|i| !(t + *i as usize).is_multiple_of(11))
                    .map(|i| (i, 0.6 + 0.05 * (i as f64)))
                    .collect();
                Transaction::new(units).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 8);
        let singletons: Vec<Itemset> = (0..8).map(Itemset::singleton).collect();
        let mut all_pairs = Vec::new();
        for a in 0..8u32 {
            for b in a + 1..8u32 {
                all_pairs.push(Itemset::from_items([a, b]));
            }
        }

        let mut v = VerticalEngine::new(&db);
        let mut d = DiffsetEngine::new(&db);
        let mut stats = MinerStats::default();
        for engine in [&mut v as &mut dyn SupportEngine, &mut d] {
            let l1 = engine.evaluate(&singletons, StatRequest::ESUP, &mut stats);
            assert!(l1.esup.iter().all(|&e| e > 0.0));
            engine.finish_level(&as_frequent(&singletons));
            engine.evaluate(&all_pairs, StatRequest::ESUP, &mut stats);
            engine.finish_level(&as_frequent(&all_pairs));
        }
        let (vb, db_) = (v.peak_memo_bytes(), d.peak_memo_bytes());
        assert!(vb > 0 && db_ > 0);
        assert!(
            db_ < vb,
            "diffset memo ({db_} B) must undercut tidset memo ({vb} B) on dense data"
        );
    }

    /// ~5k-transaction fixture wide enough to span several forced shards:
    /// item 0 is everywhere, the rest appear with varying gaps and
    /// probabilities.
    fn sharded_fixture() -> UncertainDatabase {
        use ufim_core::Transaction;
        let transactions: Vec<ufim_core::Transaction> = (0..5_000)
            .map(|t: usize| {
                let mut units: Vec<(u32, f64)> = vec![(0, 0.05 + 0.9 * ((t % 89) as f64 / 88.0))];
                for i in 1..6u32 {
                    if !(t * 7 + i as usize * 13).is_multiple_of(5) {
                        let p = 0.05 + 0.9 * (((t * 31 + i as usize * 17) % 97) as f64 / 96.0);
                        units.push((i, p));
                    }
                }
                Transaction::new(units).unwrap()
            })
            .collect();
        UncertainDatabase::with_num_items(transactions, 6)
    }

    #[test]
    fn sharded_columnar_engines_match_unsharded_bitwise() {
        let db = sharded_fixture();
        let want = StatRequest {
            variance: true,
            count: true,
            ..StatRequest::ESUP
        };
        let plan = ShardPlan::with_width_chunks(16); // 1024-tid shards → 5
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        let triples = vec![
            Itemset::from_items([0, 2, 4]),
            Itemset::from_items([1, 3, 5]),
        ];
        for kind in [EngineKind::Vertical, EngineKind::Diffset] {
            let mut a = build_engine(kind, &db);
            let mut b = build_engine_with_plan(kind, &db, plan);
            assert_eq!(a.num_shards(), 1, "{kind:?} default plan stays unsharded");
            assert_eq!(b.num_shards(), 5);
            let mut sa = MinerStats::default();
            let mut sb = MinerStats::default();
            for level in [singletons.clone(), pairs(), triples.clone()] {
                let la = a.evaluate(&level, want, &mut sa);
                let lb = b.evaluate(&level, want, &mut sb);
                for (i, c) in level.iter().enumerate() {
                    assert_eq!(la.esup[i].to_bits(), lb.esup[i].to_bits(), "{kind:?} {c}");
                    assert_eq!(
                        la.variance.as_ref().unwrap()[i].to_bits(),
                        lb.variance.as_ref().unwrap()[i].to_bits()
                    );
                    assert_eq!(la.count.as_ref().unwrap()[i], lb.count.as_ref().unwrap()[i]);
                }
                assert_eq!(
                    a.prob_vectors(&level, &mut sa),
                    b.prob_vectors(&level, &mut sb)
                );
                a.finish_level(&as_frequent(&level));
                b.finish_level(&as_frequent(&level));
            }
            assert!(sb.shards_evaluated > 0, "{kind:?} counted shard kernels");
            assert_eq!(sa.shards_evaluated, 0, "{kind:?} unsharded counts none");
        }
    }

    #[test]
    fn sharded_pushdown_is_decision_equivalent() {
        let db = sharded_fixture();
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        // Exact reference esups, no thresholds anywhere.
        let mut reference = build_engine(EngineKind::Vertical, &db);
        let mut s0 = MinerStats::default();
        reference.evaluate(&singletons, StatRequest::ESUP, &mut s0);
        reference.finish_level(&as_frequent(&singletons));
        let exact = reference.evaluate(&pairs(), StatRequest::ESUP, &mut s0);
        // A mid-range threshold keeps some pairs and rules out others.
        let mut sorted = exact.esup.clone();
        sorted.sort_by(f64::total_cmp);
        let t = sorted[sorted.len() / 2];
        for kind in [EngineKind::Vertical, EngineKind::Diffset] {
            let mut sharded = build_engine_with_plan(kind, &db, ShardPlan::with_width_chunks(4));
            let mut ss = MinerStats::default();
            sharded.evaluate(&singletons, StatRequest::ESUP, &mut ss);
            sharded.finish_level(&as_frequent(&singletons));
            let got = sharded.evaluate(&pairs(), StatRequest::ESUP.with_min_esup(t), &mut ss);
            for (i, c) in pairs().iter().enumerate() {
                // Zone-precheck-pruned candidates report a sound upper
                // bound (below the threshold); kept candidates report the
                // exact value — either way the verdict never flips.
                assert_eq!(got.esup[i] >= t, exact.esup[i] >= t, "{kind:?} {c}");
                if got.esup[i] >= t {
                    assert_eq!(
                        got.esup[i].to_bits(),
                        exact.esup[i].to_bits(),
                        "{kind:?} {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn seam_matches_evaluate_for_every_backend_and_width() {
        let db = sharded_fixture();
        let want = StatRequest {
            variance: true,
            count: true,
            ..StatRequest::ESUP
        };
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        for kind in EngineKind::ALL {
            // Width 1024 chunks exceeds the fixture: the degenerate
            // single-shard seam must also reproduce `evaluate`.
            for width in [1usize, 16, 1024] {
                let plan = ShardPlan::with_width_chunks(width);
                let mut a = build_engine_with_plan(kind, &db, plan);
                let mut b = build_engine_with_plan(kind, &db, plan);
                let mut sa = MinerStats::default();
                let mut sb = MinerStats::default();
                for level in [singletons.clone(), pairs()] {
                    let la = a.evaluate(&level, want, &mut sa);
                    let partials: Vec<ShardPartial> = (0..b.num_shards())
                        .map(|s| b.evaluate_shard(&level, s, want, &mut sb))
                        .collect();
                    let lb = b.merge_shards(&level, partials, want, &mut sb);
                    for (i, c) in level.iter().enumerate() {
                        assert_eq!(
                            la.esup[i].to_bits(),
                            lb.esup[i].to_bits(),
                            "{kind:?} w={width} {c}"
                        );
                        assert_eq!(
                            la.variance.as_ref().unwrap()[i].to_bits(),
                            lb.variance.as_ref().unwrap()[i].to_bits()
                        );
                        assert_eq!(la.count.as_ref().unwrap()[i], lb.count.as_ref().unwrap()[i]);
                    }
                    a.finish_level(&as_frequent(&level));
                    b.finish_level(&as_frequent(&level));
                }
            }
        }
    }

    #[test]
    fn zone_maps_skip_and_prune_shards() {
        use ufim_core::Transaction;
        // Regional fixture: item 0 everywhere, items 1..=4 confined to one
        // 1024-tid quarter each.
        let transactions: Vec<Transaction> = (0..4096usize)
            .map(|t| {
                let region = 1 + (t / 1024) as u32;
                let p = 0.3 + 0.4 * ((t % 7) as f64 / 6.0);
                Transaction::new([(0u32, 0.8), (region, p)]).unwrap()
            })
            .collect();
        let db = UncertainDatabase::with_num_items(transactions, 5);
        let plan = ShardPlan::with_width_chunks(16); // 1024-tid shards → 4
        let singletons: Vec<Itemset> = (0..5).map(Itemset::singleton).collect();
        let level: Vec<Itemset> = (1..5).map(|i| Itemset::from_items([0, i])).collect();

        // Exact skips: candidate {0, r} only evaluates r's own shard; the
        // other three are provably empty from the zone maps alone.
        let mut engine = build_engine_with_plan(EngineKind::Vertical, &db, plan);
        let mut stats = MinerStats::default();
        engine.evaluate(&singletons, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&singletons));
        let sup = engine.evaluate(&level, StatRequest::ESUP, &mut stats);
        assert_eq!(stats.shards_evaluated, 4);
        assert_eq!(stats.shards_pruned, 12);
        for (i, c) in level.iter().enumerate() {
            assert!(
                (sup.esup[i] - db.expected_support(c.items())).abs() < 1e-9,
                "{c}"
            );
        }

        // Whole-candidate precheck: an unreachable threshold prunes every
        // shard without running a single kernel.
        let mut engine = build_engine_with_plan(EngineKind::Vertical, &db, plan);
        let mut stats = MinerStats::default();
        engine.evaluate(&singletons, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&singletons));
        engine.evaluate(&level, StatRequest::ESUP.with_min_esup(1e9), &mut stats);
        assert_eq!(stats.shards_evaluated, 0);
        assert_eq!(stats.shards_pruned, 16);
    }

    #[test]
    fn horizontal_reuses_trie_between_evaluate_and_prob_vectors() {
        let db = paper_table1();
        let mut engine = HorizontalScan::new(&db);
        let mut stats = MinerStats::default();
        let p = pairs();
        engine.evaluate(&p, StatRequest::WITH_COUNT, &mut stats);
        let qvecs = engine.prob_vectors(&p, &mut stats);
        // Two passes (stats + vectors), one trie build.
        assert_eq!(stats.scans, 2);
        for (i, c) in p.iter().enumerate() {
            assert_eq!(qvecs[i], db.itemset_prob_vector(c.items()));
        }
    }
}
