//! The pluggable support-computation layer under the Apriori-framework
//! miners.
//!
//! Every Apriori-framework miner (UApriori, PDUApriori, NDUApriori, and the
//! exact DP/DC family) consumes per-candidate support statistics and — for
//! the exact miners — the candidates' nonzero containment-probability
//! vectors. [`SupportEngine`] abstracts *how* those are computed, so the
//! algorithms above the seam stay byte-identical while the data layout and
//! execution strategy below it swap freely:
//!
//! * [`HorizontalScan`] — the paper's layout: one trie-guided pass over the
//!   transaction list per level ([`LevelScan`]), parallelized over
//!   transaction chunks. The reference backend.
//! * [`VerticalEngine`] — columnar tid-lists ([`VerticalIndex`]): one
//!   database pass builds per-item postings; afterwards a `k`-candidate's
//!   vector is the merge-intersection of its `(k−1)`-prefix's **memoized**
//!   vector with the last item's postings (U-Eclat), parallelized over
//!   candidates. `esup`, variance, count and the exact miners' DP/DC input
//!   are all byproducts of that single intersection.
//!
//! Both backends produce equivalent results: per-transaction containment
//! probabilities are multiplied in ascending item order and summed in
//! ascending transaction order in both layouts, so sequential scans agree
//! bit for bit (the cross-backend proptest suite pins this). The one
//! caveat: on databases large enough that the horizontal backend reduces
//! per-chunk partial sums (> [`LevelScan`]'s chunk size), its summation
//! *association* differs and esups can drift by ulps — itemset sets only
//! diverge if an esup lands within rounding distance of the threshold.
//!
//! Select a backend through [`EngineKind`] (on `MiningParams` or the miner
//! builders) and instantiate per run with [`build_engine`]. Future backends
//! (sharded, async, approximate-sketch) implement the same trait.

use super::scan::LevelScan;
use ufim_core::parallel::par_map_min_len;
use ufim_core::{
    EngineKind, FrequentItemset, FxHashMap, ItemId, Itemset, MinerStats, ProbVector,
    UncertainDatabase, VerticalIndex,
};

/// Which optional statistics [`SupportEngine::evaluate`] must produce, plus
/// optional *memoization pushdown* predicates.
///
/// The pushdown thresholds never change any reported statistic — they tell
/// a memoizing engine which candidates provably cannot be frequent (esup or
/// nonzero count below the miner's own cutoff) so their intersection state
/// need not be retained. On candidate-heavy final levels, where nothing
/// survives, this eliminates the memo entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatRequest {
    /// Also accumulate the support variance `Σ q(1−q)` per candidate.
    pub variance: bool,
    /// Also count transactions with nonzero containment per candidate.
    pub count: bool,
    /// Candidates with `esup` below this can never be frequent.
    pub min_esup: Option<f64>,
    /// Candidates with fewer nonzero transactions can never be frequent.
    pub min_count: Option<u64>,
}

impl StatRequest {
    /// Expected support only.
    pub const ESUP: StatRequest = StatRequest {
        variance: false,
        count: false,
        min_esup: None,
        min_count: None,
    };
    /// Expected support + variance (Normal-approximation miners).
    pub const WITH_VARIANCE: StatRequest = StatRequest {
        variance: true,
        count: false,
        min_esup: None,
        min_count: None,
    };
    /// Expected support + nonzero count (exact miners' pruning phase).
    pub const WITH_COUNT: StatRequest = StatRequest {
        variance: false,
        count: true,
        min_esup: None,
        min_count: None,
    };

    /// Adds an esup memoization-pushdown threshold.
    pub fn with_min_esup(mut self, threshold: f64) -> Self {
        self.min_esup = Some(threshold);
        self
    }

    /// Adds a nonzero-count memoization-pushdown threshold.
    pub fn with_min_count(mut self, threshold: u64) -> Self {
        self.min_count = Some(threshold);
        self
    }
}

/// Per-candidate support statistics for one level.
#[derive(Clone, Debug, Default)]
pub struct LevelSupport {
    /// Expected support per candidate.
    pub esup: Vec<f64>,
    /// Support variance per candidate (iff requested).
    pub variance: Option<Vec<f64>>,
    /// Nonzero-transaction count per candidate (iff requested).
    pub count: Option<Vec<u64>>,
}

/// A support-computation backend, instantiated once per mining run.
///
/// The level-wise protocol is: `evaluate` once per level with all the
/// level's candidates, optionally `prob_vectors` for a subset that needs
/// exact distributions, then `finish_level` with the survivors so memoizing
/// backends can retain exactly the state the next level will extend.
pub trait SupportEngine {
    /// Backend name (matches [`EngineKind::name`]).
    fn name(&self) -> &'static str;

    /// Computes all requested statistics for every candidate in one logical
    /// pass.
    fn evaluate(
        &mut self,
        candidates: &[Itemset],
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport;

    /// The nonzero containment-probability vectors (transaction order) of
    /// `candidates` — the exact DP/DC kernels' input. Candidates must come
    /// from the current level's `evaluate` call (memoizing backends serve
    /// them from memo; the horizontal backend re-gathers in one scan).
    fn prob_vectors(&mut self, candidates: &[Itemset], stats: &mut MinerStats) -> Vec<Vec<f64>>;

    /// Declares which itemsets of the current level are frequent. Memoizing
    /// backends keep exactly these as prefixes for the next level.
    fn finish_level(&mut self, frequent: &[FrequentItemset]);
}

/// Builds the backend selected by `kind` over `db`.
pub fn build_engine(kind: EngineKind, db: &UncertainDatabase) -> Box<dyn SupportEngine + '_> {
    match kind {
        EngineKind::Horizontal => Box::new(HorizontalScan::new(db)),
        EngineKind::Vertical => Box::new(VerticalEngine::new(db)),
    }
}

/// The reference backend: trie-guided horizontal scans (see [`LevelScan`]).
pub struct HorizontalScan<'a> {
    db: &'a UncertainDatabase,
    /// The current level's scan state, so `prob_vectors` on the same
    /// candidate list reuses the already-built trie.
    current: Option<(Vec<Itemset>, LevelScan<'a>)>,
}

impl<'a> HorizontalScan<'a> {
    /// New backend over `db`.
    pub fn new(db: &'a UncertainDatabase) -> Self {
        HorizontalScan { db, current: None }
    }

    fn scan_for(&mut self, candidates: &[Itemset]) -> &LevelScan<'a> {
        // The cache key is a full clone of the candidate list: O(level) per
        // level, small next to the scan it guards, and immune to the
        // address-reuse hazards a pointer-based key would have for direct
        // trait users who skip `finish_level`. The comparison short-circuits
        // on length, so the Chernoff miners' survivor-subset `prob_vectors`
        // call costs O(1) before rebuilding.
        let reusable = matches!(&self.current, Some((c, _)) if c.as_slice() == candidates);
        if !reusable {
            self.current = Some((candidates.to_vec(), LevelScan::new(self.db, candidates)));
        }
        &self.current.as_ref().expect("just set").1
    }
}

impl SupportEngine for HorizontalScan<'_> {
    fn name(&self) -> &'static str {
        EngineKind::Horizontal.name()
    }

    fn evaluate(
        &mut self,
        candidates: &[Itemset],
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport {
        let acc = self
            .scan_for(candidates)
            .accumulate(want.variance, want.count, stats);
        LevelSupport {
            esup: acc.esup,
            variance: acc.var,
            count: acc.count,
        }
    }

    fn prob_vectors(&mut self, candidates: &[Itemset], stats: &mut MinerStats) -> Vec<Vec<f64>> {
        self.scan_for(candidates).prob_vectors(stats)
    }

    fn finish_level(&mut self, _frequent: &[FrequentItemset]) {
        self.current = None;
    }
}

/// Work-size threshold (candidates × mean tid-list length) below which the
/// vertical backend stays sequential (shared with the horizontal scans).
const PAR_MIN_WORK: usize = ufim_core::parallel::DEFAULT_MIN_WORK;

/// The columnar backend: per-item postings + memoized prefix intersection.
pub struct VerticalEngine {
    index: VerticalIndex,
    /// Prob-vectors of the previous level's *frequent* itemsets, keyed by
    /// their item arrays — the prefixes the current level's candidates
    /// extend. Singleton prefixes are served by the index itself.
    prev: FxHashMap<Vec<ItemId>, ProbVector>,
    /// Prob-vectors of every candidate evaluated in the current level.
    current: FxHashMap<Vec<ItemId>, ProbVector>,
    /// Whether the one-time index build has been charged to `stats.scans`.
    scan_charged: bool,
    /// Peak `(tid, prob)` units held in memo state (diagnostic).
    peak_memo_units: u64,
}

impl VerticalEngine {
    /// Builds the index (the run's single database pass) and an empty memo.
    pub fn new(db: &UncertainDatabase) -> Self {
        VerticalEngine {
            index: VerticalIndex::build(db),
            prev: FxHashMap::default(),
            current: FxHashMap::default(),
            scan_charged: false,
            peak_memo_units: 0,
        }
    }

    /// The candidate's prob-vector via the U-Eclat recurrence: prefix memo
    /// (or postings, for singleton prefixes) intersected with the last
    /// item's postings. Falls back to a from-scratch postings fold for
    /// candidates whose prefix was never evaluated (direct trait users).
    fn vector_for(&self, candidate: &Itemset) -> ProbVector {
        vector_for(&self.index, &self.prev, candidate)
    }

    fn note_memo_peak(&mut self) {
        let units: usize = self
            .prev
            .values()
            .chain(self.current.values())
            .map(ProbVector::mem_units)
            .sum();
        self.peak_memo_units = self.peak_memo_units.max(units as u64);
    }
}

impl SupportEngine for VerticalEngine {
    fn name(&self) -> &'static str {
        EngineKind::Vertical.name()
    }

    fn evaluate(
        &mut self,
        candidates: &[Itemset],
        want: StatRequest,
        stats: &mut MinerStats,
    ) -> LevelSupport {
        if !self.scan_charged {
            // The whole run costs one database pass: the index build.
            stats.scans += 1;
            self.scan_charged = true;
        }
        stats.intersections += candidates.iter().filter(|c| c.len() > 1).count() as u64;

        let mut out = LevelSupport {
            esup: Vec::with_capacity(candidates.len()),
            variance: want.variance.then(|| Vec::with_capacity(candidates.len())),
            count: want.count.then(|| Vec::with_capacity(candidates.len())),
        };
        let record = |out: &mut LevelSupport, vector: &ProbVector| {
            let (esup, var) = vector.moments();
            out.esup.push(esup);
            if let Some(vs) = out.variance.as_mut() {
                vs.push(var);
            }
            if let Some(cs) = out.count.as_mut() {
                cs.push(vector.len() as u64);
            }
        };

        // Singleton candidates read their postings in place — no
        // intersection, no clone, no memo entry (pair prefixes resolve
        // straight from the index).
        if candidates.iter().all(|c| c.len() == 1) {
            for c in candidates {
                record(&mut out, self.index.postings(c.items()[0]));
            }
            return out;
        }

        // Parallel across candidates: each intersection reads only the
        // index and the previous level's memo.
        let mean_units = self
            .index
            .total_units()
            .checked_div(self.index.num_items().max(1) as usize)
            .unwrap_or(0);
        let (index, prev) = (&self.index, &self.prev);

        if want.min_esup.is_some() || want.min_count.is_some() {
            // Pushdown strategy: a stats-only pass first (no allocation, no
            // stores), then materialize and memoize only the candidates the
            // thresholds keep alive. Survivors pay the intersection twice —
            // a deliberate trade: mid-run levels where most candidates
            // survive lose a cheap read-only pass, but the candidate-heavy
            // final levels where (almost) nothing survives skip
            // materialization entirely, which measures as a net win on
            // dense workloads (see benches/bench_engines.rs).
            let moments = par_map_min_len(candidates, mean_units.max(1), PAR_MIN_WORK, |c| {
                stats_for(index, prev, c)
            });
            let mut survivors: Vec<&Itemset> = Vec::new();
            for (candidate, (esup, var, count)) in candidates.iter().zip(moments) {
                out.esup.push(esup);
                if let Some(vs) = out.variance.as_mut() {
                    vs.push(var);
                }
                if let Some(cs) = out.count.as_mut() {
                    cs.push(count as u64);
                }
                let hopeless = want.min_esup.is_some_and(|t| esup < t)
                    || want.min_count.is_some_and(|t| (count as u64) < t);
                if !hopeless {
                    survivors.push(candidate);
                }
            }
            let vectors = par_map_min_len(&survivors, mean_units.max(1), PAR_MIN_WORK, |c| {
                vector_for(index, prev, c)
            });
            for (candidate, mut vector) in survivors.into_iter().zip(vectors) {
                vector.shrink_to_fit();
                self.current.insert(candidate.items().to_vec(), vector);
            }
        } else {
            let vectors = par_map_min_len(candidates, mean_units.max(1), PAR_MIN_WORK, |c| {
                vector_for(index, prev, c)
            });
            for (candidate, mut vector) in candidates.iter().zip(vectors) {
                record(&mut out, &vector);
                vector.shrink_to_fit();
                self.current.insert(candidate.items().to_vec(), vector);
            }
        }
        self.note_memo_peak();
        stats.peak_structure_nodes = stats.peak_structure_nodes.max(self.peak_memo_units);
        out
    }

    fn prob_vectors(&mut self, candidates: &[Itemset], stats: &mut MinerStats) -> Vec<Vec<f64>> {
        candidates
            .iter()
            .map(|c| match self.current.get(c.items()) {
                Some(v) => v.nonzero_probs(),
                None => {
                    // Cold path (direct trait users): a from-scratch fold
                    // costs `len − 1` intersections; charge them.
                    stats.intersections += c.len().saturating_sub(1) as u64;
                    self.vector_for(c).nonzero_probs()
                }
            })
            .collect()
    }

    fn finish_level(&mut self, frequent: &[FrequentItemset]) {
        let mut next = FxHashMap::default();
        for f in frequent {
            if let Some(v) = self.current.remove(f.itemset.items()) {
                next.insert(f.itemset.items().to_vec(), v);
            }
        }
        self.prev = next;
        self.current = FxHashMap::default();
    }
}

/// The U-Eclat recurrence as a free function, so the parallel candidate map
/// can borrow the index and memo without aliasing `&mut VerticalEngine`.
fn vector_for(
    index: &VerticalIndex,
    prev: &FxHashMap<Vec<ItemId>, ProbVector>,
    candidate: &Itemset,
) -> ProbVector {
    let items = candidate.items();
    match items.len() {
        0 => ProbVector::new(),
        1 => index.postings(items[0]).clone(),
        k => {
            let (prefix, last) = (&items[..k - 1], items[k - 1]);
            let last_postings = index.postings(last);
            if prefix.len() == 1 {
                index.postings(prefix[0]).intersect(last_postings)
            } else if let Some(v) = prev.get(prefix) {
                v.intersect(last_postings)
            } else {
                index.prob_vector(items)
            }
        }
    }
}

/// `(esup, variance, nonzero count)` of a candidate without materializing
/// its vector — the stats-only twin of [`vector_for`].
fn stats_for(
    index: &VerticalIndex,
    prev: &FxHashMap<Vec<ItemId>, ProbVector>,
    candidate: &Itemset,
) -> (f64, f64, usize) {
    let items = candidate.items();
    match items.len() {
        0 => (0.0, 0.0, 0),
        1 => {
            let postings = index.postings(items[0]);
            let (esup, var) = postings.moments();
            (esup, var, postings.len())
        }
        k => {
            let (prefix, last) = (&items[..k - 1], items[k - 1]);
            let last_postings = index.postings(last);
            if prefix.len() == 1 {
                index.postings(prefix[0]).intersect_stats(last_postings)
            } else if let Some(v) = prev.get(prefix) {
                v.intersect_stats(last_postings)
            } else {
                let v = index.prob_vector(items);
                let (esup, var) = v.moments();
                (esup, var, v.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufim_core::examples::paper_table1;

    fn pairs() -> Vec<Itemset> {
        let mut v = Vec::new();
        for a in 0..6u32 {
            for b in a + 1..6u32 {
                v.push(Itemset::from_items([a, b]));
            }
        }
        v
    }

    /// Wraps itemsets as frequent records for `finish_level`.
    fn as_frequent(sets: &[Itemset]) -> Vec<FrequentItemset> {
        sets.iter()
            .map(|s| FrequentItemset::with_esup(s.clone(), 0.0))
            .collect()
    }

    #[test]
    fn backends_agree_on_every_statistic() {
        let db = paper_table1();
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        for kind in EngineKind::ALL {
            let mut engine = build_engine(kind, &db);
            assert_eq!(engine.name(), kind.name());
            let mut stats = MinerStats::default();
            let l1 = engine.evaluate(
                &singletons,
                StatRequest {
                    variance: true,
                    count: true,
                    ..StatRequest::ESUP
                },
                &mut stats,
            );
            engine.finish_level(&as_frequent(&singletons));
            let l2 = engine.evaluate(&pairs(), StatRequest::WITH_COUNT, &mut stats);
            let qvecs = engine.prob_vectors(&pairs(), &mut stats);
            for (i, c) in singletons.iter().enumerate() {
                let (we, wv) = db.support_moments(c.items());
                assert!((l1.esup[i] - we).abs() < 1e-12, "{kind:?} {c}");
                assert!((l1.variance.as_ref().unwrap()[i] - wv).abs() < 1e-12);
            }
            for (i, c) in pairs().iter().enumerate() {
                let want = db.itemset_prob_vector(c.items());
                assert!((l2.esup[i] - db.expected_support(c.items())).abs() < 1e-12);
                assert_eq!(l2.count.as_ref().unwrap()[i] as usize, want.len());
                assert_eq!(qvecs[i], want, "{kind:?} {c}");
            }
        }
    }

    #[test]
    fn vertical_uses_one_scan_and_counts_intersections() {
        let db = paper_table1();
        let mut engine = VerticalEngine::new(&db);
        let mut stats = MinerStats::default();
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        engine.evaluate(&singletons, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&singletons));
        engine.evaluate(&pairs(), StatRequest::ESUP, &mut stats);
        assert_eq!(stats.scans, 1, "vertical pays exactly one database pass");
        assert_eq!(stats.intersections, pairs().len() as u64);
    }

    #[test]
    fn vertical_prefix_memo_survives_level_transition() {
        let db = paper_table1();
        let mut engine = VerticalEngine::new(&db);
        let mut stats = MinerStats::default();
        let singletons: Vec<Itemset> = (0..6).map(Itemset::singleton).collect();
        engine.evaluate(&singletons, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&singletons));
        let p = pairs();
        engine.evaluate(&p, StatRequest::ESUP, &mut stats);
        engine.finish_level(&as_frequent(&p));
        // {A,C,E} extends prefix {A,C} from memo.
        let triple = vec![Itemset::from_items([0, 2, 4])];
        let sup = engine.evaluate(&triple, StatRequest::ESUP, &mut stats);
        assert!((sup.esup[0] - db.expected_support(&[0, 2, 4])).abs() < 1e-12);
    }

    #[test]
    fn vertical_cold_lookup_falls_back_to_scratch_fold() {
        let db = paper_table1();
        let mut engine = VerticalEngine::new(&db);
        let mut stats = MinerStats::default();
        // No prior levels evaluated: a 3-itemset must still be correct.
        let triple = vec![Itemset::from_items([0, 2, 4])];
        let sup = engine.evaluate(&triple, StatRequest::WITH_COUNT, &mut stats);
        assert!((sup.esup[0] - db.expected_support(&[0, 2, 4])).abs() < 1e-12);
        assert_eq!(
            sup.count.as_ref().unwrap()[0] as usize,
            db.itemset_prob_vector(&[0, 2, 4]).len()
        );
    }

    #[test]
    fn horizontal_reuses_trie_between_evaluate_and_prob_vectors() {
        let db = paper_table1();
        let mut engine = HorizontalScan::new(&db);
        let mut stats = MinerStats::default();
        let p = pairs();
        engine.evaluate(&p, StatRequest::WITH_COUNT, &mut stats);
        let qvecs = engine.prob_vectors(&p, &mut stats);
        // Two passes (stats + vectors), one trie build.
        assert_eq!(stats.scans, 2);
        for (i, c) in p.iter().enumerate() {
            assert_eq!(qvecs[i], db.itemset_prob_vector(c.items()));
        }
    }
}
